"""Legacy setup shim.

The execution environment has no network access and no `wheel` package,
so PEP 517/660 builds (which need build isolation or bdist_wheel) fail.
Keeping a plain setup.py lets `pip install -e .` fall back to the classic
`setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
