"""Table IV: absolute training time for 10 epochs (minutes).

Paper values (baseline / FAE minutes): see PAPER below.  Our simulator
reproduces the *shape* — FAE always wins, the baseline scales poorly with
GPUs, Terabyte gains the most — with absolutes within ~2x of the paper's
testbed measurements.
"""

from repro.analysis import format_minutes_table
from repro.hw import Cluster, TrainingSimulator

PAPER = {
    "RMC2": [245.3, 122.7, 195.2, 116.2, 201.3, 104.7],
    "RMC1": [996.5, 436.5, 851.8, 387.8, 703.3, 428.5],
    "RMC3": [491.7, 189.7, 423.6, 201.6, 364.8, 156.4],
}
COLUMNS = ["1G base", "1G FAE", "2G base", "2G FAE", "4G base", "4G FAE"]


def build_rows(workloads):
    values = {}
    for name, workload in workloads.items():
        row = []
        for k in (1, 2, 4):
            sim = TrainingSimulator(Cluster(num_gpus=k), workload)
            row.append(sim.training_minutes("baseline", epochs=10))
            row.append(sim.training_minutes("fae", epochs=10))
        values[name] = row
    return values


def test_tab4_training_time(benchmark, emit, paper_workloads):
    values = benchmark(build_rows, paper_workloads)

    table = format_minutes_table(
        "Table IV - 10-epoch training minutes, measured (paper)",
        ["RMC1", "RMC2", "RMC3"],
        COLUMNS,
        values,
        paper=PAPER,
    )
    emit("tab4_train_time", table)

    for name, row in values.items():
        # FAE beats baseline in every configuration.
        for i in (0, 2, 4):
            assert row[i + 1] < row[i], (name, i)
        # Absolutes within ~2.5x of the paper's testbed.
        for got, paper in zip(row, PAPER[name]):
            assert paper / 2.5 < got < paper * 2.5, (name, got, paper)
    # Baseline non-ideal scaling: 4-GPU baseline nowhere near 4x faster.
    for name, row in values.items():
        assert row[4] > row[0] / 2.5, name
