"""Fig 6: hot-embedding size and hot-input percentage vs access threshold.

Paper: lowering the threshold grows the hot-embedding footprint much more
steeply than it grows the hot-input percentage — the diminishing returns
that motivate the calibrator's budget-constrained search.
"""

from repro.analysis import series_table
from repro.core import EmbeddingClassifier, EmbeddingLogger, InputProcessor

THRESHOLDS = (1e-2, 5e-3, 2e-3, 1e-3, 5e-4, 2e-4, 1e-4, 5e-5)


def build_sweep(log, config):
    logger = EmbeddingLogger(config)
    profile = logger.profile(log, __import__("numpy").arange(len(log)))
    classifier = EmbeddingClassifier(config)
    sizes_kb = []
    hot_pct = []
    for threshold in THRESHOLDS:
        bags = classifier.classify(profile, threshold)
        sizes_kb.append(EmbeddingClassifier.total_hot_bytes(bags) / 1024)
        processor = InputProcessor(bags, seed=0)
        hot_mask = processor.classify_inputs(log)
        hot_pct.append(100.0 * hot_mask.mean())
    return sizes_kb, hot_pct


def test_fig06_threshold_sweep(benchmark, emit, kaggle_small_log, small_fae_config):
    sizes_kb, hot_pct = benchmark(build_sweep, kaggle_small_log, small_fae_config)

    table = series_table(
        "threshold",
        ["hot emb (KiB)", "hot inputs (%)"],
        THRESHOLDS,
        [sizes_kb, hot_pct],
    )
    emit("fig06_threshold_sweep", "Fig 6 - threshold sweep (Kaggle-like, 1/1000)\n" + table)

    # Both grow monotonically as the threshold drops.
    assert sizes_kb == sorted(sizes_kb)
    assert hot_pct == sorted(hot_pct)
    # Paper's observation: past the knee, the footprint keeps growing
    # steeply while the hot-input share saturates (diminishing returns).
    mid = len(THRESHOLDS) // 2
    late_size_growth = sizes_kb[-1] / max(sizes_kb[mid], 1e-9)
    late_input_growth = hot_pct[-1] / max(hot_pct[mid], 1e-9)
    assert late_size_growth > late_input_growth
