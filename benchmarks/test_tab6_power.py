"""Table VI: per-GPU power consumption, baseline vs FAE.

Paper: 58.91 -> 55.81 W (Kaggle, -5.3%), 60.21 -> 56.62 W (Taobao, -6%),
62.47 -> 57.03 W (Terabyte, -8.8%), attributed to reduced communication.
"""

from repro.analysis import format_table
from repro.hw import Cluster, PowerModel, TrainingSimulator

PAPER = {
    "RMC2": (58.91, 55.81, 5.3),
    "RMC1": (60.21, 56.62, 6.0),
    "RMC3": (62.47, 57.03, 8.8),
}


def build_rows(workloads):
    pm = PowerModel()
    rows = {}
    for name, workload in workloads.items():
        sim = TrainingSimulator(Cluster(num_gpus=4), workload)
        base = pm.average_watts(sim.epoch("baseline"))
        fae = pm.average_watts(sim.epoch("fae"))
        rows[name] = (base, fae, 100 * (base - fae) / base)
    return rows


def test_tab6_power(benchmark, emit, paper_workloads):
    rows = benchmark(build_rows, paper_workloads)

    table = format_table(
        ["workload", "base W (paper)", "FAE W (paper)", "reduction % (paper)"],
        [
            [
                name,
                f"{rows[name][0]:.2f} ({PAPER[name][0]})",
                f"{rows[name][1]:.2f} ({PAPER[name][1]})",
                f"{rows[name][2]:.1f} ({PAPER[name][2]})",
            ]
            for name in sorted(rows)
        ],
        title="Table VI - per-GPU power",
    )
    emit("tab6_power", table)

    for name, (base, fae, reduction) in rows.items():
        # FAE draws less average power.
        assert fae < base, name
        # Reduction in the paper's neighbourhood (5.3-8.8%, loosened).
        assert 1.5 < reduction < 12.0, name
        # Absolute draws in the V100 measurement range.
        assert 50 < fae < base < 70, name
    # Terabyte shows the largest reduction, as in the paper.
    assert rows["RMC3"][2] == max(r[2] for r in rows.values())
