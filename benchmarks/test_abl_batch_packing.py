"""Ablation: FAE's pure-batch packing vs naive random batching.

Fig 4 argues naive batching almost never yields an all-hot mini-batch;
this bench measures it directly on generated data: with packing, 100% of
hot-pool batches run on-GPU; with naive shuffling, almost none do.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import EmbeddingClassifier, EmbeddingLogger, InputProcessor
from repro.data.loader import BatchIterator

BATCH_SIZE = 256


def run_comparison(log, config):
    profile = EmbeddingLogger(config).profile(log, np.arange(len(log)))
    # Pick a threshold whose hot-input share is high but < 1.
    bags = EmbeddingClassifier(config).classify(profile, threshold=1e-4)
    processor = InputProcessor(bags, seed=0)
    dataset = processor.pack(log, batch_size=BATCH_SIZE, drop_last=True)
    hot_mask = dataset.hot_mask

    naive_all_hot = 0
    naive_total = 0
    for batch in BatchIterator(log, BATCH_SIZE, shuffle=True, drop_last=True, seed=1):
        naive_total += 1
        if hot_mask[batch.indices].all():
            naive_all_hot += 1

    packed_hot, packed_cold = dataset.batch_counts()
    return {
        "hot_input_fraction": float(hot_mask.mean()),
        "naive_all_hot_pct": 100.0 * naive_all_hot / naive_total,
        "packed_hot_pct": 100.0 * packed_hot / (packed_hot + packed_cold),
        "packed_gpu_input_pct": 100.0
        * sum(len(b) for b in dataset.hot_batches)
        / (BATCH_SIZE * (packed_hot + packed_cold)),
    }


def test_abl_batch_packing(benchmark, emit, kaggle_small_log, small_fae_config):
    stats = benchmark(run_comparison, kaggle_small_log, small_fae_config)

    table = format_table(
        ["metric", "value"],
        [
            ["hot inputs (%)", f"{stats['hot_input_fraction'] * 100:.1f}"],
            ["naive batching: all-hot batches (%)", f"{stats['naive_all_hot_pct']:.2f}"],
            ["FAE packing: pure-hot batches (%)", f"{stats['packed_hot_pct']:.2f}"],
            ["FAE packing: inputs on GPU (%)", f"{stats['packed_gpu_input_pct']:.2f}"],
        ],
        title="Ablation - pure-batch packing vs naive batching (B=256)",
    )
    emit("abl_batch_packing", table)

    # Naive batching almost never produces an all-hot batch (Fig 4).
    assert stats["naive_all_hot_pct"] < 5.0
    # Packing converts the full hot fraction into GPU-resident batches.
    assert stats["packed_gpu_input_pct"] > 95 * stats["hot_input_fraction"]
    assert stats["packed_hot_pct"] > stats["naive_all_hot_pct"]
