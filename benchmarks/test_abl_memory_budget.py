"""Ablation: GPU memory budget L vs hot coverage and speedup.

The paper fixes L = 256 MB ("suffices and caters to all types of GPUs").
This sweep shows the diminishing returns: hot-input coverage and FAE
speedup saturate well before the V100's 16 GB.
"""

from repro.analysis import series_table
from repro.data import dataset_by_name
from repro.hw import Cluster, TrainingSimulator, characterize
from repro.hw.workload import analytic_hot_stats
from repro.models import workload_by_name

BUDGETS_MB = (16, 64, 256, 1024, 4096)


def run_sweep():
    schema = dataset_by_name("criteo-terabyte", "paper")
    spec = workload_by_name("RMC3")
    coverage = []
    speedups = []
    for budget_mb in BUDGETS_MB:
        budget = budget_mb * 2**20
        fraction, _bytes = analytic_hot_stats(schema, budget)
        coverage.append(100 * fraction)
        workload = characterize(spec, gpu_memory_budget=budget)
        speedups.append(TrainingSimulator(Cluster(num_gpus=4), workload).speedup())
    return coverage, speedups


def test_abl_memory_budget(benchmark, emit):
    coverage, speedups = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = series_table(
        "budget (MB)",
        ["hot inputs (%)", "4-GPU speedup"],
        BUDGETS_MB,
        [coverage, speedups],
    )
    emit("abl_memory_budget", "Ablation - GPU memory budget L (Terabyte)\n" + table)

    # Coverage and speedup grow with the budget...
    assert coverage == sorted(coverage)
    assert speedups == sorted(speedups)
    # ...but with diminishing returns: the 256 MB -> 4 GB gain is small
    # relative to the 16 MB -> 256 MB gain (the paper's L=256MB claim).
    i16, i256, i4096 = 0, BUDGETS_MB.index(256), len(BUDGETS_MB) - 1
    early_gain = coverage[i256] - coverage[i16]
    late_gain = coverage[i4096] - coverage[i256]
    assert late_gain < early_gain / 2
    assert speedups[i256] > 0.8 * speedups[i4096]
