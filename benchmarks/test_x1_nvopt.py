"""SS V comparison: FAE vs NvOPT (NVIDIA-optimized DLRM).

Paper: on Criteo Terabyte with a 32K mini-batch on a single V100, FAE is
1.48x faster than NvOPT (71.58 vs 105.98 minutes per epoch) because the
most frequently accessed rows live permanently in GPU memory instead of
being paged through a cache.
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.hw import Cluster, TrainingSimulator


def build_comparison(workloads):
    workload = replace(workloads["RMC3"], base_batch_size=32768)
    sim = TrainingSimulator(Cluster(num_gpus=1), workload)
    return {
        "baseline": sim.epoch("baseline").minutes,
        "nvopt": sim.epoch("nvopt").minutes,
        "fae": sim.epoch("fae").minutes,
    }


def test_x1_nvopt_comparison(benchmark, emit, paper_workloads):
    minutes = benchmark(build_comparison, paper_workloads)
    ratio = minutes["nvopt"] / minutes["fae"]

    table = format_table(
        ["mode", "minutes/epoch", "paper"],
        [
            ["baseline", f"{minutes['baseline']:.1f}", "-"],
            ["NvOPT", f"{minutes['nvopt']:.1f}", "105.98"],
            ["FAE", f"{minutes['fae']:.1f}", "71.58"],
            ["FAE speedup over NvOPT", f"{ratio:.2f}x", "1.48x"],
        ],
        title="X1 - FAE vs NvOPT (Terabyte, batch 32K, 1 GPU)",
    )
    emit("x1_nvopt", table)

    # Ordering: FAE < NvOPT < baseline.
    assert minutes["fae"] < minutes["nvopt"] < minutes["baseline"]
    # Ratio near the paper's 1.48x.
    assert 1.1 < ratio < 2.2
