"""Extension: Count-Min-Sketch profiling vs exact per-row counters.

The Embedding Logger's exact counters cost 8 bytes per embedding row —
~1.9 GiB at Terabyte geometry.  A Count-Min Sketch caps that at a fixed
grid with a one-sided (overcount-only) error, which is the *safe*
direction for FAE: a misestimated row can only be promoted to hot, never
demoted into poisoning pure-hot batches.  This bench measures the hot-set
agreement and the memory trade at several sketch sizes.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import EmbeddingClassifier, EmbeddingLogger, SketchLogger

EPSILONS = (1e-3, 1e-4, 3e-5)
THRESHOLD = 1e-4


def build_comparison(log, config):
    exact_profile = EmbeddingLogger(config).profile(log, np.arange(len(log)))
    classifier = EmbeddingClassifier(config)
    exact_bags = classifier.classify(exact_profile, THRESHOLD)
    exact_hot = {n: set(b.hot_ids.tolist()) for n, b in exact_bags.items()}
    exact_counter_bytes = sum(
        8 * p.num_rows for p in exact_profile.tables.values()
    )

    rows = []
    for epsilon in EPSILONS:
        logger = SketchLogger(config, epsilon=epsilon)
        profile = logger.profile(log, np.arange(len(log)))
        bags = classifier.classify(profile, THRESHOLD)
        missing = 0
        extra = 0
        total = 0
        for name, ids in exact_hot.items():
            sketched = set(bags[name].hot_ids.tolist())
            missing += len(ids - sketched)
            extra += len(sketched - ids)
            total += len(ids)
        rows.append(
            {
                "epsilon": epsilon,
                "sketch_kib": logger.last_sketch_bytes / 1024,
                "missing": missing,
                "extra_pct": 100.0 * extra / max(total, 1),
            }
        )
    return rows, exact_counter_bytes / 1024


def test_abl_sketch_profiling(benchmark, emit, kaggle_medium_log, medium_fae_config):
    rows, exact_kib = benchmark.pedantic(
        build_comparison, args=(kaggle_medium_log, medium_fae_config), rounds=1, iterations=1
    )

    table = format_table(
        ["epsilon", "sketch KiB", "hot rows missed", "extra hot rows (%)"],
        [
            [f"{r['epsilon']:g}", f"{r['sketch_kib']:.0f}", str(r["missing"]), f"{r['extra_pct']:.2f}"]
            for r in rows
        ],
        title=(
            "Extension - sketched vs exact access profiling "
            f"(exact counters: {exact_kib:.0f} KiB at 1/100 scale; "
            "~1.9 GiB at Terabyte geometry vs constant sketch size)"
        ),
    )
    emit("abl_sketch", table)

    for r in rows:
        # One-sided error: the sketch never loses a hot row.
        assert r["missing"] == 0, r
    # Tighter epsilon -> fewer spurious promotions; the tightest setting
    # stays under a few percent extra hot rows.
    extras = [r["extra_pct"] for r in rows]
    assert extras == sorted(extras, reverse=True)
    assert extras[-1] < 5.0
