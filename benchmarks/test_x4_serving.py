"""Extension: hot-resident embeddings for inference serving.

The paper's skew insight applied to the serving side (the setting of its
inference-focused related work): pinning the hot bags in GPU memory lets
the majority of requests skip the host embedding fetch, cutting median
latency and raising the saturation throughput.
"""

from repro.analysis import series_table
from repro.hw import Cluster, characterize
from repro.models import workload_by_name
from repro.serve import ServingSimulator

LOADS = (0.3, 0.6, 0.9)


def build_sweep():
    workload = characterize(workload_by_name("RMC2"))
    sim = ServingSimulator(Cluster(num_gpus=1), workload)
    base_rate = sim.saturation_rate("cpu-embedding")
    cpu_p50, cpu_p99, hot_p50, hot_p99 = [], [], [], []
    for load in LOADS:
        cpu = sim.simulate("cpu-embedding", load * base_rate, num_requests=4000, seed=2)
        hot = sim.simulate("hot-resident", load * base_rate, num_requests=4000, seed=2)
        cpu_p50.append(cpu.p50 * 1e3)
        cpu_p99.append(cpu.p99 * 1e3)
        hot_p50.append(hot.p50 * 1e3)
        hot_p99.append(hot.p99 * 1e3)
    capacity_gain = sim.saturation_rate("hot-resident") / base_rate
    return cpu_p50, cpu_p99, hot_p50, hot_p99, capacity_gain


def test_x4_serving_latency(benchmark, emit):
    cpu_p50, cpu_p99, hot_p50, hot_p99, capacity_gain = benchmark.pedantic(
        build_sweep, rounds=1, iterations=1
    )

    table = series_table(
        "load (x cpu saturation)",
        ["cpu p50 ms", "cpu p99 ms", "hot p50 ms", "hot p99 ms"],
        LOADS,
        [cpu_p50, cpu_p99, hot_p50, hot_p99],
    )
    emit(
        "x4_serving",
        "Extension - serving latency, CPU-embedding vs hot-resident "
        f"(RMC2, 1 GPU; capacity gain {capacity_gain:.2f}x)\n" + table,
    )

    for i in range(len(LOADS)):
        # Hot-resident wins the median at every load...
        assert hot_p50[i] < cpu_p50[i]
        # ...and never loses the tail (cold requests bound it).
        assert hot_p99[i] <= cpu_p99[i] * 1.05
    # Saturation throughput improves with the hot fraction.
    assert capacity_gain > 1.3
