"""Table V: CPU-GPU communication time over 10 epochs (minutes).

Paper values show FAE cutting transfer time by 3-15x because hot
mini-batches never cross PCIe; bigger embedding models (Terabyte) spend
the most baseline time communicating.
"""

from repro.analysis import format_minutes_table
from repro.hw import Cluster, TrainingSimulator

PAPER = {
    "RMC2": [11.05, 2.5, 11.56, 2.17, 9.0, 2.14],
    "RMC1": [36.21, 3.09, 36.53, 10.60, 23.90, 5.77],
    "RMC3": [38.0, 6.63, 46.49, 6.20, 24.21, 7.62],
}
COLUMNS = ["1G base", "1G FAE", "2G base", "2G FAE", "4G base", "4G FAE"]


def build_rows(workloads):
    values = {}
    for name, workload in workloads.items():
        row = []
        for k in (1, 2, 4):
            sim = TrainingSimulator(Cluster(num_gpus=k), workload)
            row.append(sim.communication_minutes("baseline", epochs=10))
            row.append(sim.communication_minutes("fae", epochs=10))
        values[name] = row
    return values


def test_tab5_communication_time(benchmark, emit, paper_workloads):
    values = benchmark(build_rows, paper_workloads)

    table = format_minutes_table(
        "Table V - CPU-GPU communication minutes, measured (paper)",
        ["RMC1", "RMC2", "RMC3"],
        COLUMNS,
        values,
        paper=PAPER,
    )
    emit("tab5_comm_time", table)

    for name, row in values.items():
        # FAE communicates far less than baseline at every GPU count.
        for i in (0, 2, 4):
            assert row[i + 1] < row[i] * 0.6, (name, i)
    # Terabyte has the largest 1-GPU baseline communication among the
    # DLRM workloads (paper: bigger models transfer more).
    assert values["RMC3"][0] > values["RMC2"][0]
