"""Table III: final train/test accuracy, baseline vs FAE.

Paper (percent): Kaggle 79.30/79.70 train, 78.86/78.86 test; Taobao
88.78/88.32 train, 89.21/89.03 test; Terabyte 81.62/81.95 train,
81.07/81.06 test.  The operative claim: FAE matches baseline accuracy
within noise.  We verify on two real (scaled) workloads: DLRM on the
Kaggle-like log and TBSM on a Taobao-like log.
"""

from repro.analysis import format_table
from repro.core import FAEConfig, fae_preprocess
from repro.data import SyntheticClickLog, SyntheticConfig, taobao_like, train_test_split
from repro.models import build_model, workload_by_name
from repro.models.dlrm import DLRM, DLRMConfig
from repro.train import BaselineTrainer, FAETrainer


def run_all(kaggle_log, kaggle_config):
    results = {}

    # DLRM / Kaggle-like
    train, test = train_test_split(kaggle_log, 0.15, seed=1)
    plan = fae_preprocess(train, kaggle_config, batch_size=256)
    baseline_model = DLRM(kaggle_log.schema, DLRMConfig("13-64-32-16", "64-1", seed=8))
    base = BaselineTrainer(baseline_model, lr=0.15).train(
        train, test, epochs=2, batch_size=256, eval_every=50
    )
    fae_model = DLRM(kaggle_log.schema, DLRMConfig("13-64-32-16", "64-1", seed=8))
    fae = FAETrainer(fae_model, plan, lr=0.15).train(train, test, epochs=2)
    results["criteo-kaggle (DLRM)"] = (base, fae)

    # TBSM / Taobao-like
    schema = taobao_like("tiny")
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=6000, seed=2))
    train, test = train_test_split(log, 0.15, seed=1)
    config = FAEConfig(
        gpu_memory_budget=64 * 1024, large_table_min_bytes=512, chunk_size=16, seed=1
    )
    plan = fae_preprocess(train, config, batch_size=128)
    base_model = build_model(workload_by_name("RMC1"), schema=schema, seed=8)
    base = BaselineTrainer(base_model, lr=0.1).train(
        train, test, epochs=2, batch_size=128, eval_every=20
    )
    fae_model = build_model(workload_by_name("RMC1"), schema=schema, seed=8)
    fae = FAETrainer(fae_model, plan, lr=0.1).train(train, test, epochs=2)
    results["taobao (TBSM)"] = (base, fae)
    return results


def test_tab3_accuracy(benchmark, emit, kaggle_small_log, small_fae_config):
    results = benchmark.pedantic(
        run_all, args=(kaggle_small_log, small_fae_config), rounds=1, iterations=1
    )

    rows = []
    for name, (base, fae) in results.items():
        rows.append(
            [
                name,
                f"{100 * base.final_train_accuracy:.2f}",
                f"{100 * fae.final_train_accuracy:.2f}",
                f"{100 * base.final_test_accuracy:.2f}",
                f"{100 * fae.final_test_accuracy:.2f}",
            ]
        )
    table = format_table(
        ["dataset", "base train %", "FAE train %", "base test %", "FAE test %"],
        rows,
        title="Table III - accuracy comparison (scaled synthetic workloads)",
    )
    emit("tab3_accuracy", table)

    for name, (base, fae) in results.items():
        # The paper's claim: FAE matches baseline accuracy (within noise).
        assert fae.final_test_accuracy >= base.final_test_accuracy - 0.025, name
        assert fae.final_train_accuracy >= base.final_train_accuracy - 0.035, name
