"""Ablation: threshold-rule budgeting vs input-coverage-optimal allocation.

The paper classifies rows hot by one global access threshold — the
greedy-optimal policy for *access* coverage per byte.  But FAE's speedup
scales with the *hot-input fraction*, a product of per-table coverages
raised to their lookup multiplicities; a greedy allocator on that product
objective shifts budget toward high-multiplicity tables (Taobao's
21-lookup behaviour sequences) and toward whichever table is the current
coverage bottleneck.  This bench measures the gap on both a sequence
workload (where multiplicities differ: gains expected) and a DLRM
workload (uniform multiplicity and dim: near-parity expected — evidence
the paper's simple rule is close to optimal in its own setting).
"""

import numpy as np

from repro.analysis import format_table
from repro.core import EmbeddingLogger, FAEConfig, InputProcessor
from repro.core.allocation import greedy_product_allocation, threshold_allocation
from repro.data import SyntheticClickLog, SyntheticConfig, dataset_by_name


def measure(dataset_name: str, budget: int, num_samples: int, cutoff: int):
    schema = dataset_by_name(dataset_name, "small")
    log = SyntheticClickLog(schema, SyntheticConfig(num_samples=num_samples, seed=6))
    config = FAEConfig(large_table_min_bytes=cutoff, chunk_size=32)
    profile = EmbeddingLogger(config).profile(log, np.arange(len(log)))

    rows = {}
    for label, allocator in (
        ("threshold", threshold_allocation),
        ("greedy-product", greedy_product_allocation),
    ):
        allocation = allocator(profile, budget)
        mask = InputProcessor(allocation.to_bag_specs(profile)).classify_inputs(log)
        rows[label] = {
            "hot_pct": 100.0 * mask.mean(),
            "bytes": allocation.bytes_used,
        }
    return rows


def build_comparison():
    return {
        "taobao (seq, mult 21)": measure("taobao", budget=128 * 1024, num_samples=30_000, cutoff=1024),
        "criteo-kaggle (mult 1)": measure("criteo-kaggle", budget=192 * 1024, num_samples=30_000, cutoff=1024),
    }


def test_abl_allocation(benchmark, emit):
    results = benchmark.pedantic(build_comparison, rounds=1, iterations=1)

    table_rows = []
    for workload, rows in results.items():
        for label, r in rows.items():
            table_rows.append(
                [workload, label, f"{r['hot_pct']:.1f}", f"{r['bytes'] / 1024:.0f}"]
            )
    emit(
        "abl_allocation",
        format_table(
            ["workload", "allocator", "hot inputs (%)", "KiB used"],
            table_rows,
            title="Ablation - budget allocation policy (equal budgets)",
        ),
    )

    for workload, rows in results.items():
        # The product-optimal greedy never loses to the threshold rule.
        assert rows["greedy-product"]["hot_pct"] >= rows["threshold"]["hot_pct"] - 0.5, workload
    # On the sequence workload the gain should be visible.
    taobao = results["taobao (seq, mult 21)"]
    assert taobao["greedy-product"]["hot_pct"] >= taobao["threshold"]["hot_pct"]
