"""Fig 9: Rand-Em Box estimated hot sizes vs measured (ground truth).

Paper: with n = 35 chunks and a 99.9% t-interval, estimates land within
10% (upper bound) of the measured hot-embedding sizes.
"""

import numpy as np

from repro.analysis import series_table
from repro.core import FAEConfig, RandEmBox
from repro.core.access_profile import TableProfile

MIN_COUNTS = (2, 4, 8, 16, 32)


def build_comparison():
    rng = np.random.default_rng(5)
    counts = rng.zipf(1.4, size=1_000_000).astype(np.int64)
    profile = TableProfile("big", counts, dim=16)
    config = FAEConfig(chunk_size=1024, num_chunks=35)
    box = RandEmBox(config, seed=17)

    measured = []
    estimated = []
    upper = []
    for min_count in MIN_COUNTS:
        estimate = box.estimate(profile, min_count)
        measured.append(profile.hot_row_count(min_count))
        estimated.append(estimate.hot_rows_mean)
        upper.append(estimate.hot_rows_upper)
    return measured, estimated, upper


def test_fig09_randem_estimation_accuracy(benchmark, emit):
    measured, estimated, upper = benchmark(build_comparison)

    table = series_table(
        "min_count",
        ["measured rows", "estimated rows", "upper CI"],
        MIN_COUNTS,
        [measured, estimated, upper],
    )
    emit("fig09_randem_accuracy", "Fig 9 - Rand-Em Box estimates vs measured\n" + table)

    for truth, est, up in zip(measured, estimated, upper):
        # Point estimate within 15% of truth; upper CI within 10% above
        # the estimate (the paper's "within 10% (upper bound)").
        assert abs(est - truth) / truth < 0.15
        assert up >= est
        assert up <= truth * 1.25
