"""Ablation: adaptive shuffle rate (Eq. 7) vs fixed rates.

Trade-off: R(100) (all cold then all hot) minimizes sync events but risks
accuracy; R(1) maximizes interleaving but pays a sync per segment pair.
The adaptive scheduler should land near fixed-R(50) accuracy with far
fewer syncs than R(1).
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.core import fae_preprocess
from repro.data import train_test_split
from repro.models.dlrm import DLRM, DLRMConfig
from repro.train import FAETrainer

RATES = (1, 50, 100)


def run_ablation(log, config):
    train, test = train_test_split(log, 0.15, seed=5)
    results = {}

    def train_with(cfg, label):
        plan = fae_preprocess(train, cfg, batch_size=256)
        model = DLRM(log.schema, DLRMConfig("13-64-32-16", "64-1", seed=4))
        result = FAETrainer(model, plan, lr=0.15).train(train, test, epochs=2)
        results[label] = result

    for rate in RATES:
        fixed = replace(config, scheduler_initial_rate=rate, scheduler_strip_length=10_000)
        train_with(fixed, f"fixed R({rate})")
    train_with(replace(config, scheduler_initial_rate=50), "adaptive (Eq. 7)")
    return results


def test_abl_scheduler(benchmark, emit, kaggle_small_log, small_fae_config):
    results = benchmark.pedantic(
        run_ablation, args=(kaggle_small_log, small_fae_config), rounds=1, iterations=1
    )

    table = format_table(
        ["schedule", "test acc %", "sync events"],
        [
            [label, f"{100 * r.final_test_accuracy:.2f}", str(r.sync_events)]
            for label, r in results.items()
        ],
        title="Ablation - shuffle-scheduler rate",
    )
    emit("abl_scheduler", table)

    # Finer interleaving costs more syncs.
    assert results["fixed R(1)"].sync_events > results["fixed R(50)"].sync_events
    assert results["fixed R(50)"].sync_events >= results["fixed R(100)"].sync_events
    # The adaptive schedule stays within noise of the best fixed schedule.
    best = max(r.final_test_accuracy for r in results.values())
    assert results["adaptive (Eq. 7)"].final_test_accuracy >= best - 0.025
    # And uses far fewer syncs than R(1).
    assert (
        results["adaptive (Eq. 7)"].sync_events
        < results["fixed R(1)"].sync_events / 2
    )
