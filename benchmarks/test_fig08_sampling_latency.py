"""Fig 8: profiling-latency reduction from input sampling.

Paper: sampling 5% of inputs cuts access-profiling latency by 19-55x
(the Taobao end of the band reflects its 21-sub-input streams).  At our
reduced scale the constant overheads weigh more, so the assertion is a
direction check: sampling must deliver a multi-x reduction approaching
the sampling ratio.

Timings come from the telemetry subsystem, not ad-hoc stopwatches: the
measurement runs under tracing, exports ``benchmarks/out/*.jsonl``, and
the reported numbers are the ``calibrate.profile`` span durations read
back from that artifact (grouped by their ``num_sampled`` attribute).
"""

from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis import format_table
from repro.core import EmbeddingLogger, SparseInputSampler

OUT_DIR = Path(__file__).parent / "out"
REPEATS = 3


def measure(log, config):
    logger = EmbeddingLogger(config)
    sampler = SparseInputSampler(0.05, seed=0)
    full_indices = np.arange(len(log))

    with obs.tracing(enabled=True) as tracer:
        tracer.reset()
        for _ in range(REPEATS):
            logger.profile(log, full_indices)
        sample = sampler.sample(log)
        for _ in range(REPEATS):
            logger.profile(log, sample.indices)
        trace_path = obs.export_jsonl(OUT_DIR / "fig08_sampling_latency.jsonl")

    # The legacy timer attribute stays populated (aliases the last span).
    assert logger.last_elapsed_seconds > 0

    profile_spans = [
        r
        for r in obs.load_jsonl(trace_path)
        if r.get("type") == "span" and r["name"] == "calibrate.profile"
    ]
    full_seconds = min(
        r["duration"] for r in profile_spans if r["attributes"]["num_sampled"] == len(log)
    )
    sampled_seconds = min(
        r["duration"] for r in profile_spans if r["attributes"]["num_sampled"] < len(log)
    )
    return full_seconds, sampled_seconds


def test_fig08_sampling_latency(benchmark, emit, kaggle_medium_log, medium_fae_config):
    full_seconds, sampled_seconds = benchmark.pedantic(
        measure, args=(kaggle_medium_log, medium_fae_config), rounds=1, iterations=1
    )
    reduction = full_seconds / sampled_seconds

    table = format_table(
        ["mode", "seconds", "reduction"],
        [
            ["full profile", f"{full_seconds:.4f}", "1.0x"],
            ["5% sample", f"{sampled_seconds:.4f}", f"{reduction:.1f}x"],
        ],
        title="Fig 8 - profiling latency, full vs 5% sampled (paper: 19-55x)",
    )
    emit("fig08_sampling_latency", table)

    assert reduction > 2.0
