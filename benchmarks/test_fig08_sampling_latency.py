"""Fig 8: profiling-latency reduction from input sampling.

Paper: sampling 5% of inputs cuts access-profiling latency by 19-55x
(the Taobao end of the band reflects its 21-sub-input streams).  At our
reduced scale the constant overheads weigh more, so the assertion is a
direction check: sampling must deliver a multi-x reduction approaching
the sampling ratio.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core import EmbeddingLogger, SparseInputSampler


def measure(log, config, repeats=3):
    logger = EmbeddingLogger(config)
    sampler = SparseInputSampler(0.05, seed=0)

    def best_time(indices):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            logger.profile(log, indices)
            best = min(best, time.perf_counter() - start)
        return best

    full_seconds = best_time(np.arange(len(log)))
    sample = sampler.sample(log)
    sampled_seconds = best_time(sample.indices)
    return full_seconds, sampled_seconds


def test_fig08_sampling_latency(benchmark, emit, kaggle_medium_log, medium_fae_config):
    full_seconds, sampled_seconds = benchmark.pedantic(
        measure, args=(kaggle_medium_log, medium_fae_config), rounds=1, iterations=1
    )
    reduction = full_seconds / sampled_seconds

    table = format_table(
        ["mode", "seconds", "reduction"],
        [
            ["full profile", f"{full_seconds:.4f}", "1.0x"],
            ["5% sample", f"{sampled_seconds:.4f}", f"{reduction:.1f}x"],
        ],
        title="Fig 8 - profiling latency, full vs 5% sampled (paper: 19-55x)",
    )
    emit("fig08_sampling_latency", table)

    assert reduction > 2.0
