"""Fig 14: per-phase latency breakdown, baseline vs FAE.

Paper's observations this bench must reproduce:
- the CPU-resident optimizer is a large slice of baseline time;
- FAE adds an embedding-sync slice absent from the baseline;
- FAE eliminates the CPU optimizer for hot mini-batches, shrinking the
  optimizer share;
- Kaggle shows a larger sync share than Terabyte relative to its runtime
  contribution (its hot bag is a larger fraction of its total time).
"""

from repro.analysis import format_table
from repro.hw import Cluster, TrainingSimulator


def build_breakdowns(workloads, num_gpus=4):
    results = {}
    for name, workload in workloads.items():
        sim = TrainingSimulator(Cluster(num_gpus=num_gpus), workload)
        results[name] = {
            "baseline": sim.epoch("baseline").breakdown,
            "fae": sim.epoch("fae").breakdown,
        }
    return results


def test_fig14_latency_breakdown(benchmark, emit, paper_workloads):
    results = benchmark(build_breakdowns, paper_workloads)

    phases = sorted(
        {p for r in results.values() for b in r.values() for p in b.phases}
    )
    rows = []
    for name, modes in sorted(results.items()):
        for mode, breakdown in modes.items():
            rows.append(
                [
                    f"{name}/{mode}",
                    *[f"{100 * breakdown.fraction(p):.1f}" for p in phases],
                ]
            )
    table = format_table(
        ["config", *phases], rows, title="Fig 14 - phase shares (%), 4 GPUs"
    )
    emit("fig14_breakdown", table)

    for name, modes in results.items():
        base = modes["baseline"]
        fae = modes["fae"]
        # CPU optimizer is a visible baseline slice for the DLRM
        # workloads (the paper's Taobao breakdown is instead dominated
        # by TBSM's per-timestep forward/backward dispatch).
        if name in ("RMC2", "RMC3"):
            assert base.fraction("optimizer_cpu") > 0.08, name
        assert fae.fraction("optimizer_cpu") < base.fraction("optimizer_cpu"), name
        # Sync exists only under FAE.
        assert "embedding_sync" not in base.phases
        assert fae.phases.get("embedding_sync", 0.0) > 0.0
        # FAE shifts work onto the GPU.
        assert fae.fraction("emb_forward_gpu") > 0.0
        assert "emb_forward_gpu" not in base.phases
