"""Ablation: serial vs overlap-aware (pipelined) cost accounting.

The closed-form simulator charges phases serially.  This ablation
re-times both execution modes with the discrete-event pipeline scheduler
(cross-batch CPU/GPU/PCIe overlap, double buffering) and checks that the
paper's conclusion is robust to that modeling choice: overlap helps the
baseline more (its CPU and GPU phases can hide each other) yet FAE keeps
a solid end-to-end win, because the baseline's critical resource — the
CPU — is saturated either way.
"""

from repro.analysis import format_table
from repro.hw import Cluster, PipelinedSimulator, TrainingSimulator

BATCHES = 64


def build_comparison(workloads):
    rows = {}
    for name, workload in workloads.items():
        cluster = Cluster(num_gpus=4)
        serial = TrainingSimulator(cluster, workload)
        pipe = PipelinedSimulator(cluster, workload)

        per_cold = serial.baseline_batch().total
        per_hot = serial.hot_batch().total
        num_hot = round(BATCHES * workload.hot_fraction)
        serial_base = per_cold * BATCHES
        serial_fae = per_hot * num_hot + per_cold * (BATCHES - num_hot)

        pipe_base = pipe.baseline_epoch(max_batches=BATCHES)
        pipe_fae = pipe.fae_epoch(max_batches=BATCHES)
        rows[name] = {
            "serial_speedup": serial_base / serial_fae,
            "pipelined_speedup": pipe_base.makespan / pipe_fae.makespan,
            "baseline_overlap": serial_base / pipe_base.makespan,
            "fae_overlap": serial_fae / pipe_fae.makespan,
            "baseline_bottleneck": pipe_base.critical_resource(),
        }
    return rows


def test_abl_pipeline_overlap(benchmark, emit, paper_workloads):
    rows = benchmark(build_comparison, paper_workloads)

    emit(
        "abl_pipeline",
        format_table(
            ["workload", "serial speedup", "pipelined speedup", "base overlap", "fae overlap", "base bottleneck"],
            [
                [
                    name,
                    f"{r['serial_speedup']:.2f}x",
                    f"{r['pipelined_speedup']:.2f}x",
                    f"{r['baseline_overlap']:.2f}x",
                    f"{r['fae_overlap']:.2f}x",
                    r["baseline_bottleneck"],
                ]
                for name, r in sorted(rows.items())
            ],
            title="Ablation - overlap-aware accounting (64 batches, 4 GPUs)",
        ),
    )

    for name, r in rows.items():
        # Overlap never hurts, and the FAE win survives it.
        assert r["baseline_overlap"] >= 0.999, name
        assert r["fae_overlap"] >= 0.999, name
        assert r["pipelined_speedup"] > 1.0, name
        # The baseline stays CPU-bound even with perfect prefetching.
        assert r["baseline_bottleneck"] == "cpu", name
