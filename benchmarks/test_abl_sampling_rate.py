"""Ablation: input-sampling rate x vs calibration fidelity and cost.

The paper fixes x = 5%; this sweep shows why: below ~2% the sampled
profile starts mis-ranking rows, while above ~10% the extra scanning buys
no additional fidelity.
"""

import time

import numpy as np

from repro.analysis import series_table
from repro.core import EmbeddingLogger, SparseInputSampler

RATES = (0.01, 0.02, 0.05, 0.10, 0.25, 1.0)


def run_sweep(log, config):
    logger = EmbeddingLogger(config)
    big_table = max(log.schema.tables, key=lambda t: t.num_rows).name
    full_profile = logger.profile(log, np.arange(len(log)))
    full_curve = np.log1p(full_profile.tables[big_table].rank_frequency(3000).astype(float))

    correlations = []
    seconds = []
    for rate in RATES:
        sample = SparseInputSampler(rate, seed=9).sample(log)
        start = time.perf_counter()
        profile = logger.profile(log, sample.indices)
        seconds.append(time.perf_counter() - start)
        curve = np.log1p(profile.tables[big_table].rank_frequency(3000).astype(float))
        correlations.append(float(np.corrcoef(full_curve, curve)[0, 1]))
    return correlations, seconds


def test_abl_sampling_rate(benchmark, emit, kaggle_medium_log, medium_fae_config):
    correlations, seconds = benchmark.pedantic(
        run_sweep, args=(kaggle_medium_log, medium_fae_config), rounds=1, iterations=1
    )

    table = series_table(
        "sample rate",
        ["profile correlation", "profiling seconds"],
        RATES,
        [correlations, seconds],
    )
    emit("abl_sampling_rate", "Ablation - sampling rate sweep\n" + table)

    by_rate = dict(zip(RATES, correlations))
    # 5% already nails the signature (the paper's operating point).
    assert by_rate[0.05] > 0.95
    # Fidelity is monotone-ish: full sampling is the ceiling.
    assert by_rate[1.0] >= by_rate[0.01]
    # Cost grows with the rate.
    assert seconds[-1] > seconds[0]
