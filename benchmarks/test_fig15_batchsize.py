"""Fig 15: FAE speedup vs mini-batch size.

Paper: larger mini-batches amortize FAE's fixed overheads (replication,
scheduling) faster than they help the baseline, growing the speedup to
~4.7x at large batches.
"""

from dataclasses import replace

from repro.analysis import series_table
from repro.hw import Cluster, TrainingSimulator

BATCH_SIZES = (256, 1024, 4096, 16384, 32768)


def build_sweep(workloads):
    sweeps = {}
    for name, workload in workloads.items():
        sweeps[name] = [
            TrainingSimulator(
                Cluster(num_gpus=1), replace(workload, base_batch_size=b)
            ).speedup()
            for b in BATCH_SIZES
        ]
    return sweeps


def test_fig15_speedup_vs_batch_size(benchmark, emit, paper_workloads):
    sweeps = benchmark(build_sweep, paper_workloads)

    table = series_table(
        "batch",
        sorted(sweeps),
        BATCH_SIZES,
        [sweeps[name] for name in sorted(sweeps)],
    )
    emit(
        "fig15_batchsize",
        "Fig 15 - FAE speedup vs mini-batch size (paper: up to ~4.7x)\n" + table,
    )

    for name, speedups in sweeps.items():
        # Growth with batch size up to a mild roll-off at the largest
        # batch (amortization eventually helps the baseline too).
        rising = speedups[:-1]
        assert rising == sorted(rising), name
        assert speedups[-1] >= 0.9 * max(speedups), name
        assert max(speedups) > speedups[0] * 1.3, name
        # Capped in the paper's ballpark (under ~6x).
        assert max(speedups) < 6.0, name
    # The largest-batch best speedup approaches the paper's 4.7x.
    best = max(s[-1] for s in sweeps.values())
    assert 2.5 < best < 6.0
