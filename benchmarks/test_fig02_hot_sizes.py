"""Fig 2: embedding table sizes vs hot-portion sizes.

Paper: full embedding tables are 0.3 GB (Taobao), ~2 GB (Kaggle), and
~61 GB (Terabyte), yet the hot portions are all under 256 MB while
capturing the large majority of accesses.
"""

from repro.analysis import format_table
from repro.data import dataset_by_name
from repro.hw.workload import analytic_hot_stats

BUDGET = 256 * 2**20


def build_rows():
    rows = []
    for name in ("taobao", "criteo-kaggle", "criteo-terabyte"):
        schema = dataset_by_name(name, "paper")
        hot_fraction, hot_bytes = analytic_hot_stats(schema, BUDGET)
        rows.append(
            {
                "dataset": name,
                "total_gb": schema.total_embedding_bytes / 1e9,
                "hot_mb": hot_bytes / 2**20,
                "hot_input_pct": 100 * hot_fraction,
            }
        )
    return rows


def test_fig02_hot_embedding_sizes(benchmark, emit):
    rows = benchmark(build_rows)

    table = format_table(
        ["dataset", "total emb (GB)", "hot portion (MB)", "hot inputs (%)"],
        [
            [
                r["dataset"],
                f"{r['total_gb']:.2f}",
                f"{r['hot_mb']:.1f}",
                f"{r['hot_input_pct']:.1f}",
            ]
            for r in rows
        ],
        title="Fig 2 - embedding sizes vs hot portions (budget 256 MB)",
    )
    emit("fig02_hot_sizes", table)

    by_name = {r["dataset"]: r for r in rows}
    # Paper: totals ~0.3 / 2 / 61 GB.
    assert 0.25 < by_name["taobao"]["total_gb"] < 0.40
    assert 1.8 < by_name["criteo-kaggle"]["total_gb"] < 2.4
    assert 55 < by_name["criteo-terabyte"]["total_gb"] < 67
    # Paper: hot portions always fit under 256 MB.
    for r in rows:
        assert r["hot_mb"] <= 256 * 1.01
    # Paper: hot inputs are the large majority (75-92% band, loosened).
    for r in rows:
        assert r["hot_input_pct"] > 60
