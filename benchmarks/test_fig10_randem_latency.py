"""Fig 10: per-iteration latency reduction from the Rand-Em Box.

Paper: scanning 35 x 1024 sampled rows instead of the whole table cuts
the per-threshold estimation latency 14.5-61x; total per-iteration scan
time stays under 25 seconds.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core import FAEConfig, RandEmBox
from repro.core.access_profile import TableProfile


def measure(repeats=5):
    rng = np.random.default_rng(2)
    counts = rng.zipf(1.4, size=4_000_000).astype(np.int64)
    profile = TableProfile("big", counts, dim=16)
    config = FAEConfig(chunk_size=1024, num_chunks=35)
    box = RandEmBox(config, seed=3)
    min_count = 4

    full_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        profile.hot_row_count(min_count)  # the naive full scan
        full_best = min(full_best, time.perf_counter() - start)

    sampled_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        box.estimate(profile, min_count)
        sampled_best = min(sampled_best, time.perf_counter() - start)

    return full_best, sampled_best, box.scan_reduction(profile)


def test_fig10_randem_latency(benchmark, emit):
    full_seconds, sampled_seconds, scan_reduction = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    reduction = full_seconds / sampled_seconds

    table = format_table(
        ["mode", "seconds", "rows scanned", "latency reduction"],
        [
            ["full scan", f"{full_seconds:.5f}", "4,000,000", "1.0x"],
            [
                "Rand-Em Box",
                f"{sampled_seconds:.5f}",
                "35,840",
                f"{reduction:.1f}x",
            ],
        ],
        title=(
            "Fig 10 - per-iteration estimation latency "
            f"(scan reduction {scan_reduction:.0f}x; paper: 14.5-61x)"
        ),
    )
    emit("fig10_randem_latency", table)

    assert scan_reduction > 14.0
    assert reduction > 3.0  # wall-clock benefit at our table size
    assert sampled_seconds < 25.0  # paper: under 25 s per iteration
