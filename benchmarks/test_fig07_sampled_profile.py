"""Fig 7: access profile from the full dataset vs a 5% random sample.

Paper: randomly sampling 5% of inputs produces the same access signature
into a large embedding table as profiling the whole dataset.
"""

import numpy as np

from repro.analysis import series_table
from repro.core import EmbeddingLogger, SparseInputSampler


def build_profiles(log, config):
    logger = EmbeddingLogger(config)
    big_table = max(log.schema.tables, key=lambda t: t.num_rows).name

    full = logger.profile(log, np.arange(len(log)))
    sample = SparseInputSampler(0.05, seed=1).sample(log)
    sampled = logger.profile(log, sample.indices)

    full_curve = full.tables[big_table].rank_frequency(2000).astype(float)
    sampled_curve = sampled.tables[big_table].rank_frequency(2000).astype(float)
    # Rescale the sample to full-dataset magnitudes for comparison.
    sampled_curve_scaled = sampled_curve / sample.rate
    return full_curve, sampled_curve_scaled


def test_fig07_sampled_access_profile(benchmark, emit, kaggle_medium_log, medium_fae_config):
    full, sampled = benchmark(build_profiles, kaggle_medium_log, medium_fae_config)

    ranks = [1, 10, 100, 500, 1000, 1999]
    table = series_table(
        "rank",
        ["full accesses", "sampled x20"],
        ranks,
        [[full[r - 1] for r in ranks], [sampled[r - 1] for r in ranks]],
    )
    emit("fig07_sampled_profile", "Fig 7 - full vs 5% sampled access profile\n" + table)

    log_full = np.log1p(full)
    log_sampled = np.log1p(sampled)
    corr = float(np.corrcoef(log_full, log_sampled)[0, 1])
    assert corr > 0.98  # same signature
    # Head magnitudes agree within ~15% after rescaling.
    assert sampled[0] == __import__("pytest").approx(full[0], rel=0.15)
