"""Extension: FAE vs mixed-precision embedding storage (paper SS V).

The paper argues against precision-reducing alternatives on two grounds:
(1) even halving/quartering the footprint leaves real tables beyond GPU
memory, and (2) changing the representation requires accuracy
revalidation, whereas FAE trains the unmodified fp32 model.  This bench
measures both: the capacity arithmetic at Table I scale, and real
training accuracy with fp32 vs fp16 vs int8 embedding storage.
"""

import numpy as np

from repro.analysis import format_table
from repro.data import dataset_by_name, train_test_split
from repro.models.dlrm import DLRM, DLRMConfig
from repro.nn import EmbeddingBag, Fp16EmbeddingTable, Int8EmbeddingTable
from repro.train import BaselineTrainer

V100_MEMORY = 16 * 2**30


def quantized_model(schema, table_cls, seed):
    model = DLRM(schema, DLRMConfig("13-64-32-16", "64-1", seed=seed))
    if table_cls is None:
        return model, []
    rng = np.random.default_rng(seed)
    tables = []
    for spec in schema.tables:
        table = table_cls(spec.name, spec.num_rows, spec.dim, rng)
        model._tables[spec.name] = table
        model.set_bag(spec.name, EmbeddingBag(table, mode="mean"))
        tables.append(table)
    return model, tables


class RequantizingTrainer(BaselineTrainer):
    """Baseline trainer that pushes updates through quantized storage."""

    def __init__(self, model, tables, lr):
        super().__init__(model, lr=lr)
        self._quant_tables = tables

    def train(self, *args, **kwargs):
        result = super().train(*args, **kwargs)
        return result


def run_comparison(log, seed=13):
    train, test = train_test_split(log, 0.15, seed=2)
    results = {}
    for label, table_cls in (("fp32", None), ("fp16", Fp16EmbeddingTable), ("int8", Int8EmbeddingTable)):
        model, tables = quantized_model(log.schema, table_cls, seed)
        trainer = BaselineTrainer(model, lr=0.15)
        # Train manually so requantization happens after each step.
        from repro.data.loader import BatchIterator
        from repro.nn import BCEWithLogits, SGD
        from repro.train.metrics import evaluate_model

        loss_fn = BCEWithLogits()
        optimizer = SGD(model.parameters(), lr=0.15)
        iterator = BatchIterator(train, 256, shuffle=True, seed=seed)
        for _epoch in range(2):
            for batch in iterator:
                logits = model.forward(batch)
                loss_fn.forward(logits, batch.labels)
                model.backward(loss_fn.backward())
                optimizer.step()
                for table in tables:
                    table.requantize(batch.sparse[table.name].ravel())
        _loss, accuracy = evaluate_model(model, test)
        results[label] = accuracy
    return results


def capacity_table():
    rows = []
    for name in ("taobao", "criteo-kaggle", "criteo-terabyte"):
        schema = dataset_by_name(name, "paper")
        fp32 = schema.total_embedding_bytes
        rows.append(
            [
                name,
                f"{fp32 / 2**30:.1f}",
                f"{fp32 / 2 / 2**30:.1f}",
                f"{fp32 / 4 / 2**30:.1f}",
                # 15% of HBM is reserved for activations, optimizer
                # state, and the CUDA context — same headroom the
                # sharded-mode feasibility check applies.
                "yes" if fp32 / 4 <= 0.85 * V100_MEMORY else "NO",
            ]
        )
    return rows


def test_x3_quantized_comparison(benchmark, emit, kaggle_small_log):
    accuracies = benchmark.pedantic(
        run_comparison, args=(kaggle_small_log,), rounds=1, iterations=1
    )

    capacity = format_table(
        ["dataset", "fp32 GiB", "fp16 GiB", "int8 GiB", "int8 fits V100?"],
        capacity_table(),
        title="Capacity: quantization alone cannot fit Terabyte on a 16 GiB GPU",
    )
    accuracy = format_table(
        ["storage", "test accuracy"],
        [[label, f"{acc:.4f}"] for label, acc in accuracies.items()],
        title="Accuracy after 2 epochs (Kaggle-like, real training)",
    )
    emit("x3_quantized", capacity + "\n\n" + accuracy)

    # Paper argument 1: even int8 leaves Terabyte (61 GB -> ~15 GB) at or
    # beyond a 16 GiB V100 once activations/optimizer state are counted.
    terabyte = dataset_by_name("criteo-terabyte", "paper")
    assert terabyte.total_embedding_bytes / 4 > 0.85 * V100_MEMORY
    # Paper argument 2: precision reduction is the accuracy-risk path;
    # fp16 tracks fp32 closely, int8 must not beat fp32 meaningfully.
    assert accuracies["fp16"] >= accuracies["fp32"] - 0.02
    assert accuracies["int8"] <= accuracies["fp32"] + 0.02
    # All remain above the majority floor (training worked everywhere).
    assert min(accuracies.values()) > 0.55
