"""Table I: model architecture parameters and dataset characteristics."""

from repro.analysis import format_table
from repro.data import dataset_by_name
from repro.models import WORKLOADS, build_model


def build_rows():
    rows = []
    for name in ("RMC1", "RMC2", "RMC3"):
        spec = WORKLOADS[name]
        schema = dataset_by_name(spec.dataset, "paper")
        model = build_model(spec, scale="tiny")
        rows.append(
            {
                "workload": name,
                "model": spec.model_kind,
                "dataset": spec.dataset,
                "samples_m": schema.num_samples / 1e6,
                "dense": schema.num_dense,
                "tables": schema.num_sparse,
                "emb_gb": schema.total_embedding_bytes / 1e9,
                "dim": schema.tables[0].dim,
                "largest_m": max(t.num_rows for t in schema.tables) / 1e6,
                "bottom_mlp": spec.bottom_mlp,
                "top_mlp": spec.top_mlp,
                "params": model.num_parameters(),
            }
        )
    return rows


def test_tab1_workloads(benchmark, emit):
    rows = benchmark(build_rows)

    table = format_table(
        [
            "wl", "model", "dataset", "inputs(M)", "dense", "tables",
            "emb(GB)", "dim", "largest(M)", "bottom MLP", "top MLP",
        ],
        [
            [
                r["workload"], r["model"], r["dataset"], f"{r['samples_m']:.0f}",
                str(r["dense"]), str(r["tables"]), f"{r['emb_gb']:.1f}",
                str(r["dim"]), f"{r['largest_m']:.1f}", r["bottom_mlp"], r["top_mlp"],
            ]
            for r in rows
        ],
        title="Table I - workloads",
    )
    emit("tab1_workloads", table)

    by_name = {r["workload"]: r for r in rows}
    # Table I rows.
    assert by_name["RMC1"]["model"] == "tbsm"
    assert by_name["RMC1"]["dense"] == 3 and by_name["RMC1"]["tables"] == 3
    assert by_name["RMC1"]["samples_m"] == 10
    assert by_name["RMC2"]["dense"] == 13 and by_name["RMC2"]["tables"] == 26
    assert by_name["RMC2"]["dim"] == 16 and by_name["RMC3"]["dim"] == 64
    assert by_name["RMC3"]["samples_m"] == 80
    assert abs(by_name["RMC1"]["largest_m"] - 4.1) < 0.2
    assert abs(by_name["RMC2"]["largest_m"] - 10.1) < 0.2
    assert abs(by_name["RMC3"]["largest_m"] - 73.1) < 0.2
