"""Shared benchmark fixtures.

Each benchmark regenerates one paper table or figure: the timed callable
builds the data series, and the rendered output is written to
``benchmarks/out/<name>.txt`` (and printed when run with ``-s``), so the
bench output *is* the artifact.  EXPERIMENTS.md summarizes paper-reported
vs measured values for every experiment.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import FAEConfig
from repro.data import SyntheticClickLog, SyntheticConfig, dataset_by_name
from repro.hw import characterize
from repro.models import WORKLOADS

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def emit():
    """Writer for rendered tables/figures: emit(name, text)."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _emit


@pytest.fixture(scope="session")
def paper_workloads():
    """Paper-scale workload characters for all three Table I rows."""
    return {name: characterize(spec) for name, spec in WORKLOADS.items()}


@pytest.fixture(scope="session")
def kaggle_small_log():
    schema = dataset_by_name("criteo-kaggle", "small")
    return SyntheticClickLog(schema, SyntheticConfig(num_samples=60_000, seed=42))


@pytest.fixture(scope="session")
def kaggle_medium_log():
    """A larger log for the profiling-latency benches (Fig 7/8/10/11)."""
    schema = dataset_by_name("criteo-kaggle", "medium")
    return SyntheticClickLog(schema, SyntheticConfig(num_samples=400_000, seed=42))


@pytest.fixture(scope="session")
def small_fae_config():
    """FAE config with cutoffs scaled to the 1/1000 datasets.

    The budget scales like the tables (256 MB / 1000 ~ 256 KB) so the
    calibration dynamics mirror the paper-scale run.
    """
    return FAEConfig(
        gpu_memory_budget=256 * 1024,
        large_table_min_bytes=1024,
        chunk_size=64,
        seed=7,
    )


@pytest.fixture(scope="session")
def medium_fae_config():
    return FAEConfig(
        gpu_memory_budget=int(2.56 * 2**20),
        large_table_min_bytes=10 * 1024,
        chunk_size=256,
        seed=7,
    )
