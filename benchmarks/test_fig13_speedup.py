"""Fig 13: FAE speedup over baseline at 1/2/4 GPUs, all workloads.

Paper: FAE cuts average training time by 54/54/58% at 1/2/4 GPUs —
an average 2.34x speedup at 4 GPUs — with the 4-GPU configuration
benefiting most on the Criteo datasets.
"""

import numpy as np

from repro.analysis import series_table
from repro.hw import Cluster, TrainingSimulator

PAPER_SPEEDUPS = {  # from Table IV (baseline / FAE)
    "RMC1": {1: 2.28, 2: 2.20, 4: 1.64},
    "RMC2": {1: 2.00, 2: 1.68, 4: 1.92},
    "RMC3": {1: 2.59, 2: 2.10, 4: 2.33},
}
GPUS = (1, 2, 4)


def build_speedups(workloads):
    measured = {}
    for name, workload in workloads.items():
        measured[name] = [
            TrainingSimulator(Cluster(num_gpus=k), workload).speedup() for k in GPUS
        ]
    return measured


def test_fig13_speedups(benchmark, emit, paper_workloads):
    measured = benchmark(build_speedups, paper_workloads)

    rows = []
    labels = []
    for name in ("RMC1", "RMC2", "RMC3"):
        labels.append(f"{name} measured")
        rows.append(measured[name])
        labels.append(f"{name} paper")
        rows.append([PAPER_SPEEDUPS[name][k] for k in GPUS])
    table = series_table("gpus", labels, GPUS, rows)
    emit("fig13_speedup", "Fig 13 - FAE speedup over baseline\n" + table)

    # Every configuration wins.
    for name in measured:
        for speedup in measured[name]:
            assert speedup > 1.0
    # Headline: average 4-GPU speedup near the paper's 2.34x.
    avg4 = float(np.mean([measured[n][-1] for n in measured]))
    assert 1.7 <= avg4 <= 3.0
    # Criteo Terabyte benefits the most (largest tables, paper ordering).
    assert measured["RMC3"][-1] == max(m[-1] for m in measured.values())
    # Per-workload speedups within ~0.8x-1.5x of the paper's values.
    for name in measured:
        for k, got in zip(GPUS, measured[name]):
            paper = PAPER_SPEEDUPS[name][k]
            assert 0.55 * paper <= got <= 1.6 * paper, (name, k, got, paper)
