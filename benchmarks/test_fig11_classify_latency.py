"""Fig 11: input-processor classification latency vs access threshold.

Paper: classifying every sparse input as hot or cold takes at most ~110
seconds on their 45-80M-input datasets, even for very low thresholds.
The operation is one vectorized membership pass per table, so latency is
essentially threshold-independent; at our 1/100 scale it must stay well
under a second.
"""

import time

import numpy as np

from repro.analysis import series_table
from repro.core import EmbeddingClassifier, EmbeddingLogger, InputProcessor

THRESHOLDS = (1e-2, 1e-3, 1e-4, 1e-5)


def measure(log, config):
    profile = EmbeddingLogger(config).profile(log, np.arange(len(log)))
    classifier = EmbeddingClassifier(config)
    latencies = []
    hot_pcts = []
    for threshold in THRESHOLDS:
        bags = classifier.classify(profile, threshold)
        processor = InputProcessor(bags, seed=0)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            hot_mask = processor.classify_inputs(log)
            best = min(best, time.perf_counter() - start)
        latencies.append(best)
        hot_pcts.append(100.0 * hot_mask.mean())
    return latencies, hot_pcts


def test_fig11_classification_latency(benchmark, emit, kaggle_medium_log, medium_fae_config):
    latencies, hot_pcts = benchmark.pedantic(
        measure, args=(kaggle_medium_log, medium_fae_config), rounds=1, iterations=1
    )

    table = series_table(
        "threshold",
        ["classify seconds", "hot inputs (%)"],
        THRESHOLDS,
        [latencies, hot_pcts],
    )
    emit(
        "fig11_classify_latency",
        "Fig 11 - input classification latency (400K inputs; paper <=110 s at 45-80M)\n"
        + table,
    )

    # Latency roughly flat across thresholds and small at this scale.
    assert max(latencies) < 2.0
    assert max(latencies) / min(latencies) < 5.0
    # Hot share grows as the threshold loosens.
    assert hot_pcts == sorted(hot_pcts)
