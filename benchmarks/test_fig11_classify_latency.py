"""Fig 11: input-processor classification latency vs access threshold.

Paper: classifying every sparse input as hot or cold takes at most ~110
seconds on their 45-80M-input datasets, even for very low thresholds.
The operation is one vectorized membership pass per table, so latency is
essentially threshold-independent; at our 1/100 scale it must stay well
under a second.

Timings come from the telemetry subsystem: each classification runs
under tracing, the spans are exported to ``benchmarks/out/*.jsonl``, and
latencies are the ``classify`` span durations read back from that
artifact (the spans arrive in threshold order, ``REPEATS`` per
threshold; min-of-repeats per group).
"""

from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis import series_table
from repro.core import EmbeddingClassifier, EmbeddingLogger, InputProcessor

OUT_DIR = Path(__file__).parent / "out"
THRESHOLDS = (1e-2, 1e-3, 1e-4, 1e-5)
REPEATS = 3


def measure(log, config):
    profile = EmbeddingLogger(config).profile(log, np.arange(len(log)))
    classifier = EmbeddingClassifier(config)
    hot_pcts = []

    with obs.tracing(enabled=True) as tracer:
        tracer.reset()
        for threshold in THRESHOLDS:
            bags = classifier.classify(profile, threshold)
            processor = InputProcessor(bags, seed=0)
            for _ in range(REPEATS):
                hot_mask = processor.classify_inputs(log)
            hot_pcts.append(100.0 * hot_mask.mean())
        trace_path = obs.export_jsonl(OUT_DIR / "fig11_classify_latency.jsonl")

    # The legacy timer attribute stays populated (aliases the last span).
    assert processor.last_classify_seconds > 0

    classify_spans = [
        r
        for r in obs.load_jsonl(trace_path)
        if r.get("type") == "span" and r["name"] == "classify"
    ]
    assert len(classify_spans) == len(THRESHOLDS) * REPEATS
    latencies = [
        min(r["duration"] for r in classify_spans[i * REPEATS : (i + 1) * REPEATS])
        for i in range(len(THRESHOLDS))
    ]
    return latencies, hot_pcts


def test_fig11_classification_latency(benchmark, emit, kaggle_medium_log, medium_fae_config):
    latencies, hot_pcts = benchmark.pedantic(
        measure, args=(kaggle_medium_log, medium_fae_config), rounds=1, iterations=1
    )

    table = series_table(
        "threshold",
        ["classify seconds", "hot inputs (%)"],
        THRESHOLDS,
        [latencies, hot_pcts],
    )
    emit(
        "fig11_classify_latency",
        "Fig 11 - input classification latency (400K inputs; paper <=110 s at 45-80M)\n"
        + table,
    )

    # Latency roughly flat across thresholds and small at this scale.
    assert max(latencies) < 2.0
    assert max(latencies) / min(latencies) < 5.0
    # Hot share grows as the threshold loosens.
    assert hot_pcts == sorted(hot_pcts)
