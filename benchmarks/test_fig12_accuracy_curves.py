"""Fig 12: accuracy vs training iterations, FAE vs baseline.

Paper: FAE's interleaved hot/cold schedule reaches the baseline accuracy
for both training and test sets on all three datasets.  We reproduce the
Kaggle-like curve with real numpy training at reduced scale.
"""

from repro.analysis import series_table
from repro.core import fae_preprocess
from repro.data import train_test_split
from repro.models.dlrm import DLRM, DLRMConfig
from repro.train import BaselineTrainer, FAETrainer


def run_training(log, config):
    train, test = train_test_split(log, 0.15, seed=3)
    plan = fae_preprocess(train, config, batch_size=256)
    schema = log.schema

    baseline_model = DLRM(schema, DLRMConfig("13-64-32-16", "64-1", seed=17))
    baseline = BaselineTrainer(baseline_model, lr=0.15).train(
        train, test, epochs=2, batch_size=256, eval_every=25
    )

    fae_model = DLRM(schema, DLRMConfig("13-64-32-16", "64-1", seed=17))
    fae = FAETrainer(fae_model, plan, lr=0.15).train(train, test, epochs=2)
    return baseline, fae, plan


def test_fig12_accuracy_curves(benchmark, emit, kaggle_small_log, small_fae_config):
    baseline, fae, plan = benchmark.pedantic(
        run_training, args=(kaggle_small_log, small_fae_config), rounds=1, iterations=1
    )

    b_iters, b_acc = baseline.history.series("test_accuracy")
    f_iters, f_acc = fae.history.series("test_accuracy")
    n = min(len(b_iters), len(f_iters), 12)
    table = series_table(
        "point",
        ["baseline iter", "baseline acc", "fae iter", "fae acc"],
        list(range(1, n + 1)),
        [b_iters[:n], b_acc[:n], f_iters[:n], f_acc[:n]],
    )
    emit(
        "fig12_accuracy_curves",
        f"Fig 12 - accuracy vs iterations ({plan.summary()})\n" + table
        + f"\nfinal: baseline {baseline.final_test_accuracy:.4f} "
        f"fae {fae.final_test_accuracy:.4f}",
    )

    # FAE reaches baseline accuracy (paper's central accuracy claim).
    assert fae.final_test_accuracy >= baseline.final_test_accuracy - 0.02
    # Both beat the majority-class floor.
    majority = 0.55
    assert baseline.final_test_accuracy > majority
    assert fae.final_test_accuracy > majority
    # FAE's curve ends at/near its best (converging, not oscillating).
    assert fae.final_test_accuracy >= fae.history.best_test_accuracy() - 0.03
