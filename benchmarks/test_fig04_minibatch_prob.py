"""Fig 4: probability a naive random mini-batch is entirely hot.

Paper: even with 99% hot inputs, the all-hot probability collapses as the
mini-batch grows — the motivation for explicit pure-batch packing.
"""

import numpy as np

from repro.analysis import series_table
from repro.core import all_hot_batch_probability

BATCH_SIZES = (1, 8, 32, 128, 512, 1024, 4096)
HOT_FRACTIONS = (0.96, 0.98, 0.99)


def build_series():
    analytic = {
        p: [all_hot_batch_probability(p, b) for b in BATCH_SIZES] for p in HOT_FRACTIONS
    }
    # Monte Carlo cross-check at p = 0.99.
    rng = np.random.default_rng(0)
    monte_carlo = []
    for b in BATCH_SIZES:
        draws = rng.random((4000, b)) < 0.99
        monte_carlo.append(float(draws.all(axis=1).mean()))
    return analytic, monte_carlo


def test_fig04_all_hot_probability(benchmark, emit):
    analytic, monte_carlo = benchmark(build_series)

    table = series_table(
        "batch",
        [f"p={p}" for p in HOT_FRACTIONS] + ["p=0.99 (MC)"],
        BATCH_SIZES,
        [analytic[p] for p in HOT_FRACTIONS] + [monte_carlo],
    )
    emit("fig04_minibatch_prob", "Fig 4 - P(all-hot mini-batch)\n" + table)

    # Collapse: near-certain at B=1, negligible at B=1024 (paper's point).
    assert analytic[0.99][0] > 0.98
    assert analytic[0.99][BATCH_SIZES.index(1024)] < 1e-4
    # Analytic matches simulation where MC has resolution.
    for b, mc in zip(BATCH_SIZES, monte_carlo):
        expected = all_hot_batch_probability(0.99, b)
        if expected > 0.01:
            assert abs(mc - expected) < 0.05
    # Lower hot fractions collapse faster.
    for i, _b in enumerate(BATCH_SIZES):
        assert analytic[0.96][i] <= analytic[0.99][i]
