"""Extension: FAE vs model-parallel table sharding (paper SS I / SS V).

The paper argues that splitting embedding tables across GPUs "just for
memory capacity" is suboptimal: the GPU count is dictated by capacity
rather than compute, and every batch pays GPU-GPU exchanges.  This bench
quantifies the comparison honestly:

- for Terabyte-class tables (61 GB), sharding is *infeasible* on the
  paper's 4x16 GB server — FAE runs anywhere with a 256 MB budget;
- for Kaggle-class tables (2 GB) sharding fits and is fast (when tables
  fit on-device, pure GPU execution trivially wins), but it pins the
  full table set in every configuration while FAE holds only 256 MB.
"""

import pytest

from repro.analysis import format_table
from repro.hw import Cluster, TrainingSimulator

GPUS = (1, 2, 4)


def build_comparison(workloads):
    rows = {}
    for name, workload in workloads.items():
        per_gpu = []
        for k in GPUS:
            sim = TrainingSimulator(Cluster(num_gpus=k), workload)
            entry = {
                "fae": sim.epoch("fae").minutes,
                "baseline": sim.epoch("baseline").minutes,
                "feasible": sim.sharded_feasible(),
            }
            entry["sharded"] = sim.epoch("sharded").minutes if entry["feasible"] else None
            per_gpu.append(entry)
        rows[name] = per_gpu
    return rows


def test_x2_sharded_comparison(benchmark, emit, paper_workloads):
    rows = benchmark(build_comparison, paper_workloads)

    table_rows = []
    for name in sorted(rows):
        for k, entry in zip(GPUS, rows[name]):
            sharded = f"{entry['sharded']:.1f}" if entry["feasible"] else "infeasible"
            table_rows.append(
                [name, str(k), f"{entry['baseline']:.1f}", f"{entry['fae']:.1f}", sharded]
            )
    emit(
        "x2_sharded",
        format_table(
            ["workload", "gpus", "baseline min", "FAE min", "sharded min"],
            table_rows,
            title="Extension - FAE vs model-parallel sharding (min/epoch)",
        ),
    )

    # Terabyte (61 GB) cannot shard onto <= 4x16 GB GPUs; FAE always runs.
    for entry in rows["RMC3"]:
        assert not entry["feasible"]
        assert entry["fae"] < entry["baseline"]
    # Taobao/Kaggle tables fit on-device, where pure GPU execution
    # naturally wins — but FAE stays within ~2x while using only a
    # 256 MB slice of GPU memory instead of pinning whole tables.
    for name in ("RMC1", "RMC2"):
        for entry in rows[name]:
            if entry["feasible"]:
                assert entry["sharded"] < entry["baseline"]
                assert entry["fae"] < 2.5 * entry["sharded"], name
