"""Extension: multi-server scaling (paper SS IV-A.3's expectation).

The paper evaluates a single 4-GPU server but states "even in a
multi-server scenario, we expect our insights to hold."  This bench
checks that expectation in the simulator: scaling to 2 and 4 nodes
parallelizes the CPU-side embedding bottleneck across hosts (helping the
baseline) yet FAE keeps a solid advantage, on both commodity Ethernet
and InfiniBand interconnects.
"""

from repro.analysis import series_table
from repro.hw import Cluster, INFINIBAND_HDR, TrainingSimulator

NODE_COUNTS = (1, 2, 4)


def build_sweep(workloads):
    results = {}
    for name, workload in workloads.items():
        ethernet = []
        infiniband = []
        for nodes in NODE_COUNTS:
            eth = Cluster(num_gpus=4).with_nodes(nodes)
            ib = Cluster(num_gpus=4).with_nodes(nodes, network=INFINIBAND_HDR)
            ethernet.append(TrainingSimulator(eth, workload).speedup())
            infiniband.append(TrainingSimulator(ib, workload).speedup())
        results[name] = (ethernet, infiniband)
    return results


def test_abl_multinode(benchmark, emit, paper_workloads):
    results = benchmark(build_sweep, paper_workloads)

    labels = []
    series = []
    for name in sorted(results):
        labels.extend([f"{name} 100GbE", f"{name} IB-HDR"])
        series.extend(results[name])
    table = series_table("nodes (x4 GPU)", labels, NODE_COUNTS, series)
    emit(
        "abl_multinode",
        "Extension - FAE speedup at multi-server scale (weak scaling)\n" + table,
    )

    for name, (ethernet, infiniband) in results.items():
        # The paper's expectation: FAE still wins at every node count
        # (TBSM's dispatch-bound profile narrows the gap at 16 GPUs but
        # never inverts it).
        assert all(s > 1.05 for s in ethernet), name
        assert all(s > 1.05 for s in infiniband), name
        assert ethernet[0] > 1.2, name
        # The advantage shrinks as more host CPUs share the embedding
        # work, but must not collapse.
        assert ethernet[-1] > 0.4 * ethernet[0], name
        # A faster interconnect never hurts.
        for eth, ib in zip(ethernet, infiniband):
            assert ib >= eth * 0.98, name
