"""DLRM feature interaction: pairwise dot products + concatenation.

Given the bottom-MLP output ``x`` and the ``T`` pooled embedding vectors
``e_1..e_T`` (all of width ``d``), DLRM stacks them into ``(T+1)`` feature
vectors, computes all distinct pairwise dot products (the strictly lower
triangle of the Gram matrix), and concatenates those scalars with ``x``
to form the top-MLP input.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DotInteraction"]


class DotInteraction:
    """Pairwise-dot feature interaction with exact backward."""

    def __init__(self) -> None:
        self._stacked: np.ndarray | None = None
        self._tri: tuple[np.ndarray, np.ndarray] | None = None

    @staticmethod
    def output_dim(num_features: int, feature_dim: int) -> int:
        """Width of the interaction output: d + C(num_features, 2)."""
        return feature_dim + num_features * (num_features - 1) // 2

    def parameters(self) -> list:
        return []

    def forward(self, dense_vec: np.ndarray, embedding_vecs: list[np.ndarray]) -> np.ndarray:
        """Compute ``concat(dense_vec, pairwise_dots)``.

        Args:
            dense_vec: ``(B, d)`` bottom-MLP output.
            embedding_vecs: list of ``(B, d)`` pooled embeddings.

        Returns:
            ``(B, d + C(T+1, 2))`` interaction features.
        """
        features = [dense_vec, *embedding_vecs]
        widths = {f.shape[1] for f in features}
        if len(widths) != 1:
            raise ValueError(f"all interacted features must share width, got {sorted(widths)}")
        stacked = np.stack(features, axis=1)  # (B, F, d)
        gram = stacked @ stacked.transpose(0, 2, 1)  # (B, F, F)
        num_features = stacked.shape[1]
        tri_rows, tri_cols = np.tril_indices(num_features, k=-1)
        self._stacked = stacked
        self._tri = (tri_rows, tri_cols)
        dots = gram[:, tri_rows, tri_cols]  # (B, C(F,2))
        return np.concatenate([dense_vec, dots], axis=1).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Split the output gradient back into dense and embedding grads.

        Returns:
            ``(grad_dense, [grad_e1, ..., grad_eT])``.
        """
        if self._stacked is None or self._tri is None:
            raise RuntimeError("backward called before forward")
        stacked = self._stacked
        tri_rows, tri_cols = self._tri
        batch, num_features, dim = stacked.shape

        grad_dense_direct = grad_out[:, :dim]
        grad_dots = grad_out[:, dim:]  # (B, P)

        # Scatter pair gradients into a symmetric (B, F, F) matrix; each
        # dot z_ij = f_i . f_j sends grad to both f_i and f_j.
        grad_gram = np.zeros((batch, num_features, num_features), dtype=grad_out.dtype)
        grad_gram[:, tri_rows, tri_cols] = grad_dots
        grad_gram[:, tri_cols, tri_rows] = grad_dots
        grad_stacked = grad_gram @ stacked  # (B, F, d)

        grad_dense = grad_stacked[:, 0, :] + grad_dense_direct
        grad_embeddings = [grad_stacked[:, i, :] for i in range(1, num_features)]
        self._stacked = None
        self._tri = None
        return grad_dense.astype(np.float32), [g.astype(np.float32) for g in grad_embeddings]
