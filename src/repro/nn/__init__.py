"""Minimal neural-network substrate (numpy, explicit forward/backward).

The paper trains DLRM and TBSM with PyTorch; this package provides the
layer set those models need — dense linear stacks, embedding bags with
sparse gradients, DLRM's dot-interaction, TBSM's attention — with exact,
hand-derived backward passes.  Keeping the substrate this small makes the
placement semantics of FAE (which parameter lives on which device, what
must be synchronized when) fully explicit and testable.
"""

from repro.nn.parameter import Parameter, SparseGrad
from repro.nn.initializers import xavier_uniform, normal_init
from repro.nn.linear import Linear
from repro.nn.activations import ReLU, Sigmoid
from repro.nn.mlp import MLP
from repro.nn.embedding import EmbeddingBag, EmbeddingTable
from repro.nn.interaction import DotInteraction
from repro.nn.attention import SequenceAttention
from repro.nn.losses import BCEWithLogits
from repro.nn.optim import SGD, Adagrad
from repro.nn.quantization import Fp16EmbeddingTable, Int8EmbeddingTable
from repro.nn.lr_schedule import (
    ConstantSchedule,
    CosineSchedule,
    MomentumSGD,
    StepDecaySchedule,
    WarmupPolynomialSchedule,
)

__all__ = [
    "Adagrad",
    "ConstantSchedule",
    "CosineSchedule",
    "MomentumSGD",
    "StepDecaySchedule",
    "WarmupPolynomialSchedule",
    "Fp16EmbeddingTable",
    "Int8EmbeddingTable",
    "BCEWithLogits",
    "DotInteraction",
    "EmbeddingBag",
    "EmbeddingTable",
    "Linear",
    "MLP",
    "Parameter",
    "ReLU",
    "SGD",
    "SequenceAttention",
    "Sigmoid",
    "SparseGrad",
    "normal_init",
    "xavier_uniform",
]
