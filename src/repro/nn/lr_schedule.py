"""Learning-rate schedules (the open-source DLRM's training recipe).

The reference DLRM trains with SGD plus a linear warmup followed by
polynomial decay; production CTR jobs commonly use step or cosine decay.
Schedules here are plain callables ``step -> lr`` attached to an
optimizer through :class:`ScheduledOptimizer`, which also adds classical
momentum — both knobs the paper's baseline training inherits from the
DLRM recipe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.parameter import Parameter

__all__ = [
    "ConstantSchedule",
    "WarmupPolynomialSchedule",
    "StepDecaySchedule",
    "CosineSchedule",
    "MomentumSGD",
]


@dataclass(frozen=True)
class ConstantSchedule:
    """``lr(step) = base_lr``."""

    base_lr: float

    def __post_init__(self) -> None:
        if self.base_lr <= 0:
            raise ValueError("base_lr must be positive")

    def __call__(self, step: int) -> float:
        return self.base_lr


@dataclass(frozen=True)
class WarmupPolynomialSchedule:
    """DLRM's recipe: linear warmup, plateau, polynomial decay to zero.

    Attributes:
        base_lr: peak learning rate.
        warmup_steps: steps to ramp 0 -> base_lr linearly.
        decay_start: step at which decay begins.
        decay_steps: decay window length.
        power: polynomial power (DLRM uses 2).
    """

    base_lr: float
    warmup_steps: int
    decay_start: int
    decay_steps: int
    power: float = 2.0

    def __post_init__(self) -> None:
        if self.base_lr <= 0:
            raise ValueError("base_lr must be positive")
        if self.warmup_steps < 0 or self.decay_steps <= 0:
            raise ValueError("invalid schedule window")
        if self.decay_start < self.warmup_steps:
            raise ValueError("decay cannot start before warmup ends")

    def __call__(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        if step < self.decay_start:
            return self.base_lr
        progress = min(1.0, (step - self.decay_start) / self.decay_steps)
        return self.base_lr * (1.0 - progress) ** self.power


@dataclass(frozen=True)
class StepDecaySchedule:
    """``lr = base_lr * gamma^(step // step_size)``."""

    base_lr: float
    step_size: int
    gamma: float = 0.1

    def __post_init__(self) -> None:
        if self.base_lr <= 0 or self.step_size <= 0 or not 0 < self.gamma <= 1:
            raise ValueError("invalid step-decay parameters")

    def __call__(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


@dataclass(frozen=True)
class CosineSchedule:
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    base_lr: float
    total_steps: int
    min_lr: float = 0.0

    def __post_init__(self) -> None:
        if self.base_lr <= 0 or self.total_steps <= 0 or self.min_lr < 0:
            raise ValueError("invalid cosine parameters")
        if self.min_lr > self.base_lr:
            raise ValueError("min_lr exceeds base_lr")

    def __call__(self, step: int) -> float:
        progress = min(1.0, step / self.total_steps)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * progress)
        )


class MomentumSGD:
    """SGD with classical momentum and a pluggable LR schedule.

    Dense parameters carry a persistent velocity buffer; sparse
    (embedding) gradients apply plain scheduled SGD — per-row momentum
    state for multi-GB tables is exactly the memory cost sparse training
    avoids, matching the reference DLRM, which also exempts embeddings
    from momentum.

    Args:
        parameters: trainable parameters.
        schedule: ``step -> lr`` callable (or a float for constant).
        momentum: velocity coefficient in [0, 1).
    """

    def __init__(self, parameters: list[Parameter], schedule, momentum: float = 0.9) -> None:
        if isinstance(schedule, (int, float)):
            schedule = ConstantSchedule(float(schedule))
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.parameters = list(parameters)
        self.schedule = schedule
        self.momentum = momentum
        self.step_count = 0
        self._velocity: dict[int, np.ndarray] = {}

    @property
    def current_lr(self) -> float:
        return self.schedule(self.step_count)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        lr = self.schedule(self.step_count)
        for param in self.parameters:
            if param.grad is not None:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.value)
                    self._velocity[id(param)] = velocity
                velocity *= self.momentum
                velocity += param.grad
                param.value -= lr * velocity
            for record in param.sparse_grads:
                merged = record.coalesced()
                param.value[merged.ids] -= lr * merged.values
            param.zero_grad()
        self.step_count += 1
