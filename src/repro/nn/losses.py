"""Loss functions (fused logits + loss, as in torch's BCEWithLogitsLoss)."""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid

__all__ = ["BCEWithLogits"]


class BCEWithLogits:
    """Binary cross-entropy on raw logits with mean reduction.

    Fusing the sigmoid into the loss keeps the backward pass numerically
    stable: ``dL/dlogit = (sigmoid(logit) - label) / B``.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean BCE over the batch.

        Args:
            logits: ``(B,)`` raw scores.
            labels: ``(B,)`` targets in {0, 1}.
        """
        logits = np.asarray(logits, dtype=np.float64).ravel()
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if logits.shape != labels.shape:
            raise ValueError(f"logits {logits.shape} vs labels {labels.shape} mismatch")
        # log(1 + exp(-|x|)) formulation: stable for large |logits|.
        loss = np.maximum(logits, 0) - logits * labels + np.log1p(np.exp(-np.abs(logits)))
        self._probs = sigmoid(logits)
        self._labels = labels
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits: ``(B,)`` float32."""
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        batch = self._labels.shape[0]
        grad = (self._probs - self._labels) / batch
        self._probs = None
        self._labels = None
        return grad.astype(np.float32)

    @staticmethod
    def predictions(logits: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions from logits."""
        return (sigmoid(np.asarray(logits, dtype=np.float64)) >= threshold).astype(np.float32)
