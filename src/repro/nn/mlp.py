"""Multi-layer perceptron stacks (DLRM's bottom/top MLPs).

Layer sizes follow the paper's Table I notation: ``"13-512-256-64-16"``
means a 13-wide input followed by four Linear+ReLU layers.  The final
layer's activation is configurable because DLRM's top MLP ends in a
logit fed to a fused sigmoid-BCE loss.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU, Sigmoid
from repro.nn.linear import Linear
from repro.nn.parameter import Parameter

__all__ = ["MLP", "parse_layer_spec"]


def parse_layer_spec(spec: str) -> tuple[int, ...]:
    """Parse a Table I layer string like ``"13-512-256-64-16"``.

    Raises:
        ValueError: on malformed specs or non-positive widths.
    """
    try:
        sizes = tuple(int(part) for part in spec.split("-"))
    except ValueError:
        raise ValueError(f"malformed layer spec {spec!r}") from None
    if len(sizes) < 2:
        raise ValueError(f"layer spec needs at least two sizes, got {spec!r}")
    if any(s <= 0 for s in sizes):
        raise ValueError(f"layer sizes must be positive in {spec!r}")
    return sizes


class MLP:
    """A Linear(+ReLU) stack.

    Args:
        layer_sizes: widths including input, e.g. ``(13, 512, 256, 64, 16)``.
        rng: seeded generator for weight init.
        final_activation: ``"relu"``, ``"sigmoid"``, or ``None`` (logits).
        name: parameter name prefix.
    """

    def __init__(
        self,
        layer_sizes: tuple[int, ...] | str,
        rng: np.random.Generator,
        final_activation: str | None = "relu",
        name: str = "mlp",
    ) -> None:
        if isinstance(layer_sizes, str):
            layer_sizes = parse_layer_spec(layer_sizes)
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.layer_sizes = tuple(layer_sizes)
        self.layers: list = []
        last = len(layer_sizes) - 2
        for i, (fan_in, fan_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
            self.layers.append(Linear(fan_in, fan_out, rng, name=f"{name}.{i}"))
            if i < last:
                self.layers.append(ReLU())
            elif final_activation == "relu":
                self.layers.append(ReLU())
            elif final_activation == "sigmoid":
                self.layers.append(Sigmoid())
            elif final_activation is not None:
                raise ValueError(f"unknown final_activation {final_activation!r}")

    @property
    def in_features(self) -> int:
        return self.layer_sizes[0]

    @property
    def out_features(self) -> int:
        return self.layer_sizes[-1]

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def flops_per_sample(self) -> int:
        """Forward multiply-accumulate count per sample (cost model input)."""
        return sum(
            layer.flops_per_sample() for layer in self.layers if isinstance(layer, Linear)
        )

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())
