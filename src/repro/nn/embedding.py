"""Embedding tables and pooled embedding-bag lookups.

This is the memory-bound half of a recommendation model.  An
:class:`EmbeddingTable` owns the parameter matrix; an
:class:`EmbeddingBag` performs ``(B, m)``-id pooled lookups against it
with mean or sum pooling and accumulates *sparse* gradients, mirroring
``torch.nn.EmbeddingBag`` semantics that DLRM/TBSM rely on.

The FAE Embedding Replicator builds *partial* tables (hot bags) by
slicing rows out of a table; :meth:`EmbeddingTable.subset` and
:meth:`EmbeddingTable.write_rows` provide exactly that surface.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import normal_init
from repro.nn.parameter import Parameter

__all__ = ["EmbeddingTable", "EmbeddingBag"]


class EmbeddingTable:
    """A dense ``(num_rows, dim)`` embedding parameter matrix.

    Args:
        name: table name (matches the dataset schema's table names).
        num_rows: cardinality.
        dim: embedding dimension.
        rng: seeded generator; rows are N(0, 1/sqrt(dim)) like DLRM.
    """

    def __init__(self, name: str, num_rows: int, dim: int, rng: np.random.Generator) -> None:
        if num_rows <= 0 or dim <= 0:
            raise ValueError("num_rows and dim must be positive")
        self.name = name
        self.num_rows = num_rows
        self.dim = dim
        std = 1.0 / np.sqrt(dim)
        self.weight = Parameter(name, normal_init((num_rows, dim), std, rng))

    @property
    def nbytes(self) -> int:
        return self.weight.nbytes

    def rows(self, ids: np.ndarray) -> np.ndarray:
        """Raw row gather (no pooling, no caching)."""
        return self.weight.value[ids]

    def subset(self, ids: np.ndarray) -> np.ndarray:
        """Copy of the rows ``ids`` (the replicator ships these to GPUs)."""
        return self.weight.value[np.asarray(ids, dtype=np.int64)].copy()

    def write_rows(self, ids: np.ndarray, values: np.ndarray) -> None:
        """Overwrite rows ``ids`` with ``values`` (hot-bag sync-back)."""
        ids = np.asarray(ids, dtype=np.int64)
        if values.shape != (ids.shape[0], self.dim):
            raise ValueError(
                f"{self.name}: expected values of shape {(ids.shape[0], self.dim)}, got {values.shape}"
            )
        self.weight.value[ids] = values


class EmbeddingBag:
    """Pooled lookup over one embedding table.

    Args:
        table: backing table.
        mode: ``"mean"`` or ``"sum"`` pooling across the multiplicity axis.
    """

    def __init__(self, table: EmbeddingTable, mode: str = "mean") -> None:
        if mode not in ("mean", "sum"):
            raise ValueError(f"mode must be 'mean' or 'sum', got {mode!r}")
        self.table = table
        self.mode = mode
        self._ids: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.table.weight]

    def forward(self, ids: np.ndarray) -> np.ndarray:
        """Pooled lookup.

        Args:
            ids: int64 ``(B, m)`` row ids, ``m`` the feature multiplicity.

        Returns:
            float32 ``(B, dim)`` pooled embeddings.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim == 1:
            ids = ids[:, None]
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.table.num_rows:
            raise IndexError(
                f"{self.table.name}: lookup ids out of range [0, {self.table.num_rows})"
            )
        self._ids = ids
        gathered = self.table.weight.value[ids]  # (B, m, dim)
        if self.mode == "mean":
            return gathered.mean(axis=1)
        return gathered.sum(axis=1)

    def backward(self, grad_out: np.ndarray) -> None:
        """Record sparse gradients for the rows this lookup touched.

        Args:
            grad_out: float32 ``(B, dim)`` gradient of the pooled output.
        """
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        ids = self._ids
        batch, multiplicity = ids.shape
        scale = 1.0 / multiplicity if self.mode == "mean" else 1.0
        # Each of the m looked-up rows receives the (scaled) pooled grad.
        row_grads = np.repeat(grad_out * scale, multiplicity, axis=0).astype(np.float32)
        self.table.weight.accumulate_sparse(ids.ravel(), row_grads)
        self._ids = None

    def sequence_forward(self, ids: np.ndarray) -> np.ndarray:
        """Unpooled gather for sequence models: ``(B, m)`` -> ``(B, m, dim)``.

        TBSM consumes per-timestep embeddings rather than a pooled bag.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ValueError("sequence_forward expects (B, m) ids")
        self._ids = ids
        return self.table.weight.value[ids]

    def sequence_backward(self, grad_out: np.ndarray) -> None:
        """Sparse grads for an unpooled gather: grad_out is ``(B, m, dim)``."""
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        ids = self._ids
        flat = grad_out.reshape(-1, self.table.dim).astype(np.float32)
        self.table.weight.accumulate_sparse(ids.ravel(), flat)
        self._ids = None
