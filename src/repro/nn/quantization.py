"""Quantized embedding storage: the related-work alternative to FAE.

The paper's SS V discusses mixed-precision / compressed-embedding
approaches ([16], [46]) and argues two points: (1) even a 2-4x footprint
reduction leaves real tables far beyond GPU memory (61 GB -> 15-30 GB vs
16 GB HBM), and (2) changing the numeric representation "requires
accuracy revalidation across a variety of models and datasets", whereas
FAE trains the unmodified fp32 model.  This module implements the
alternative honestly so the claim can be measured rather than asserted:

- :func:`quantize_fp16` / :class:`Fp16EmbeddingTable` — half-precision
  row storage, dequantized on lookup, re-quantized on update.
- :func:`quantize_int8_rows` / :class:`Int8EmbeddingTable` — 8-bit
  rows with per-row absmax scales.

Both tables expose the :class:`~repro.nn.embedding.EmbeddingTable`
surface, so :class:`~repro.nn.embedding.EmbeddingBag` (and therefore
DLRM/TBSM) runs on them unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import normal_init
from repro.nn.parameter import Parameter

__all__ = [
    "quantize_fp16",
    "dequantize_fp16",
    "quantize_int8_rows",
    "dequantize_int8_rows",
    "Fp16EmbeddingTable",
    "Int8EmbeddingTable",
]


def quantize_fp16(values: np.ndarray) -> np.ndarray:
    """fp32 -> fp16 (relative error <= 2^-11 within range)."""
    return values.astype(np.float16)


def dequantize_fp16(values: np.ndarray) -> np.ndarray:
    return values.astype(np.float32)


def quantize_int8_rows(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """fp32 rows -> (int8 codes, per-row absmax scales).

    Each row is scaled so its largest magnitude maps to 127; all-zero
    rows get scale 1 to avoid division by zero.
    """
    if values.ndim != 2:
        raise ValueError("expected a (rows, dim) matrix")
    absmax = np.abs(values).max(axis=1, keepdims=True)
    scales = np.where(absmax > 0, absmax / 127.0, 1.0).astype(np.float32)
    codes = np.clip(np.round(values / scales), -127, 127).astype(np.int8)
    return codes, scales[:, 0]


def dequantize_int8_rows(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    return (codes.astype(np.float32) * scales[:, None]).astype(np.float32)


class _QuantizedTableBase:
    """Shared surface: lazily materialized fp32 view + quantized backing.

    The fp32 ``weight`` Parameter is the *working* copy layers read and
    write; :meth:`requantize` pushes it through the quantized
    representation, injecting exactly the rounding noise the storage
    format would impose.  Training loops call :meth:`requantize` after
    each optimizer step (storage never holds full precision).
    """

    name: str
    num_rows: int
    dim: int
    weight: Parameter

    def rows(self, ids: np.ndarray) -> np.ndarray:
        return self.weight.value[ids]

    def subset(self, ids: np.ndarray) -> np.ndarray:
        return self.weight.value[np.asarray(ids, dtype=np.int64)].copy()

    def write_rows(self, ids: np.ndarray, values: np.ndarray) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        if values.shape != (ids.shape[0], self.dim):
            raise ValueError(f"{self.name}: bad write shape {values.shape}")
        self.weight.value[ids] = values
        self.requantize(ids)

    def requantize(self, ids: np.ndarray | None = None) -> None:
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        raise NotImplementedError


class Fp16EmbeddingTable(_QuantizedTableBase):
    """Embedding table stored in half precision.

    Args:
        name: table name.
        num_rows: cardinality.
        dim: embedding dimension.
        rng: init generator (same init law as the fp32 table).
    """

    def __init__(self, name: str, num_rows: int, dim: int, rng: np.random.Generator) -> None:
        if num_rows <= 0 or dim <= 0:
            raise ValueError("num_rows and dim must be positive")
        self.name = name
        self.num_rows = num_rows
        self.dim = dim
        initial = normal_init((num_rows, dim), 1.0 / np.sqrt(dim), rng)
        self._storage = quantize_fp16(initial)
        self.weight = Parameter(name, dequantize_fp16(self._storage))

    def requantize(self, ids: np.ndarray | None = None) -> None:
        """Round the working copy through fp16 storage."""
        if ids is None:
            self._storage = quantize_fp16(self.weight.value)
            self.weight.value[...] = dequantize_fp16(self._storage)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            self._storage[ids] = quantize_fp16(self.weight.value[ids])
            self.weight.value[ids] = dequantize_fp16(self._storage[ids])

    @property
    def nbytes(self) -> int:
        """Storage footprint: 2 bytes per value."""
        return self.num_rows * self.dim * 2


class Int8EmbeddingTable(_QuantizedTableBase):
    """Embedding table stored as int8 codes with per-row scales."""

    def __init__(self, name: str, num_rows: int, dim: int, rng: np.random.Generator) -> None:
        if num_rows <= 0 or dim <= 0:
            raise ValueError("num_rows and dim must be positive")
        self.name = name
        self.num_rows = num_rows
        self.dim = dim
        initial = normal_init((num_rows, dim), 1.0 / np.sqrt(dim), rng)
        self._codes, self._scales = quantize_int8_rows(initial)
        self.weight = Parameter(name, dequantize_int8_rows(self._codes, self._scales))

    def requantize(self, ids: np.ndarray | None = None) -> None:
        if ids is None:
            self._codes, self._scales = quantize_int8_rows(self.weight.value)
            self.weight.value[...] = dequantize_int8_rows(self._codes, self._scales)
        else:
            ids = np.unique(np.asarray(ids, dtype=np.int64))
            codes, scales = quantize_int8_rows(self.weight.value[ids])
            self._codes[ids] = codes
            self._scales[ids] = scales
            self.weight.value[ids] = dequantize_int8_rows(codes, scales)

    @property
    def nbytes(self) -> int:
        """Storage footprint: 1 byte per value + 4 bytes per row scale."""
        return self.num_rows * self.dim + self.num_rows * 4
