"""Weight initializers (seeded, numpy-native)."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "normal_init"]


def xavier_uniform(fan_out: int, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init for a ``(fan_out, fan_in)`` weight matrix.

    This matches the default initialization the open-source DLRM applies
    to its MLP layers.
    """
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_out, fan_in)).astype(np.float32)


def normal_init(shape: tuple[int, ...], std: float, rng: np.random.Generator) -> np.ndarray:
    """Zero-mean Gaussian init (DLRM initializes embedding rows this way)."""
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    return rng.normal(0.0, std, size=shape).astype(np.float32)
