"""Fully-connected layer with hand-derived backward pass."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import xavier_uniform
from repro.nn.parameter import Parameter

__all__ = ["Linear"]


class Linear:
    """Affine layer: ``y = x @ W.T + b``.

    Args:
        in_features: input width.
        out_features: output width.
        rng: seeded generator for Xavier init.
        name: parameter name prefix.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, name: str = "linear") -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(f"{name}.weight", xavier_uniform(out_features, in_features, rng))
        self.bias = Parameter(f"{name}.bias", np.zeros(out_features, dtype=np.float32))
        self._input: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the affine map; caches the input for backward."""
        if x.shape[-1] != self.in_features:
            raise ValueError(f"expected input width {self.in_features}, got {x.shape[-1]}")
        self._input = x
        return x @ self.weight.value.T + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate weight/bias grads; return gradient w.r.t. the input."""
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        # Support leading batch-like dims by flattening them for the GEMMs.
        flat_x = x.reshape(-1, self.in_features)
        flat_g = grad_out.reshape(-1, self.out_features)
        self.weight.accumulate_dense(flat_g.T @ flat_x)
        self.bias.accumulate_dense(flat_g.sum(axis=0))
        grad_in = grad_out @ self.weight.value
        self._input = None
        return grad_in

    def flops_per_sample(self) -> int:
        """Multiply-accumulate count for one forward sample (cost model)."""
        return 2 * self.in_features * self.out_features
