"""Optimizers with first-class sparse-update support.

The paper's latency breakdown (Fig 14) shows the optimizer dominating
baseline time precisely because embedding gradients are applied on the
CPU.  Functionally, both baseline and FAE apply the *same* update; only
the device placement differs.  These optimizers therefore implement the
math once, and expose ``sparse_rows_touched`` so the hardware simulator
can cost the update on whichever device the execution plan placed it.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["SGD", "Adagrad"]


class SGD:
    """Vanilla stochastic gradient descent (dense + sparse grads).

    Args:
        parameters: every trainable parameter of the model.
        lr: learning rate.
    """

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr
        self.last_sparse_rows = 0

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply accumulated gradients and clear them."""
        sparse_rows = 0
        for param in self.parameters:
            if param.grad is not None:
                param.value -= self.lr * param.grad
            for record in param.sparse_grads:
                coalesced = record.coalesced()
                param.value[coalesced.ids] -= self.lr * coalesced.values
                sparse_rows += coalesced.ids.shape[0]
            param.zero_grad()
        self.last_sparse_rows = sparse_rows

    def state_dict(self) -> dict[str, np.ndarray]:
        """SGD is stateless; nothing to checkpoint."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """SGD is stateless; accepts (and ignores) an empty state."""
        if state:
            raise ValueError(f"SGD has no state; got keys {sorted(state)}")


class Adagrad:
    """Adagrad with per-row state for sparse parameters.

    DLRM commonly trains embeddings with (rowwise) Adagrad; keeping the
    accumulator sparse-aware means only touched rows pay state updates,
    matching the access-skew economics the paper exploits.

    Args:
        parameters: trainable parameters.
        lr: learning rate.
        eps: denominator fudge factor.
    """

    def __init__(self, parameters: list[Parameter], lr: float, eps: float = 1e-10) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr
        self.eps = eps
        self._state: dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.value) for p in self.parameters
        }
        self.last_sparse_rows = 0

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        sparse_rows = 0
        for param in self.parameters:
            state = self._state[id(param)]
            if param.grad is not None:
                state += param.grad**2
                param.value -= self.lr * param.grad / (np.sqrt(state) + self.eps)
            for record in param.sparse_grads:
                coalesced = record.coalesced()
                rows = coalesced.ids
                state[rows] += coalesced.values**2
                param.value[rows] -= self.lr * coalesced.values / (
                    np.sqrt(state[rows]) + self.eps
                )
                sparse_rows += rows.shape[0]
            param.zero_grad()
        self.last_sparse_rows = sparse_rows

    def state_dict(self) -> dict[str, np.ndarray]:
        """Accumulators keyed by parameter index (checkpointable)."""
        return {
            f"accum.{index:04d}": self._state[id(param)].copy()
            for index, param in enumerate(self.parameters)
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore accumulators captured by :meth:`state_dict`.

        Raises:
            ValueError: on a missing key or shape mismatch — the state
                belongs to a differently-shaped parameter list.
        """
        for index, param in enumerate(self.parameters):
            key = f"accum.{index:04d}"
            if key not in state:
                raise ValueError(f"optimizer state is missing {key!r}")
            saved = state[key]
            if saved.shape != param.value.shape:
                raise ValueError(
                    f"optimizer state {key!r} has shape {saved.shape}, "
                    f"parameter expects {param.value.shape}"
                )
            self._state[id(param)][...] = saved
