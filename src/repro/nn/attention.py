"""TBSM-style attention over a sequence of per-timestep context vectors.

TBSM runs a DLRM core per timestep of the user-behaviour sequence, then
aggregates the resulting context vectors with an attention layer before
the final MLP.  We implement learned-query dot attention: a trainable
query scores each timestep, softmax normalizes the scores, and the output
is the attention-weighted sum of the sequence.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["SequenceAttention"]


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class SequenceAttention:
    """Learned-query dot-product attention: ``(B, T, d) -> (B, d)``.

    Args:
        dim: context vector width.
        rng: seeded generator for the query init.
        name: parameter name prefix.
    """

    def __init__(self, dim: int, rng: np.random.Generator, name: str = "attention") -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.query = Parameter(
            f"{name}.query", rng.normal(0.0, 1.0 / np.sqrt(dim), size=dim).astype(np.float32)
        )
        self._sequence: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.query]

    def forward(self, sequence: np.ndarray) -> np.ndarray:
        """Attention-pool a ``(B, T, d)`` sequence into ``(B, d)``."""
        if sequence.ndim != 3 or sequence.shape[2] != self.dim:
            raise ValueError(f"expected (B, T, {self.dim}) sequence, got {sequence.shape}")
        scores = sequence @ self.query.value  # (B, T)
        weights = _softmax(scores, axis=1)
        self._sequence = sequence
        self._weights = weights
        return (weights[:, :, None] * sequence).sum(axis=1).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Return the ``(B, T, d)`` gradient w.r.t. the input sequence."""
        if self._sequence is None or self._weights is None:
            raise RuntimeError("backward called before forward")
        sequence, weights = self._sequence, self._weights

        # Output o = sum_t a_t z_t.
        grad_seq = weights[:, :, None] * grad_out[:, None, :]  # via z_t directly
        grad_weights = np.einsum("btd,bd->bt", sequence, grad_out)

        # Softmax backward: ds = a * (dL/da - sum_t a_t dL/da_t).
        dot = (grad_weights * weights).sum(axis=1, keepdims=True)
        grad_scores = weights * (grad_weights - dot)  # (B, T)

        # Scores s_t = z_t . q.
        self.query.accumulate_dense(
            np.einsum("bt,btd->d", grad_scores, sequence).astype(np.float32)
        )
        grad_seq = grad_seq + grad_scores[:, :, None] * self.query.value[None, None, :]
        self._sequence = None
        self._weights = None
        return grad_seq.astype(np.float32)
