"""Activation modules with cached-state backward passes."""

from __future__ import annotations

import numpy as np

__all__ = ["ReLU", "Sigmoid", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out.astype(x.dtype) if x.dtype == np.float32 else out


class ReLU:
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def parameters(self) -> list:
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(x.dtype)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_in = np.where(self._mask, grad_out, 0.0).astype(grad_out.dtype)
        self._mask = None
        return grad_in


class Sigmoid:
    """Logistic activation (DLRM's output unit when not fused into the loss)."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def parameters(self) -> list:
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = sigmoid(x)
        return self._output

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        y = self._output
        grad_in = (grad_out * y * (1.0 - y)).astype(grad_out.dtype)
        self._output = None
        return grad_in
