"""Numerical gradient checking for models built on this substrate.

Hand-derived backward passes are this library's core risk; gradient
checking is the guard.  :func:`check_gradients` perturbs a sample of
parameter entries, compares central finite differences against the
analytic gradients, and reports the worst relative error — used by the
test suite on every layer and model, and available to users extending
the model zoo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["GradCheckResult", "check_gradients"]


@dataclass(frozen=True)
class GradCheckResult:
    """Outcome of a gradient check.

    Attributes:
        max_relative_error: worst relative error over the checked entries.
        worst_parameter: name of the parameter holding the worst entry.
        entries_checked: how many (parameter, index) pairs were probed.
        passed: whether the worst error stayed under the tolerance.
    """

    max_relative_error: float
    worst_parameter: str
    entries_checked: int
    passed: bool


def check_gradients(
    parameters: list[Parameter],
    loss_fn,
    backward_fn,
    entries_per_parameter: int = 2,
    epsilon: float = 1e-3,
    tolerance: float = 5e-2,
    seed: int = 0,
) -> GradCheckResult:
    """Compare analytic gradients against central finite differences.

    Args:
        parameters: the parameters to probe.
        loss_fn: zero-argument callable returning the scalar loss; must be
            deterministic and side-effect free on parameter state (each
            call re-runs the forward pass).
        backward_fn: zero-argument callable that runs forward + backward
            once, leaving gradients accumulated on the parameters.
        entries_per_parameter: random entries probed per parameter.
        epsilon: finite-difference step.
        tolerance: pass threshold on the relative error.
        seed: entry-selection seed.

    Returns:
        The worst-case comparison across all probed entries.
    """
    if entries_per_parameter <= 0:
        raise ValueError("entries_per_parameter must be positive")
    rng = np.random.default_rng(seed)

    for p in parameters:
        p.zero_grad()
    backward_fn()
    analytic = {id(p): p.densified_grad().copy() for p in parameters}
    for p in parameters:
        p.zero_grad()

    worst = 0.0
    worst_name = ""
    checked = 0
    for p in parameters:
        grad = analytic[id(p)]
        flat = grad.ravel()
        if flat.size == 0:
            continue
        # Prefer entries with non-negligible gradient (zero-vs-zero
        # comparisons are vacuous); fall back to random entries.
        candidates = np.argsort(np.abs(flat))[::-1][: 4 * entries_per_parameter]
        picks = rng.choice(candidates, size=min(entries_per_parameter, len(candidates)), replace=False)
        for flat_index in picks:
            index = np.unravel_index(int(flat_index), grad.shape)
            original = p.value[index]
            p.value[index] = original + epsilon
            up = loss_fn()
            p.value[index] = original - epsilon
            down = loss_fn()
            p.value[index] = original
            numeric = (up - down) / (2 * epsilon)
            denom = max(abs(numeric) + abs(flat[flat_index]), 1e-8)
            relative = abs(numeric - flat[flat_index]) / denom
            checked += 1
            if relative > worst:
                worst = relative
                worst_name = p.name
    return GradCheckResult(
        max_relative_error=worst,
        worst_parameter=worst_name,
        entries_checked=checked,
        passed=worst <= tolerance,
    )
