"""Trainable parameters and sparse gradient records.

Dense parameters (MLP weights) accumulate into a dense ``grad`` buffer.
Embedding tables instead record :class:`SparseGrad` entries — (row ids,
row gradients) pairs — because a mini-batch touches a vanishing fraction
of a table and materializing a dense gradient would dominate runtime
exactly the way the paper's CPU-side optimizer does in the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Parameter", "SparseGrad"]


@dataclass
class SparseGrad:
    """Gradient contribution touching a subset of a table's rows.

    Attributes:
        ids: int64 ``(k,)`` row indices (duplicates allowed; optimizers
            coalesce them with ``np.add.at`` semantics).
        values: float32 ``(k, dim)`` per-row gradients aligned with ``ids``.
    """

    ids: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.ids.ndim != 1:
            raise ValueError("SparseGrad.ids must be 1-D")
        if self.values.ndim != 2 or self.values.shape[0] != self.ids.shape[0]:
            raise ValueError("SparseGrad.values must be (len(ids), dim)")

    def coalesced(self) -> "SparseGrad":
        """Return an equivalent record with unique, sorted ids."""
        unique_ids, inverse = np.unique(self.ids, return_inverse=True)
        summed = np.zeros((unique_ids.shape[0], self.values.shape[1]), dtype=self.values.dtype)
        np.add.at(summed, inverse, self.values)
        return SparseGrad(ids=unique_ids, values=summed)


class Parameter:
    """A named trainable tensor with dense and/or sparse gradient state.

    Attributes:
        name: diagnostic identifier ("mlp_bot.0.weight", "table_03", ...).
        value: the parameter array (mutated in place by optimizers).
        grad: dense gradient buffer, lazily allocated on first use.
        sparse_grads: accumulated :class:`SparseGrad` records for this step.
    """

    def __init__(self, name: str, value: np.ndarray) -> None:
        self.name = name
        self.value = np.ascontiguousarray(value, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.sparse_grads: list[SparseGrad] = []

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    @property
    def nbytes(self) -> int:
        return int(self.value.nbytes)

    def accumulate_dense(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the dense gradient buffer."""
        if grad.shape != self.value.shape:
            raise ValueError(
                f"{self.name}: gradient shape {grad.shape} != parameter shape {self.value.shape}"
            )
        if self.grad is None:
            self.grad = np.zeros_like(self.value)
        self.grad += grad

    def accumulate_sparse(self, ids: np.ndarray, values: np.ndarray) -> None:
        """Record a sparse gradient touching rows ``ids``."""
        if self.value.ndim != 2:
            raise ValueError(f"{self.name}: sparse grads require a 2-D parameter")
        if values.shape[1] != self.value.shape[1]:
            raise ValueError(f"{self.name}: sparse grad dim {values.shape[1]} != {self.value.shape[1]}")
        self.sparse_grads.append(
            SparseGrad(ids=np.asarray(ids, dtype=np.int64).ravel(), values=values)
        )

    def zero_grad(self) -> None:
        """Clear all accumulated gradient state."""
        self.grad = None
        self.sparse_grads = []

    def densified_grad(self) -> np.ndarray:
        """Materialize the total gradient densely (tests / gradient checks)."""
        total = np.zeros_like(self.value) if self.grad is None else self.grad.copy()
        for record in self.sparse_grads:
            np.add.at(total, record.ids, record.values)
        return total

    def touched_rows(self) -> np.ndarray:
        """Unique row ids with pending sparse gradients."""
        if not self.sparse_grads:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([r.ids for r in self.sparse_grads]))

    def __repr__(self) -> str:
        return f"Parameter({self.name!r}, shape={self.value.shape})"
