"""Collective communication primitives over simulated ranks.

Semantically faithful numpy implementations of the NCCL collectives the
paper's training uses (all-reduce, broadcast, all-gather, reduce-scatter),
plus traffic accounting so the hardware simulator can price what a run
actually communicated.  A :class:`ProcessGroup` owns ``world_size`` ranks;
collectives take one array per rank and return one array per rank.

The all-reduce is computed as a literal ring reduce-scatter +
all-gather, so the byte accounting matches the ``2 (k-1)/k`` volume the
cost model charges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, TypeVar

import numpy as np

from repro.obs import get_registry, span
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy, with_retries

__all__ = ["ReduceOp", "ProcessGroup"]

T = TypeVar("T")


class ReduceOp(enum.Enum):
    """Reduction operator for all-reduce / reduce-scatter."""

    SUM = "sum"
    MEAN = "mean"
    MAX = "max"


@dataclass
class ProcessGroup:
    """A group of simulated ranks with collective operations.

    Attributes:
        world_size: number of participating ranks.
        bytes_communicated: total per-rank bytes sent by collectives so
            far (ring accounting), for the cost model.
        collective_calls: number of collective invocations.
        fault_plan: optional :class:`~repro.resilience.faults.FaultPlan`
            consulted before every collective attempt.
        retry: retry policy absorbing transient injected failures; a
            default bounded-backoff policy when None and faults are on.
    """

    world_size: int
    bytes_communicated: float = 0.0
    collective_calls: int = 0
    fault_plan: FaultPlan | None = None
    retry: RetryPolicy | None = None
    _rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0), repr=False)

    def __post_init__(self) -> None:
        if self.world_size <= 0:
            raise ValueError(f"world_size must be positive, got {self.world_size}")

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------

    def _check_inputs(self, per_rank: list[np.ndarray]) -> None:
        if len(per_rank) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} rank buffers, got {len(per_rank)}"
            )
        shapes = {a.shape for a in per_rank}
        if len(shapes) != 1:
            raise ValueError(f"rank buffers must share a shape, got {shapes}")

    def _run_collective(self, name: str, fn: Callable[[], T]) -> T:
        """Run one collective under the fault plan and retry policy.

        Transient injected failures are retried with bounded backoff;
        a :class:`~repro.resilience.faults.PermanentRankFailure` is not
        retryable and propagates to the trainer, which shrinks the world.
        """
        if self.fault_plan is None:
            return fn()
        plan = self.fault_plan

        def attempt() -> T:
            plan.check_collective(name)
            return fn()

        return with_retries(attempt, policy=self.retry, name=f"dist.{name}")

    def _account(self, buffer_bytes: float, volume_factor: float, calls: int = 1) -> None:
        moved = buffer_bytes * volume_factor
        self.bytes_communicated += moved
        self.collective_calls += calls
        registry = get_registry()
        registry.counter("dist.collective.calls").inc(calls)
        registry.counter("dist.collective.bytes").inc(moved)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def all_reduce(
        self, per_rank: list[np.ndarray], op: ReduceOp = ReduceOp.SUM
    ) -> list[np.ndarray]:
        """Reduce across ranks; every rank receives the full result.

        Implemented as ring reduce-scatter + ring all-gather so reduction
        order (and hence float rounding) is deterministic and identical
        for every rank.
        """
        buffer_bytes = per_rank[0].nbytes if per_rank else 0
        with span("dist.all_reduce", world_size=self.world_size, bytes=buffer_bytes):
            return self._run_collective("all_reduce", lambda: self._all_reduce(per_rank, op))

    def _all_reduce(
        self, per_rank: list[np.ndarray], op: ReduceOp = ReduceOp.SUM
    ) -> list[np.ndarray]:
        self._check_inputs(per_rank)
        k = self.world_size
        if k == 1:
            result = per_rank[0].copy()
            if op is ReduceOp.MEAN:
                result = result / 1.0
            return [result]

        # Explicit copies: the ring mutates its working buffers, and
        # ascontiguousarray aliases already-contiguous float64 inputs.
        flat = [np.array(a, dtype=np.float64, copy=True).ravel() for a in per_rank]
        chunks = [np.array_split(f, k) for f in flat]  # chunks[rank][segment]

        # Ring reduce-scatter: after k-1 steps, rank r owns the fully
        # reduced segment (r+1) mod k.
        for step in range(k - 1):
            transfers = []
            for rank in range(k):
                send_seg = (rank - step) % k
                dest = (rank + 1) % k
                transfers.append((dest, send_seg, chunks[rank][send_seg].copy()))
            for dest, seg, payload in transfers:
                if op is ReduceOp.MAX:
                    np.maximum(chunks[dest][seg], payload, out=chunks[dest][seg])
                else:
                    chunks[dest][seg] += payload

        # Ring all-gather: broadcast each reduced segment around the ring.
        owner_of = {(rank + 1) % k: rank for rank in range(k)}
        for seg in range(k):
            reduced = chunks[owner_of[seg]][seg]
            for rank in range(k):
                chunks[rank][seg] = reduced.copy()

        buffer_bytes = per_rank[0].nbytes
        self._account(buffer_bytes, 2.0 * (k - 1) / k)

        results = []
        for rank in range(k):
            merged = np.concatenate(chunks[rank]).reshape(per_rank[0].shape)
            if op is ReduceOp.MEAN:
                merged = merged / k
            results.append(merged.astype(per_rank[0].dtype))
        return results

    def broadcast(self, value: np.ndarray, root: int = 0) -> list[np.ndarray]:
        """Every rank receives a copy of ``value`` from ``root``."""
        if not 0 <= root < self.world_size:
            raise ValueError(f"root {root} out of range")

        def run() -> list[np.ndarray]:
            self._account(value.nbytes, float(self.world_size - 1))
            return [value.copy() for _ in range(self.world_size)]

        return self._run_collective("broadcast", run)

    def all_gather(self, per_rank: list[np.ndarray]) -> list[np.ndarray]:
        """Every rank receives the concatenation of all rank buffers."""
        self._check_inputs(per_rank)

        def run() -> list[np.ndarray]:
            gathered = np.concatenate([a[None] for a in per_rank], axis=0)
            self._account(per_rank[0].nbytes, float(self.world_size - 1))
            return [gathered.copy() for _ in range(self.world_size)]

        return self._run_collective("all_gather", run)

    def reduce_scatter(
        self, per_rank: list[np.ndarray], op: ReduceOp = ReduceOp.SUM
    ) -> list[np.ndarray]:
        """Reduce across ranks; rank r receives the r-th shard of the result."""
        self._check_inputs(per_rank)

        def run() -> list[np.ndarray]:
            stacked = np.stack([a.astype(np.float64) for a in per_rank])
            if op is ReduceOp.MAX:
                reduced = stacked.max(axis=0)
            else:
                reduced = stacked.sum(axis=0)
                if op is ReduceOp.MEAN:
                    reduced /= self.world_size
            shards = np.array_split(reduced.ravel(), self.world_size)
            self._account(per_rank[0].nbytes, (self.world_size - 1) / self.world_size)
            return [s.astype(per_rank[0].dtype) for s in shards]

        return self._run_collective("reduce_scatter", run)

    def barrier(self) -> None:
        """Synchronization point (bookkeeping only in simulation)."""
        self.collective_calls += 1
