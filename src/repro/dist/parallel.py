"""Data-parallel training over simulated device replicas.

The baseline execution model of the paper's GPUs: every device holds a
full model replica, each global mini-batch is split into equal per-device
shards, gradients are all-reduced, and every replica applies the same
optimizer step.  Because the per-shard loss is scaled by ``1/k`` before
the sum-all-reduce, the combined update equals the single-device update
on the full batch — the equivalence the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import MiniBatch
from repro.dist.collectives import ProcessGroup, ReduceOp
from repro.models.base import RecModel
from repro.nn.losses import BCEWithLogits
from repro.nn.optim import SGD

__all__ = ["shard_batch", "DataParallelTrainer"]


def shard_batch(batch: MiniBatch, world_size: int) -> list[MiniBatch]:
    """Split a global mini-batch into ``world_size`` equal shards.

    Raises:
        ValueError: if the batch size is not divisible by ``world_size``
            (the paper's weak scaling always uses divisible batches).
    """
    if world_size <= 0:
        raise ValueError("world_size must be positive")
    if len(batch) % world_size != 0:
        raise ValueError(
            f"batch of {len(batch)} not divisible by world size {world_size}"
        )
    shard_size = len(batch) // world_size
    shards = []
    for rank in range(world_size):
        sl = slice(rank * shard_size, (rank + 1) * shard_size)
        shards.append(
            MiniBatch(
                dense=batch.dense[sl],
                sparse={name: ids[sl] for name, ids in batch.sparse.items()},
                labels=batch.labels[sl],
                indices=batch.indices[sl],
                hot=batch.hot,
            )
        )
    return shards


@dataclass
class StepStats:
    """Telemetry for one data-parallel step."""

    loss: float
    grad_bytes_reduced: float


class DataParallelTrainer:
    """Synchronous data-parallel SGD across model replicas.

    Args:
        replicas: one model per rank.  They must be architecturally
            identical and identically initialized (build them with the
            same seed); this is validated at construction.
        lr: learning rate.

    The embedding tables of each replica are private (fully replicated),
    matching a pure data-parallel run where the tables fit on-device; the
    FAE variant in :mod:`repro.dist.fae_parallel` handles the hybrid case.
    """

    def __init__(self, replicas: list[RecModel], lr: float = 0.1) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = replicas
        self.group = ProcessGroup(world_size=len(replicas))
        self.lr = lr
        self._optimizers = [SGD(m.parameters(), lr=lr) for m in replicas]
        self._loss = BCEWithLogits()
        self._validate_replicas()

    def _validate_replicas(self) -> None:
        reference = self.replicas[0].parameters()
        for rank, model in enumerate(self.replicas[1:], start=1):
            params = model.parameters()
            if len(params) != len(reference):
                raise ValueError(f"replica {rank} has a different parameter count")
            for p, q in zip(reference, params):
                if p.value.shape != q.value.shape:
                    raise ValueError(
                        f"replica {rank}: parameter {q.name} shape mismatch"
                    )
                if not np.array_equal(p.value, q.value):
                    raise ValueError(
                        f"replica {rank}: parameter {q.name} not identically initialized"
                    )

    @property
    def world_size(self) -> int:
        return self.group.world_size

    def step(self, batch: MiniBatch) -> StepStats:
        """One synchronous data-parallel training step on a global batch."""
        k = self.world_size
        shards = shard_batch(batch, k)

        shard_losses = []
        for model, shard in zip(self.replicas, shards):
            logits = model.forward(shard)
            shard_losses.append(self._loss.forward(logits, shard.labels))
            # Global objective = mean over the full batch
            #                  = (1/k) sum of shard means.
            model.backward(self._loss.backward() / k)

        grad_bytes = self._all_reduce_gradients()
        for optimizer in self._optimizers:
            optimizer.step()
        return StepStats(loss=float(np.mean(shard_losses)), grad_bytes_reduced=grad_bytes)

    def _all_reduce_gradients(self) -> float:
        """Sum-all-reduce every gradient (dense buffers and sparse rows)."""
        reduced_bytes = 0.0
        reference = self.replicas[0].parameters()
        all_params = [m.parameters() for m in self.replicas]

        for index, ref_param in enumerate(reference):
            rank_params = [params[index] for params in all_params]

            dense_grads = [p.grad for p in rank_params]
            if any(g is not None for g in dense_grads):
                buffers = [
                    g if g is not None else np.zeros_like(ref_param.value)
                    for g in dense_grads
                ]
                combined = self.group.all_reduce(buffers, ReduceOp.SUM)
                for p, g in zip(rank_params, combined):
                    p.grad = g
                reduced_bytes += ref_param.value.nbytes

            if any(p.sparse_grads for p in rank_params):
                # Fused sparse all-reduce: gather every rank's (ids, grads)
                # and hand the union to every rank.  Duplicate ids coalesce
                # inside the optimizer, so this equals a dense all-reduce.
                merged = []
                for p in rank_params:
                    merged.extend(p.sparse_grads)
                reduced_bytes += sum(r.values.nbytes for r in merged)
                for p in rank_params:
                    p.sparse_grads = [
                        type(r)(ids=r.ids.copy(), values=r.values.copy()) for r in merged
                    ]
                self.group.collective_calls += 1
        return reduced_bytes

    def max_divergence(self) -> float:
        """Largest parameter difference between any replica and rank 0."""
        worst = 0.0
        reference = self.replicas[0].parameters()
        for model in self.replicas[1:]:
            for p, q in zip(reference, model.parameters()):
                worst = max(worst, float(np.abs(p.value - q.value).max(initial=0.0)))
        return worst
