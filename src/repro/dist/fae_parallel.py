"""Distributed FAE: the paper's full multi-GPU execution model.

Per mini-batch, ``k`` model replicas ("GPUs") each process a ``1/k``
shard.  The embedding path depends on the batch's temperature:

- **cold** — every replica's lookups route to the *shared CPU master
  tables* (the hybrid baseline path); MLP gradients are all-reduced
  across replicas, embedding gradients accumulate on the masters and a
  single "CPU" optimizer applies them.
- **hot** — every replica looks up its *own hot-bag replica*; a fused
  all-reduce covers MLP and hot-embedding gradients, and identical
  optimizer steps keep the replicas bit-equal (paper SS II-B(3)).

Hot<->cold transitions synchronize the hot rows through the
:class:`~repro.core.replicator.EmbeddingReplicator`, exactly like the
single-device :class:`~repro.train.trainer.FAETrainer` — which this
trainer is provably equivalent to (see tests/test_dist.py).

Resilience: when constructed with a
:class:`~repro.resilience.faults.FaultPlan`, the trainer survives the
injected chaos — transient collective failures are retried inside the
:class:`~repro.dist.collectives.ProcessGroup`, a permanent rank death
shrinks the world and training continues data-parallel on the
survivors, and a hot-replica eviction degrades the run onto the cold
(CPU-master) path for its remainder.  Checkpoints are taken at segment
boundaries (masters authoritative) and resumed runs reproduce the
uninterrupted loss trajectory.

Elastic rejoin: with ``rejoin=True`` a dead rank is *parked* instead of
forgotten, and re-admitted at the next segment boundary — the one point
where the CPU masters are authoritative in either mode — with dense
parameters copied from rank 0, a fresh hot-bag replica rebuilt from the
masters, and the process group rebuilt at the restored world size.
Deaths and rejoins are visible in the supervisor event log
(``event_log``) and the ``resilience.elastic.rejoins`` counter.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import numpy as np

from repro.core.hotcache import EmbeddingHotCache, repack_remaining
from repro.core.input_processor import FAEDataset
from repro.core.pipeline import FAEPlan
from repro.core.replicator import EmbeddingReplicator
from repro.core.scheduler import ShuffleScheduler
from repro.data.loader import fetch_batch
from repro.data.synthetic import SyntheticClickLog
from repro.dist.collectives import ProcessGroup, ReduceOp
from repro.dist.parallel import shard_batch
from repro.models.base import RecModel
from repro.nn.embedding import EmbeddingBag
from repro.nn.losses import BCEWithLogits
from repro.nn.optim import SGD
from repro.obs import get_registry, span
from repro.resilience.checkpoint import (
    CheckpointManager,
    TrainerCheckpoint,
    capture_training_state,
    load_checkpoint,
    restore_training_state,
)
from repro.resilience.faults import FaultPlan, PermanentRankFailure, popular_local_row
from repro.resilience.guards import LossSpikeError, NumericGuard
from repro.resilience.journal import RefreshJournal
from repro.resilience.retry import RetryPolicy
from repro.train.history import HistoryPoint, TrainingHistory
from repro.train.trainer import TrainResult, evaluate_with_master_bags

__all__ = ["DistributedFAETrainer"]


class DistributedFAETrainer:
    """FAE training across ``k`` simulated GPUs.

    Args:
        replicas: identically-initialized model replicas, one per GPU.
            Replica 0's embedding tables serve as the CPU masters; the
            other replicas' own tables are never touched (their lookups
            are swapped to shared-master or hot-bag views), mirroring the
            real system where GPUs never hold full tables.
        plan: FAE preprocessing output.
        lr: SGD learning rate.
        pooling: embedding pooling mode, matching the models.
        fault_plan: optional fault-injection schedule; consulted by the
            process group (collectives), the data path, and the trainer
            (hot-replica eviction + data corruption).
        retry: retry policy for transient faults (collectives + loader).
        guards: optional :class:`~repro.resilience.guards.NumericGuard`;
            when set, corrupt batches are skipped, non-finite gradients
            discard the step on every replica, and a non-finite or
            spiking loss rolls the run back to the last good checkpoint
            with LR backoff.
        rejoin: park permanently-failed ranks and re-admit them at the
            next segment boundary (state resynced from the CPU masters)
            instead of finishing on a shrunken world.
        event_log: optional
            :class:`~repro.resilience.elastic.SupervisorEventLog`;
            rank deaths and rejoins are appended to it.
        cache: optional :class:`~repro.core.hotcache.EmbeddingHotCache`;
            same contract as the single-device trainer — batches feed the
            cache and a full window triggers a segment-boundary rebalance
            with delta replication and remaining-batch repack.
    """

    def __init__(
        self,
        replicas: list[RecModel],
        plan: FAEPlan,
        lr: float = 0.1,
        pooling: str = "mean",
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        guards: NumericGuard | None = None,
        rejoin: bool = False,
        event_log=None,
        cache: EmbeddingHotCache | None = None,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = replicas
        self.plan = plan
        self.lr = lr
        self.pooling = pooling
        self.fault_plan = fault_plan
        self.retry = retry
        self.guards = guards
        self.cache = cache
        #: Optional drift detector whose check history rides along in
        #: checkpoints (set by callers that monitor the run).
        self.drift = None
        # Set by the CLI so GuardAbort can point at the quarantine ledger.
        self.guard_ledger_path: str | None = None
        self.group = ProcessGroup(
            world_size=len(replicas), fault_plan=fault_plan, retry=retry
        )

        self.master_tables = replicas[0].tables
        self.replicator = EmbeddingReplicator(
            tables=self.master_tables,
            bag_specs=plan.bags,
            num_replicas=len(replicas),
            pooling=pooling,
        )
        # Cold-path bags: one EmbeddingBag per (replica, table), all backed
        # by the shared master tables ("CPU memory").
        self._cold_bags = [
            {name: EmbeddingBag(table, mode=pooling) for name, table in self.master_tables.items()}
            for _ in replicas
        ]
        self._loss = BCEWithLogits()
        #: Inputs dropped to keep shards equal (trailing short batches).
        self.skipped_inputs = 0
        #: Permanent rank deaths absorbed by shrinking the world.
        self.world_shrinks = 0
        self.rejoin = rejoin
        self.event_log = event_log
        #: Parked ranks re-admitted at a segment boundary.
        self.rejoins = 0
        self._parked: list[RecModel] = []

    @property
    def world_size(self) -> int:
        return self.group.world_size

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------

    def _install_cold(self) -> int:
        moved = self.replicator.sync_to_master()
        for model, bags in zip(self.replicas, self._cold_bags):
            for name, bag in bags.items():
                model.set_bag(name, bag)
        return moved

    def _install_hot(self) -> int:
        moved = self.replicator.sync_from_master()
        for rank, model in enumerate(self.replicas):
            for name, bag in self.replicator.bags_for_replica(rank).items():
                model.set_bag(name, bag)
        return moved

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def _dense_all_reduce(self) -> None:
        """Sum-all-reduce the MLP/attention gradients across replicas."""
        all_dense = [m.dense_parameters() for m in self.replicas]
        for index in range(len(all_dense[0])):
            rank_params = [params[index] for params in all_dense]
            buffers = [
                p.grad if p.grad is not None else np.zeros_like(p.value)
                for p in rank_params
            ]
            combined = self.group.all_reduce(buffers, ReduceOp.SUM)
            for p, g in zip(rank_params, combined):
                p.grad = g

    def _guard_step(self, losses: list[float], iteration: int, step_params) -> bool:
        """Shared pre-step guard: loss check, grad poison, grad check.

        Returns False when the step must be discarded (non-finite
        gradients); pending gradients are already cleared in that case.

        Raises:
            LossSpikeError: via the guard, on a non-finite/spiking loss.
        """
        loss = float(np.mean(losses))
        if self.guards is not None:
            # A bad loss from a clean batch means the parameters are
            # poisoned: raises LossSpikeError, answered by rollback.
            self.guards.check_loss(loss, iteration)
        if (
            self.fault_plan is not None
            and self.fault_plan.should_corrupt_gradient(iteration)
        ):
            target = self.replicas[0].dense_parameters()[0]
            if target.grad is not None:
                self.fault_plan.corrupt_array(target.grad)
        if self.guards is not None and not self.guards.grads_ok(step_params, iteration):
            # Poisoned *gradients*: discard the step on every replica
            # before any collective shares them.
            self._clear_pending_grads()
            return False
        return True

    def _step_cold(self, batch, dense_optimizers, master_optimizer, iteration=0):
        shards = shard_batch(batch, self.world_size)
        losses = []
        for model, shard in zip(self.replicas, shards):
            logits = model.forward(shard)
            losses.append(self._loss.forward(logits, shard.labels))
            model.backward(self._loss.backward() / self.world_size)
        step_params = [p for m in self.replicas for p in m.dense_parameters()] + [
            t.weight for t in self.master_tables.values()
        ]
        if not self._guard_step(losses, iteration, step_params):
            return None
        self._dense_all_reduce()
        for optimizer in dense_optimizers:
            optimizer.step()
        # Sparse grads from every replica accumulated on the shared
        # masters; one "CPU" step applies them (the hybrid path).
        master_optimizer.step()
        return float(np.mean(losses))

    def _step_hot(self, batch, dense_optimizers, replica_optimizers, iteration=0):
        shards = shard_batch(batch, self.world_size)
        losses = []
        for model, shard in zip(self.replicas, shards):
            logits = model.forward(shard)
            losses.append(self._loss.forward(logits, shard.labels))
            model.backward(self._loss.backward() / self.world_size)
        step_params = [p for m in self.replicas for p in m.dense_parameters()] + [
            bag.weight for replica in self.replicator.replicas for bag in replica.values()
        ]
        if not self._guard_step(losses, iteration, step_params):
            return None
        # Fused all-reduce: dense buffers + hot-bag sparse grads.
        self._dense_all_reduce()
        self.replicator.all_reduce_gradients()
        for optimizer in dense_optimizers:
            optimizer.step()
        for optimizer in replica_optimizers:
            optimizer.step()
        return float(np.mean(losses))

    # ------------------------------------------------------------------
    # Recovery policies
    # ------------------------------------------------------------------

    def _clear_pending_grads(self) -> None:
        """Discard every half-accumulated gradient after a failed step."""
        for model in self.replicas:
            for param in model.dense_parameters():
                param.zero_grad()
        for replica in self.replicator.replicas:
            for bag in replica.values():
                bag.weight.zero_grad()
        for table in self.master_tables.values():
            table.weight.zero_grad()

    def _handle_rank_death(self, rank: int) -> list[SGD]:
        """Shrink the world after a permanent rank failure.

        Drops the dead replica (model, cold bags, hot-bag copy), rebuilds
        the process group on the survivors (communication accounting
        carries over), and returns fresh dense optimizers for the new
        replica list.  The failed mini-batch is retried by the caller —
        pending gradients are discarded here, so the retry recomputes the
        step from clean state and the survivors stay bit-equal.
        """
        rank = min(max(rank, 0), len(self.replicas) - 1)
        with span("resilience.rank_death", rank=rank, world_size=self.world_size):
            self._clear_pending_grads()
            dead = self.replicas[rank]
            del self.replicas[rank]
            del self._cold_bags[rank]
            if self.replicator.replicas:
                self.replicator.drop_replica(rank)
            old = self.group
            self.group = ProcessGroup(
                world_size=len(self.replicas),
                bytes_communicated=old.bytes_communicated,
                collective_calls=old.collective_calls,
                fault_plan=old.fault_plan,
                retry=old.retry,
            )
            self.world_shrinks += 1
            if self.rejoin:
                # Park the dead rank's model; a segment boundary will
                # re-admit it with state resynced from the masters.
                self._parked.append(dead)
            registry = get_registry()
            registry.counter("resilience.world_shrinks").inc()
            registry.gauge("dist.world_size").set(self.world_size)
            self._emit("death", rank=rank, world_size=self.world_size, parked=self.rejoin)
        return [SGD(m.dense_parameters(), lr=self.lr) for m in self.replicas]

    def _emit(self, event: str, **fields) -> None:
        if self.event_log is not None:
            self.event_log.emit(event, **fields)

    def _rejoin_parked(self, mode: str) -> list[SGD]:
        """Re-admit every parked rank at a segment boundary.

        Called right after the boundary sync, where the CPU masters are
        authoritative in either mode: a hot segment has just written
        replica rows back via ``sync_to_master``, and a cold segment
        trains the masters directly.  Each parked model gets rank 0's
        dense parameters (survivors are bit-equal, so any rank would
        do), a cold-bag set over the shared masters, and — unless the
        run degraded — a fresh hot replica built from the masters.  The
        process group is rebuilt at the restored world size with
        communication accounting carried over.

        Returns fresh dense optimizers for the grown replica list (same
        contract as :meth:`_handle_rank_death`).
        """
        registry = get_registry()
        reference = self.replicas[0].dense_parameters()
        while self._parked:
            model = self._parked.pop(0)
            with span("resilience.rank_rejoin", world_size=self.world_size + 1, mode=mode):
                for p, q in zip(reference, model.dense_parameters()):
                    q.value[...] = p.value
                    q.zero_grad()
                self.replicas.append(model)
                self._cold_bags.append(
                    {
                        name: EmbeddingBag(table, mode=self.pooling)
                        for name, table in self.master_tables.items()
                    }
                )
                replicated = bool(self.replicator.replicas) and not self.replicator.evicted
                if replicated:
                    self.replicator.add_replica()
                bags = (
                    self.replicator.bags_for_replica(len(self.replicas) - 1)
                    if replicated and mode == "hot"
                    else self._cold_bags[-1]
                )
                for name, bag in bags.items():
                    model.set_bag(name, bag)
                old = self.group
                self.group = ProcessGroup(
                    world_size=len(self.replicas),
                    bytes_communicated=old.bytes_communicated,
                    collective_calls=old.collective_calls,
                    fault_plan=old.fault_plan,
                    retry=old.retry,
                )
                self.rejoins += 1
                registry.counter("resilience.elastic.rejoins").inc()
                registry.gauge("dist.world_size").set(self.world_size)
                self._emit(
                    "rejoin",
                    rank=len(self.replicas) - 1,
                    world_size=self.world_size,
                    mode=mode,
                )
        return [SGD(m.dense_parameters(), lr=self.lr) for m in self.replicas]

    def _degrade_to_cold(self, scheduler: ShuffleScheduler) -> int:
        """Hot replicas evicted: salvage their rows, go cold for good."""
        with span("resilience.degrade", world_size=self.world_size):
            moved = self.replicator.sync_to_master()
            self.replicator.evict()
            scheduler.degrade()
            for model, bags in zip(self.replicas, self._cold_bags):
                for name, bag in bags.items():
                    model.set_bag(name, bag)
        return moved

    # ------------------------------------------------------------------
    # Checkpoint capture / restore
    # ------------------------------------------------------------------

    def _capture_checkpoint(
        self,
        step: int,
        epoch: int,
        cursors: dict[str, int],
        scheduler: ShuffleScheduler,
        last_loss: float,
        last_acc: float,
        dataset: FAEDataset | None = None,
        repacked: bool = False,
    ) -> TrainerCheckpoint:
        """Snapshot at a segment boundary (masters are authoritative).

        When a cache turnover has re-packed the batch streams, the
        repacked dataset geometry rides along (``dataset_state``) so
        resume rebuilds the exact pools the cursors refer to.
        """
        return TrainerCheckpoint(
            step=step,
            epoch=epoch,
            cursors=dict(cursors),
            scheduler_state=scheduler.state_dict(),
            params=capture_training_state(
                self.replicas[0].dense_parameters(), self.master_tables
            ),
            rng_state=self.fault_plan.state_dict() if self.fault_plan else None,
            degraded=scheduler.degraded,
            last_train_loss=last_loss,
            last_train_accuracy=last_acc,
            metadata={"world_size": self.world_size},
            cache_state=self.cache.state_dict() if self.cache is not None else None,
            dataset_state=(
                dataset.state_dict() if repacked and dataset is not None else None
            ),
            drift_state=self.drift.state_dict() if self.drift is not None else None,
        )

    def _restore_cache_state(self, ckpt: TrainerCheckpoint) -> None:
        """Restore the online cache (and rebuild replica bags to match).

        A pre-v2 checkpoint carries no cache state: warn and cold-start
        (the cache keeps the fresh membership it was constructed with —
        the same state :meth:`EmbeddingHotCache.from_schema` cold-starts
        from when no calibration exists).
        """
        if self.cache is None:
            return
        if ckpt.cache_state is None:
            warnings.warn(
                "checkpoint predates cache durability (no cache state): the "
                "online cache cold-starts from its initial membership instead "
                "of resuming exactly",
                stacklevel=2,
            )
            return
        self.cache.load_state_dict(ckpt.cache_state)
        # Replica bags were built from the constructor-time membership;
        # rebuild them (from the restored masters) to match the restored
        # membership.
        self.replicator = EmbeddingReplicator(
            tables=self.master_tables,
            bag_specs=self.cache.bags(),
            num_replicas=self.replicator.num_replicas,
            pooling=self.replicator.pooling,
        )

    def _restore_checkpoint(
        self, resume, scheduler: ShuffleScheduler
    ) -> TrainerCheckpoint:
        """Restore parameters, scheduler, cache, and fault state."""
        ckpt = resume if isinstance(resume, TrainerCheckpoint) else load_checkpoint(resume)
        reference = self.replicas[0].dense_parameters()
        restore_training_state(reference, self.master_tables, ckpt.params)
        for model in self.replicas[1:]:
            for p, q in zip(reference, model.dense_parameters()):
                q.value[...] = p.value
        scheduler.load_state_dict(ckpt.scheduler_state)
        self._restore_cache_state(ckpt)
        if self.drift is not None and ckpt.drift_state is not None:
            self.drift.load_state_dict(ckpt.drift_state)
        if ckpt.degraded:
            # The run had already lost its hot replicas; stay cold.
            self.replicator.evict()
        else:
            self.replicator.sync_from_master()
        if ckpt.rng_state is not None and self.fault_plan is not None:
            self.fault_plan.load_state_dict(ckpt.rng_state)
        return ckpt

    def _refresh_cache(
        self,
        train_log: SyntheticClickLog,
        dataset: FAEDataset,
        cursors: dict[str, int],
        scheduler: ShuffleScheduler,
        mode: str,
        journal: RefreshJournal | None,
    ) -> tuple[FAEDataset, dict[str, int], str, bool]:
        """One journaled cache turnover (the refresh transaction).

        Same phase order and crash-fault kill points as the single-device
        :meth:`~repro.train.trainer.FAETrainer._refresh_cache`: plan ->
        intent (journal write-ahead) -> apply (membership swap) ->
        replicas (delta shipped to every rank) -> repack (remaining
        batches) -> pools (scheduler swap) -> commit (journal).  A crash
        anywhere is recovered by re-planning from the pre-refresh
        checkpoint, which :meth:`RefreshJournal.verify_rollforward`
        checks against the journaled intent.

        Returns:
            ``(dataset, cursors, mode, repacked)``.
        """
        fault_plan = self.fault_plan
        refresh_index = self.cache.rebalances
        plan = self.cache.plan_rebalance()
        delta = plan.delta
        if fault_plan is not None:
            fault_plan.maybe_crash_refresh(refresh_index, "plan")
        if journal is not None:
            journal.verify_rollforward(tick=plan.tick, delta=delta)
            journal.begin(
                refresh_index=refresh_index,
                tick=plan.tick,
                generation=self.cache.version + (0 if delta.is_empty else 1),
                delta=delta,
            )
            if fault_plan is not None:
                fault_plan.maybe_crash_refresh(refresh_index, "intent")
        self.cache.apply_rebalance(plan)
        if fault_plan is not None:
            fault_plan.maybe_crash_refresh(refresh_index, "apply")
        repacked = False
        if not delta.is_empty:
            if mode == "hot":
                # Old hot bags are about to be rebuilt; fall back to the
                # (current) masters on every rank.
                for model, bags in zip(self.replicas, self._cold_bags):
                    for name, bag in bags.items():
                        model.set_bag(name, bag)
                mode = "cold"
            new_bags = self.cache.bags()
            self.replicator.apply_delta(new_bags, delta)
            if fault_plan is not None:
                fault_plan.maybe_crash_refresh(refresh_index, "replicas")
            dataset, cursors = repack_remaining(
                train_log, dataset, cursors, delta, new_bags
            )
            if fault_plan is not None:
                fault_plan.maybe_crash_refresh(refresh_index, "repack")
            scheduler.repack_pools(
                len(dataset.hot_batches), len(dataset.cold_batches)
            )
            if fault_plan is not None:
                fault_plan.maybe_crash_refresh(refresh_index, "pools")
            get_registry().gauge("train.batch.hot_fraction").set(
                dataset.hot_input_fraction
            )
            repacked = True
        if journal is not None:
            journal.commit()
        if fault_plan is not None:
            fault_plan.maybe_crash_refresh(refresh_index, "commit")
        return dataset, cursors, mode, repacked

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------

    def _rollback(
        self,
        exc: LossSpikeError,
        checkpoint: CheckpointManager | None,
        initial: TrainerCheckpoint,
    ) -> TrainerCheckpoint:
        """Answer a loss spike: back off the LR, return the resume point.

        Raises:
            GuardAbort: when the guard's rollback budget is exhausted.
        """
        guards = self.guards
        guards.note_rollback(
            str(exc),
            checkpoint_dir=checkpoint.directory if checkpoint is not None else None,
            ledger_path=self.guard_ledger_path,
        )
        with span("guards.rollback", iteration=exc.iteration, loss=exc.loss):
            self.lr *= guards.config.lr_backoff
            self._clear_pending_grads()
            target = checkpoint.latest() if checkpoint is not None else None
            ckpt = load_checkpoint(target) if target is not None else initial
        # Never restore the fault plan's RNG on rollback: fired-once
        # faults stay fired, so the replay does not re-inject the same
        # corruption and loop forever.
        return replace(ckpt, rng_state=None)

    def train(
        self,
        train_log: SyntheticClickLog,
        test_log: SyntheticClickLog,
        epochs: int = 1,
        eval_samples: int = 4096,
        checkpoint: CheckpointManager | None = None,
        resume=None,
    ) -> TrainResult:
        """Train over the plan's hot/cold batches; mirrors FAETrainer.

        With ``guards`` set, a :class:`LossSpikeError` (poisoned
        parameters) rolls the run back to the newest good checkpoint (or
        the captured initial state) with learning-rate backoff, bounded
        by the guard's rollback budget — same recovery as the
        single-device :class:`~repro.train.trainer.FAETrainer`.

        Args:
            checkpoint: optional manager; a snapshot is taken at each
                due segment boundary (masters authoritative).
            resume: checkpoint path or :class:`TrainerCheckpoint` to
                continue from, or None for a fresh run.
        """
        if self.guards is None:
            return self._train(train_log, test_log, epochs, eval_samples, checkpoint, resume)
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        dataset = self.plan.dataset
        if resume is None:
            # Snapshot the starting state against a pristine scheduler:
            # resuming from it is equivalent to restarting the run.
            pristine = ShuffleScheduler(
                num_hot_batches=len(dataset.hot_batches),
                num_cold_batches=len(dataset.cold_batches),
                initial_rate=self.plan.config.scheduler_initial_rate,
                strip_length=self.plan.config.scheduler_strip_length,
            )
            initial = self._capture_checkpoint(0, 0, {"hot": 0, "cold": 0}, pristine, 0.0, 0.0)
        else:
            initial = resume if isinstance(resume, TrainerCheckpoint) else load_checkpoint(resume)
        attempt = resume
        while True:
            try:
                result = self._train(
                    train_log, test_log, epochs, eval_samples, checkpoint, attempt
                )
                result.rollbacks = self.guards.rollbacks
                result.skipped_batches = self.guards.skipped_batches
                result.skipped_steps = self.guards.skipped_steps
                return result
            except LossSpikeError as exc:
                attempt = self._rollback(exc, checkpoint, initial)

    def _train(
        self,
        train_log: SyntheticClickLog,
        test_log: SyntheticClickLog,
        epochs: int = 1,
        eval_samples: int = 4096,
        checkpoint: CheckpointManager | None = None,
        resume=None,
    ) -> TrainResult:
        """One training attempt (the guarded :meth:`train` may retry it)."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        dataset = self.plan.dataset
        repacked = False
        if resume is not None:
            resume = (
                resume
                if isinstance(resume, TrainerCheckpoint)
                else load_checkpoint(resume)
            )
            if resume.dataset_state is not None:
                # The run had re-packed its batches before this snapshot:
                # cursors and scheduler pools refer to that geometry, not
                # the plan's original packing.
                dataset = FAEDataset.from_state_dict(resume.dataset_state)
                repacked = True
        scheduler = ShuffleScheduler(
            num_hot_batches=len(dataset.hot_batches),
            num_cold_batches=len(dataset.cold_batches),
            initial_rate=self.plan.config.scheduler_initial_rate,
            strip_length=self.plan.config.scheduler_strip_length,
        )
        journal = (
            RefreshJournal(checkpoint.directory)
            if checkpoint is not None and self.cache is not None
            else None
        )
        dense_optimizers = [SGD(m.dense_parameters(), lr=self.lr) for m in self.replicas]
        master_optimizer = SGD(
            [t.weight for t in self.master_tables.values()], lr=self.lr
        )
        history = TrainingHistory()
        master_bags = self._cold_bags[0]

        for model, bags in zip(self.replicas, self._cold_bags):
            for name, bag in bags.items():
                model.set_bag(name, bag)

        mode = "cold"
        iteration = 0
        sync_bytes = 0
        rates: list[int] = []
        last_loss = 0.0
        last_acc = 0.0
        start_epoch = 0
        resume_cursors: dict[str, int] | None = None
        segments_done = 0

        if resume is not None:
            ckpt = self._restore_checkpoint(resume, scheduler)
            iteration = ckpt.step
            start_epoch = ckpt.epoch
            resume_cursors = dict(ckpt.cursors)
            last_loss = ckpt.last_train_loss
            last_acc = ckpt.last_train_accuracy
            if (
                self.cache is not None
                and not scheduler.degraded
                and self.cache.should_rebalance()
            ):
                # Checkpoints are captured *before* the boundary refresh,
                # so a restored full observation window means the crashed
                # run was refreshing (or about to): roll the refresh
                # forward now, deterministically — plan_rebalance is pure
                # in the restored state, and the journal's pending intent
                # (if the crash landed mid-refresh) verifies the re-plan.
                dataset, resume_cursors, mode, did_repack = self._refresh_cache(
                    train_log, dataset, resume_cursors, scheduler, mode, journal
                )
                repacked = repacked or did_repack

        for epoch in range(start_epoch, epochs):
            if resume_cursors is not None:
                # Mid-epoch resume: the scheduler already holds this
                # epoch's remaining pools; do not refill them.
                cursors = resume_cursors
                resume_cursors = None
            else:
                scheduler.reset_epoch()
                cursors = {"hot": 0, "cold": 0}
            for segment in scheduler.segments():
                if (
                    self.fault_plan is not None
                    and not scheduler.degraded
                    and self.fault_plan.should_evict_hot(iteration)
                ):
                    sync_bytes += self._degrade_to_cold(scheduler)
                    mode = "cold"
                # In degraded mode the segment still drains its planned
                # pool, but executes on the cold (master-table) path.
                run_hot = segment.kind == "hot" and not scheduler.degraded

                wanted = "hot" if run_hot else "cold"
                if wanted != mode:
                    sync_bytes += (
                        self._install_hot() if wanted == "hot" else self._install_cold()
                    )
                    mode = wanted

                if (
                    self.fault_plan is not None
                    and run_hot
                    and self.fault_plan.should_corrupt_hot_row(iteration)
                ):
                    # Poison the same row of every replica (replicas must
                    # stay bit-equal); the damage spreads to the masters
                    # at the next sync unless the guard trips first.
                    # Target the most-accessed row of the upcoming hot
                    # batch so the fault is guaranteed to be exercised.
                    name = next(iter(self.replicator.replicas[0]))
                    bag = self.replicator.replicas[0][name]
                    cursor = cursors.get("hot", 0)
                    upcoming = (
                        train_log.sparse[name][dataset.hot_batches[cursor]]
                        if cursor < len(dataset.hot_batches)
                        else np.empty(0, dtype=np.int64)
                    )
                    row = popular_local_row(bag, upcoming)
                    for replica in self.replicator.replicas:
                        self.fault_plan.corrupt_row(
                            replica[name].weight.value, row=row
                        )

                replica_optimizers: list[SGD] = []
                if run_hot:
                    replica_optimizers = [
                        SGD([bag.weight for bag in replica.values()], lr=self.lr)
                        for replica in self.replicator.replicas
                    ]
                pool_name = segment.drain_pool
                pool = dataset.hot_batches if pool_name == "hot" else dataset.cold_batches

                losses = []
                start = cursors[pool_name]
                for index_array in pool[start : start + segment.num_batches]:
                    if self.cache is not None:
                        # Observe the untrimmed, uncorrupted lookups once
                        # per mini-batch (rank-death retries must not
                        # double-count).
                        self.cache.observe(
                            {
                                name: ids[index_array]
                                for name, ids in train_log.sparse.items()
                            }
                        )
                    loss = None
                    while True:
                        # Data parallelism needs equal shards: trim trailing
                        # short batches to a world-size multiple (real DDP
                        # runs drop the remainder the same way).
                        usable = (len(index_array) // self.world_size) * self.world_size
                        if usable == 0:
                            self.skipped_inputs += len(index_array)
                            break
                        batch = fetch_batch(
                            train_log,
                            index_array[:usable],
                            hot=run_hot,
                            fault_plan=self.fault_plan,
                            retry=self.retry,
                        )
                        if self.fault_plan is not None:
                            batch = self.fault_plan.maybe_corrupt_batch(batch)
                        if self.guards is not None and not self.guards.batch_ok(batch):
                            # Poisoned *inputs*: dropping the batch costs
                            # one update and nothing else.
                            self.skipped_inputs += len(index_array)
                            break
                        try:
                            if run_hot:
                                loss = self._step_hot(
                                    batch, dense_optimizers, replica_optimizers, iteration
                                )
                            else:
                                loss = self._step_cold(
                                    batch, dense_optimizers, master_optimizer, iteration
                                )
                        except PermanentRankFailure as exc:
                            if self.world_size <= 1:
                                raise
                            dense_optimizers = self._handle_rank_death(exc.rank)
                            master_bags = self._cold_bags[0]
                            if run_hot:
                                replica_optimizers = [
                                    SGD([bag.weight for bag in replica.values()], lr=self.lr)
                                    for replica in self.replicator.replicas
                                ]
                            continue  # retry the same mini-batch, re-trimmed
                        self.skipped_inputs += len(index_array) - usable
                        break
                    if loss is not None:
                        iteration += 1
                        losses.append(loss)
                        if self.fault_plan is not None:
                            self.fault_plan.maybe_crash_step(iteration)
                cursors[pool_name] = start + segment.num_batches

                if mode == "hot":
                    sync_bytes += self.replicator.sync_to_master()
                if self._parked:
                    # Segment boundary: masters are authoritative (just
                    # synced when hot; trained directly when cold), so a
                    # parked rank can re-admit bit-exactly.
                    dense_optimizers = self._rejoin_parked(mode)
                    master_bags = self._cold_bags[0]
                test_loss, test_acc = evaluate_with_master_bags(
                    self.replicas[0], master_bags, test_log, eval_samples
                )
                if self.guards is not None:
                    # Catch poisoned state before it contaminates the
                    # scheduler's loss feedback: raises LossSpikeError.
                    self.guards.check_eval_loss(test_loss, iteration)
                scheduler.record_test_loss(test_loss)
                rates.append(scheduler.rate)
                last_loss = float(np.mean(losses)) if losses else last_loss
                history.record(
                    HistoryPoint(
                        iteration=iteration,
                        train_loss=last_loss,
                        test_loss=test_loss,
                        test_accuracy=test_acc,
                        train_accuracy=last_acc,
                        segment_kind=segment.kind,
                    )
                )
                segments_done += 1
                if checkpoint is not None and checkpoint.should_save(segments_done):
                    snapshot = self._capture_checkpoint(
                        iteration,
                        epoch,
                        cursors,
                        scheduler,
                        last_loss,
                        last_acc,
                        dataset=dataset,
                        repacked=repacked,
                    )
                    # Checkpoint hygiene: never persist a snapshot
                    # carrying NaN/Inf — rollback must not restore poison.
                    if self.guards is None or self.guards.state_ok(snapshot.params):
                        checkpoint.save(snapshot)
                        if self.fault_plan is not None:
                            self.fault_plan.maybe_crash_checkpoint()

                # Cache turnover at the segment boundary: the masters are
                # authoritative here (hot rows flushed before evaluation),
                # so promotions pull fresh values and demotions are free.
                # The turnover runs *after* the checkpoint on purpose:
                # crash recovery re-derives an interrupted refresh from
                # the pre-refresh snapshot (see _refresh_cache).
                if (
                    self.cache is not None
                    and not scheduler.degraded
                    and self.cache.should_rebalance()
                ):
                    dataset, cursors, mode, did_repack = self._refresh_cache(
                        train_log, dataset, cursors, scheduler, mode, journal
                    )
                    repacked = repacked or did_repack

        if mode == "hot":
            sync_bytes += self._install_cold()
        from repro.train.metrics import evaluate_model

        final_loss, final_acc = evaluate_model(self.replicas[0], test_log)
        _l, train_acc = evaluate_model(self.replicas[0], train_log, max_samples=4 * eval_samples)
        history.record(
            HistoryPoint(
                iteration=iteration,
                train_loss=last_loss,
                test_loss=final_loss,
                test_accuracy=final_acc,
                train_accuracy=train_acc,
                segment_kind="final",
            )
        )
        return TrainResult(
            history=history,
            final_train_accuracy=train_acc,
            final_test_accuracy=final_acc,
            sync_events=self.replicator.sync_events,
            sync_bytes=sync_bytes,
            schedule_rates=rates,
            world_shrinks=self.world_shrinks,
            rejoins=self.rejoins,
            degraded=scheduler.degraded,
        )

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def max_dense_divergence(self) -> float:
        """Largest MLP-parameter gap between any replica and rank 0."""
        worst = 0.0
        reference = self.replicas[0].dense_parameters()
        for model in self.replicas[1:]:
            for p, q in zip(reference, model.dense_parameters()):
                worst = max(worst, float(np.abs(p.value - q.value).max(initial=0.0)))
        return worst

    def max_hot_divergence(self) -> float:
        """Largest hot-bag gap between replicas (must stay 0)."""
        return self.replicator.max_replica_divergence()
