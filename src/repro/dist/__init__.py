"""Distributed-training substrate: simulated multi-device data parallelism.

The paper trains data-parallel across up to four GPUs with NCCL
collectives over NVLink.  This package reproduces those semantics in
process (numpy): a :class:`ProcessGroup` of ranks with all-reduce /
broadcast / all-gather collectives, a :class:`DataParallelTrainer` that
shards each global mini-batch across model replicas and keeps them in
lock-step, and a :class:`DistributedFAETrainer` that runs the full FAE
execution model — per-GPU hot-bag replicas, shared CPU master tables for
cold batches, a fused all-reduce over dense and hot-embedding gradients.

The invariant everything here is tested against: *distributed training is
bit-for-bit a reordering of single-device training* (identical updates,
identical final parameters, up to float32 reduction order).
"""

from repro.dist.collectives import ProcessGroup, ReduceOp
from repro.dist.parallel import DataParallelTrainer, shard_batch
from repro.dist.fae_parallel import DistributedFAETrainer

__all__ = [
    "DataParallelTrainer",
    "DistributedFAETrainer",
    "ProcessGroup",
    "ReduceOp",
    "shard_batch",
]
