"""Mini-batch construction over synthetic click logs.

The baseline trainer iterates plain shuffled mini-batches; the FAE
trainer instead consumes the pure-hot / pure-cold batches produced by
:class:`repro.core.input_processor.InputProcessor`.  Both paths share the
:class:`MiniBatch` container defined here.

:func:`fetch_batch` is the fault-aware entry point: when given a
:class:`~repro.resilience.faults.FaultPlan` it models transient data-path
hiccups (stalled reads, flaky storage) and absorbs them with bounded
retries, so trainers survive a noisy input pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import SyntheticClickLog

__all__ = [
    "MiniBatch",
    "BatchIterator",
    "batch_from_log",
    "fetch_batch",
    "iter_fae_batches",
    "train_test_split",
]


@dataclass(frozen=True)
class MiniBatch:
    """One training mini-batch.

    Attributes:
        dense: float32 ``(B, num_dense)``.
        sparse: table name -> int64 ``(B, multiplicity)`` lookup ids.
        labels: float32 ``(B,)``.
        indices: int64 ``(B,)`` positions in the source log (provenance).
        hot: FAE tag — True if every lookup in the batch hits a hot row,
            False if cold, None for untagged baseline batches.
    """

    dense: np.ndarray
    sparse: dict[str, np.ndarray]
    labels: np.ndarray
    indices: np.ndarray
    hot: bool | None = None

    def __post_init__(self) -> None:
        n = len(self.labels)
        if self.dense.shape[0] != n or self.indices.shape[0] != n:
            raise ValueError("mini-batch arrays disagree on batch size")
        for name, ids in self.sparse.items():
            if ids.shape[0] != n:
                raise ValueError(f"sparse table {name!r} disagrees on batch size")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def size(self) -> int:
        return len(self.labels)


def batch_from_log(log: SyntheticClickLog, indices: np.ndarray, hot: bool | None = None) -> MiniBatch:
    """Materialize a :class:`MiniBatch` from row positions in ``log``."""
    indices = np.asarray(indices, dtype=np.int64)
    return MiniBatch(
        dense=log.dense[indices],
        sparse={name: ids[indices] for name, ids in log.sparse.items()},
        labels=log.labels[indices],
        indices=indices,
        hot=hot,
    )


def fetch_batch(
    log: SyntheticClickLog,
    indices: np.ndarray,
    hot: bool | None = None,
    fault_plan=None,
    retry=None,
) -> MiniBatch:
    """:func:`batch_from_log` with injected-hiccup absorption.

    Args:
        log: source log.
        indices: row positions to materialize.
        hot: FAE temperature tag for the batch.
        fault_plan: optional :class:`~repro.resilience.faults.FaultPlan`
            whose :meth:`check_loader` is consulted per attempt.
        retry: optional :class:`~repro.resilience.retry.RetryPolicy`.

    Raises:
        repro.resilience.retry.RetryExhaustedError: when hiccups outlast
            the retry budget.
    """
    if fault_plan is None:
        return batch_from_log(log, indices, hot=hot)
    from repro.resilience.retry import with_retries

    def attempt() -> MiniBatch:
        fault_plan.check_loader()
        return batch_from_log(log, indices, hot=hot)

    return with_retries(attempt, policy=retry, name="data.fetch_batch")


def iter_fae_batches(
    log: SyntheticClickLog,
    dataset,
    pool: str,
    start: int = 0,
    count: int | None = None,
    hot: bool | None = None,
    fault_plan=None,
    retry=None,
):
    """Materialize mini-batches from one pool of a packed FAE dataset.

    The FAE trainers drain ``dataset.hot_batches`` / ``cold_batches`` in
    segments; this generator is their shared data path.  The pool is
    sliced once, so in-memory lists and lazy shard-backed sequences
    (:class:`repro.core.fae_format.ShardBatchSequence`) both stream the
    index arrays without decoding more than they need.

    Args:
        log: source log the index arrays point into.
        dataset: a :class:`~repro.core.input_processor.FAEDataset`.
        pool: ``"hot"`` or ``"cold"`` — which batch stream to drain.
        start: first batch position in the pool.
        count: number of batches to yield (None drains to the end).
        hot: FAE temperature tag for the fetched batches (may differ
            from ``pool`` when a degraded run drains its planned hot
            pool on the cold execution path).
        fault_plan: optional loader-fault injection, per :func:`fetch_batch`.
        retry: retry policy for injected hiccups.
    """
    if pool not in ("hot", "cold"):
        raise ValueError(f"pool must be 'hot' or 'cold', got {pool!r}")
    batches = dataset.hot_batches if pool == "hot" else dataset.cold_batches
    stop = len(batches) if count is None else min(len(batches), start + count)
    for index_array in batches[start:stop]:
        yield fetch_batch(log, index_array, hot=hot, fault_plan=fault_plan, retry=retry)


class BatchIterator:
    """Shuffled mini-batch iterator over a click log (baseline data path).

    Args:
        log: source log.
        batch_size: samples per mini-batch.
        shuffle: reshuffle sample order every epoch.
        drop_last: drop the final short batch (the paper's weak-scaling
            runs keep batch sizes uniform, so benchmarks set this True).
        seed: shuffle seed.
        fault_plan: optional fault plan injecting loader hiccups, which
            are absorbed by ``retry`` per :func:`fetch_batch`.
        retry: retry policy for injected hiccups.
    """

    def __init__(
        self,
        log: SyntheticClickLog,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
        fault_plan=None,
        retry=None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.log = log
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.fault_plan = fault_plan
        self.retry = retry
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.log)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        n = len(self.log)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            yield fetch_batch(
                self.log,
                order[start : start + self.batch_size],
                fault_plan=self.fault_plan,
                retry=self.retry,
            )


def train_test_split(
    log: SyntheticClickLog, test_fraction: float = 0.1, seed: int = 0
) -> tuple[SyntheticClickLog, SyntheticClickLog]:
    """Random train/test split of a click log.

    Args:
        log: source log.
        test_fraction: fraction routed to the test split, in ``(0, 1)``.
        seed: permutation seed.

    Returns:
        ``(train, test)`` logs.
    """
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n = len(log)
    order = np.random.default_rng(seed).permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    if len(train_idx) == 0:
        raise ValueError("split left no training samples")
    return log.take(train_idx), log.take(test_idx)
