"""Dataset substrate: synthetic Zipf-skewed click logs shaped like the paper's workloads.

The paper evaluates on Criteo Kaggle, Criteo Terabyte, and Taobao (Alibaba)
click logs.  Those raw logs are not redistributable, so this package builds
synthetic equivalents whose *access distributions* (the only property the
FAE framework depends on) match the measured skew the paper reports: for
example, the top 6.8% of Criteo Kaggle embedding rows receive >=76% of all
accesses.
"""

from repro.data.zipf import (
    ZipfSampler,
    fit_zipf_exponent,
    zipf_head_share,
    zipf_probabilities,
)
from repro.data.schema import DatasetSchema, EmbeddingTableSpec
from repro.data.synthetic import SyntheticClickLog, SyntheticConfig
from repro.data.datasets import (
    criteo_kaggle_like,
    criteo_terabyte_like,
    dataset_by_name,
    taobao_like,
)
from repro.data.loader import BatchIterator, MiniBatch, iter_fae_batches, train_test_split
from repro.data.log import ClickLog
from repro.data.stream import SyntheticClickStream
from repro.data.chunk_source import (
    ChunkSource,
    LogChunkSource,
    ShardChunkSource,
    StreamChunkSource,
    UnsizedChunkSource,
    as_chunk_source,
    save_log_shards,
)
from repro.data.formats import (
    criteo_tsv_lines,
    parse_criteo_tsv,
    parse_taobao_events,
)
from repro.data.shift import popularity_shift_days, write_day_shards
from repro.data.validate import ValidatingChunkSource, validated_log

__all__ = [
    "BatchIterator",
    "ChunkSource",
    "ClickLog",
    "LogChunkSource",
    "ShardChunkSource",
    "StreamChunkSource",
    "UnsizedChunkSource",
    "ValidatingChunkSource",
    "as_chunk_source",
    "validated_log",
    "iter_fae_batches",
    "save_log_shards",
    "criteo_tsv_lines",
    "parse_criteo_tsv",
    "parse_taobao_events",
    "DatasetSchema",
    "EmbeddingTableSpec",
    "MiniBatch",
    "SyntheticClickLog",
    "SyntheticClickStream",
    "SyntheticConfig",
    "ZipfSampler",
    "criteo_kaggle_like",
    "criteo_terabyte_like",
    "dataset_by_name",
    "fit_zipf_exponent",
    "popularity_shift_days",
    "taobao_like",
    "train_test_split",
    "write_day_shards",
    "zipf_head_share",
    "zipf_probabilities",
]
