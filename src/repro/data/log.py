"""Generic in-memory click log container.

:class:`ClickLog` is the structural interface every consumer in this
library actually relies on (the trainers, the FAE input processor, the
loader): dense features, per-table sparse ids, labels, and a schema.
:class:`~repro.data.synthetic.SyntheticClickLog` produces the same
surface with a planted generative model; the parsers in
:mod:`repro.data.formats` produce plain :class:`ClickLog` instances from
real Criteo/Taobao-formatted files.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import DatasetSchema

__all__ = ["ClickLog"]


class ClickLog:
    """Dense features, sparse lookup ids, and labels for N samples.

    Attributes:
        schema: table geometry the sparse ids index into.
        dense: float32 ``(N, num_dense)``.
        sparse: table name -> int64 ``(N, multiplicity)``.
        labels: float32 ``(N,)`` in {0, 1}.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        dense: np.ndarray,
        sparse: dict[str, np.ndarray],
        labels: np.ndarray,
    ) -> None:
        self.schema = schema
        self.dense = np.ascontiguousarray(dense, dtype=np.float32)
        self.labels = np.ascontiguousarray(labels, dtype=np.float32)
        self.sparse = {}
        n = self.labels.shape[0]
        if self.dense.shape != (n, schema.num_dense):
            raise ValueError(
                f"dense shape {self.dense.shape} != ({n}, {schema.num_dense})"
            )
        if set(sparse) != set(schema.table_names):
            raise ValueError(
                f"sparse tables {sorted(sparse)} != schema tables {sorted(schema.table_names)}"
            )
        for spec in schema.tables:
            ids = np.ascontiguousarray(sparse[spec.name], dtype=np.int64)
            if ids.shape != (n, spec.multiplicity):
                raise ValueError(
                    f"{spec.name}: ids shape {ids.shape} != ({n}, {spec.multiplicity})"
                )
            if n and (ids.min() < 0 or ids.max() >= spec.num_rows):
                raise ValueError(f"{spec.name}: ids out of range [0, {spec.num_rows})")
            self.sparse[spec.name] = ids

    @classmethod
    def from_trusted(
        cls,
        schema: DatasetSchema,
        dense: np.ndarray,
        sparse: dict[str, np.ndarray],
        labels: np.ndarray,
    ) -> "ClickLog":
        """Construct without validation or copies.

        For internal use on arrays that are already validated — e.g.
        row-slice views handed out by
        :class:`~repro.data.chunk_source.LogChunkSource`.  Skipping the
        per-table range checks keeps chunk iteration free of extra full
        scans over the sparse ids.
        """
        log = cls.__new__(cls)
        log.schema = schema
        log.dense = dense
        log.sparse = sparse
        log.labels = labels
        return log

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_samples(self) -> int:
        return len(self)

    def access_counts(
        self, table_name: str, sample_indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-row access counts for one table (FAE profiling hook)."""
        spec = self.schema.table(table_name)
        ids = self.sparse[table_name]
        if sample_indices is not None:
            ids = ids[sample_indices]
        return np.bincount(ids.ravel(), minlength=spec.num_rows).astype(np.int64)

    def base_rate(self) -> float:
        """Positive-label fraction."""
        return float(self.labels.mean()) if len(self) else 0.0

    def take(self, indices: np.ndarray) -> "ClickLog":
        """Row-subset copy (train/test splitting)."""
        indices = np.asarray(indices)
        return ClickLog(
            schema=self.schema,
            dense=self.dense[indices],
            sparse={name: ids[indices] for name, ids in self.sparse.items()},
            labels=self.labels[indices],
        )
