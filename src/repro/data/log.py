"""Generic in-memory click log container.

:class:`ClickLog` is the structural interface every consumer in this
library actually relies on (the trainers, the FAE input processor, the
loader): dense features, per-table sparse ids, labels, and a schema.
:class:`~repro.data.synthetic.SyntheticClickLog` produces the same
surface with a planted generative model; the parsers in
:mod:`repro.data.formats` produce plain :class:`ClickLog` instances from
real Criteo/Taobao-formatted files.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import DatasetSchema

__all__ = ["ClickLog"]


class ClickLog:
    """Dense features, sparse lookup ids, and labels for N samples.

    Attributes:
        schema: table geometry the sparse ids index into.
        dense: float32 ``(N, num_dense)``.
        sparse: table name -> int64 ``(N, multiplicity)``.
        labels: float32 ``(N,)`` in {0, 1}.
        quarantined_indices: input-row indices dropped under
            ``oov_policy="quarantine"`` (empty otherwise).

    ``oov_policy`` controls how out-of-range sparse ids are handled at
    construction: ``raise`` (default, historical behavior) aborts,
    ``clamp`` clips ids into ``[0, num_rows)``, ``quarantine`` drops the
    offending rows and records them in ``quarantined_indices``.  For
    richer per-field policies and a persistent ledger, use
    :class:`~repro.data.validate.ValidatingChunkSource`.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        dense: np.ndarray,
        sparse: dict[str, np.ndarray],
        labels: np.ndarray,
        oov_policy: str = "raise",
    ) -> None:
        if oov_policy not in ("raise", "clamp", "quarantine"):
            raise ValueError(
                f"oov_policy must be 'raise', 'clamp', or 'quarantine', got {oov_policy!r}"
            )
        self.schema = schema
        self.dense = np.ascontiguousarray(dense, dtype=np.float32)
        self.labels = np.ascontiguousarray(labels, dtype=np.float32)
        self.sparse = {}
        self.quarantined_indices: np.ndarray = np.empty(0, dtype=np.int64)
        n = self.labels.shape[0]
        if self.dense.shape != (n, schema.num_dense):
            raise ValueError(
                f"dense shape {self.dense.shape} != ({n}, {schema.num_dense})"
            )
        if set(sparse) != set(schema.table_names):
            raise ValueError(
                f"sparse tables {sorted(sparse)} != schema tables {sorted(schema.table_names)}"
            )
        drop = np.zeros(n, dtype=bool)
        for spec in schema.tables:
            ids = np.ascontiguousarray(sparse[spec.name], dtype=np.int64)
            if ids.shape != (n, spec.multiplicity):
                raise ValueError(
                    f"{spec.name}: ids shape {ids.shape} != ({n}, {spec.multiplicity})"
                )
            if n and (ids.min() < 0 or ids.max() >= spec.num_rows):
                if oov_policy == "raise":
                    raise ValueError(f"{spec.name}: ids out of range [0, {spec.num_rows})")
                if oov_policy == "clamp":
                    ids = np.clip(ids, 0, spec.num_rows - 1)
                else:  # quarantine: mark offending rows for removal
                    drop |= ((ids < 0) | (ids >= spec.num_rows)).any(axis=1)
            self.sparse[spec.name] = ids
        if drop.any():
            self.quarantined_indices = np.flatnonzero(drop).astype(np.int64)
            keep = ~drop
            self.dense = self.dense[keep]
            self.labels = self.labels[keep]
            self.sparse = {name: ids[keep] for name, ids in self.sparse.items()}

    @classmethod
    def from_trusted(
        cls,
        schema: DatasetSchema,
        dense: np.ndarray,
        sparse: dict[str, np.ndarray],
        labels: np.ndarray,
    ) -> "ClickLog":
        """Construct without validation or copies.

        For internal use on arrays that are already validated — e.g.
        row-slice views handed out by
        :class:`~repro.data.chunk_source.LogChunkSource`.  Skipping the
        per-table range checks keeps chunk iteration free of extra full
        scans over the sparse ids.
        """
        log = cls.__new__(cls)
        log.schema = schema
        log.dense = dense
        log.sparse = sparse
        log.labels = labels
        return log

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_samples(self) -> int:
        return len(self)

    def access_counts(
        self, table_name: str, sample_indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-row access counts for one table (FAE profiling hook)."""
        spec = self.schema.table(table_name)
        ids = self.sparse[table_name]
        if sample_indices is not None:
            ids = ids[sample_indices]
        return np.bincount(ids.ravel(), minlength=spec.num_rows).astype(np.int64)

    def base_rate(self) -> float:
        """Positive-label fraction."""
        return float(self.labels.mean()) if len(self) else 0.0

    def take(self, indices: np.ndarray) -> "ClickLog":
        """Row-subset copy (train/test splitting)."""
        indices = np.asarray(indices)
        return ClickLog(
            schema=self.schema,
            dense=self.dense[indices],
            sparse={name: ids[indices] for name, ids in self.sparse.items()},
            labels=self.labels[indices],
        )
