"""Chunked click-log streams: Terabyte-scale data without the memory.

The real Criteo Terabyte log (4 B clicks) cannot be materialized; neither
can a faithful synthetic equivalent.  :class:`SyntheticClickStream`
generates the same distribution as :class:`~repro.data.synthetic.
SyntheticClickLog` — identical samplers, identical planted labels — but
lazily, one chunk at a time, so pipelines can process arbitrarily long
streams at constant memory.  Chunks are ordinary
:class:`~repro.data.log.ClickLog` objects, so every downstream consumer
(classifiers, packers, trainers) works unchanged.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.log import ClickLog
from repro.data.schema import DatasetSchema
from repro.data.zipf import ZipfSampler

__all__ = ["SyntheticClickStream"]


class SyntheticClickStream:
    """Lazy, chunked synthetic click-log generator.

    Args:
        schema: dataset geometry.
        total_samples: stream length (may far exceed memory).
        chunk_size: samples per materialized chunk.
        seed: master seed; the stream is deterministic and repeatable.
        label_noise: planted-logit noise (as in SyntheticConfig).
        affinity_scale: hidden-affinity scale.
        dense_signal: dense weight multiplier.

    Iterating yields ``(start_index, ClickLog)`` chunks.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        total_samples: int,
        chunk_size: int = 8192,
        seed: int = 0,
        label_noise: float = 0.25,
        affinity_scale: float = 1.6,
        dense_signal: float = 1.6,
    ) -> None:
        if total_samples <= 0:
            raise ValueError("total_samples must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.schema = schema
        self.total_samples = total_samples
        self.chunk_size = chunk_size
        self.seed = seed
        self.label_noise = label_noise

        # Fixed model parameters shared by every chunk — the stream is one
        # coherent distribution, not a sequence of unrelated logs.
        param_rng = np.random.default_rng(seed)
        if schema.num_dense:
            self._w_dense = param_rng.normal(
                0.0, dense_signal / np.sqrt(schema.num_dense), size=schema.num_dense
            )
        else:
            self._w_dense = np.zeros(0)
        self._samplers: dict[str, ZipfSampler] = {}
        self._affinity: dict[str, np.ndarray] = {}
        for t_index, spec in enumerate(schema.tables):
            self._samplers[spec.name] = ZipfSampler(
                num_items=spec.num_rows,
                exponent=spec.zipf_exponent,
                seed=seed * 7919 + t_index,
            )
            affinity_rng = np.random.default_rng(seed * 104729 + t_index)
            self._affinity[spec.name] = affinity_rng.normal(
                0.0, affinity_scale, size=spec.num_rows
            )

    @property
    def num_chunks(self) -> int:
        return (self.total_samples + self.chunk_size - 1) // self.chunk_size

    def chunk(self, index: int) -> ClickLog:
        """Materialize chunk ``index`` (deterministic, order-independent)."""
        if not 0 <= index < self.num_chunks:
            raise IndexError(f"chunk {index} out of range [0, {self.num_chunks})")
        start = index * self.chunk_size
        n = min(self.chunk_size, self.total_samples - start)
        rng = np.random.default_rng((self.seed, index, 0xC0FFEE))

        dense = rng.normal(0.0, 1.0, size=(n, self.schema.num_dense)).astype(np.float32)
        logit = dense @ self._w_dense if self.schema.num_dense else np.zeros(n)

        sparse: dict[str, np.ndarray] = {}
        for table_index, spec in enumerate(self.schema.tables):
            # Per-chunk draw stream derived from (seed, chunk, table) so
            # any chunk can be regenerated independently.  The table's
            # positional index keys the stream (Python's str hash is
            # salted per process and would break reproducibility).
            draw_rng = np.random.default_rng((self.seed, index, table_index))
            probs = self._samplers[spec.name].id_probabilities()
            ids = draw_rng.choice(
                spec.num_rows, size=n * spec.multiplicity, p=probs
            ).reshape(n, spec.multiplicity)
            sparse[spec.name] = ids.astype(np.int64)
            logit = logit + self._affinity[spec.name][ids].mean(axis=1) / np.sqrt(
                self.schema.num_sparse
            )

        logit = logit + rng.normal(0.0, self.label_noise, size=n)
        probs = 1.0 / (1.0 + np.exp(-logit))
        labels = (rng.random(n) < probs).astype(np.float32)
        return ClickLog(schema=self.schema, dense=dense, sparse=sparse, labels=labels)

    def __iter__(self) -> Iterator[tuple[int, ClickLog]]:
        for index in range(self.num_chunks):
            yield index * self.chunk_size, self.chunk(index)

    def __len__(self) -> int:
        return self.total_samples
