"""Dataset schemas: table geometry and feature layout.

A :class:`DatasetSchema` captures exactly the columns of the paper's
Table I that the rest of the system needs — dense feature count, sparse
feature count, embedding-table cardinalities and dimensions — plus the
per-table Zipf exponents that drive the synthetic generators.
"""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["EmbeddingTableSpec", "DatasetSchema"]

#: Bytes per embedding value.  The paper trains in fp32 full precision.
BYTES_PER_VALUE = 4


@dataclass(frozen=True)
class EmbeddingTableSpec:
    """Geometry of one embedding table.

    Attributes:
        name: stable identifier, e.g. ``"table_03"``.
        num_rows: table cardinality (number of embedding entries).
        dim: embedding dimension (paper: 16 for Kaggle/Taobao, 64 for Terabyte).
        zipf_exponent: skew of accesses into this table; 0 means uniform.
        multiplicity: lookups per sample into this table (Taobao sessions
            access up to 21 sub-inputs per sample, paper footnote 1).
    """

    name: str
    num_rows: int
    dim: int
    zipf_exponent: float = 1.05
    multiplicity: int = 1

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise ValueError(f"{self.name}: num_rows must be positive")
        if self.dim <= 0:
            raise ValueError(f"{self.name}: dim must be positive")
        if self.multiplicity <= 0:
            raise ValueError(f"{self.name}: multiplicity must be positive")
        if self.zipf_exponent < 0:
            raise ValueError(f"{self.name}: zipf_exponent must be non-negative")

    @property
    def size_bytes(self) -> int:
        """Full-precision storage footprint of the table."""
        return self.num_rows * self.dim * BYTES_PER_VALUE

    def rows_for_bytes(self, byte_budget: int) -> int:
        """How many rows fit in ``byte_budget`` bytes (floor, >= 0)."""
        return max(0, byte_budget // (self.dim * BYTES_PER_VALUE))


@dataclass(frozen=True)
class DatasetSchema:
    """Full feature layout of one workload.

    Attributes:
        name: dataset name ("criteo-kaggle", "criteo-terabyte", "taobao").
        num_dense: count of continuous features fed to the bottom MLP.
        tables: one spec per sparse feature / embedding table.
        num_samples: nominal training-set size of the real dataset
            (45 M / 80 M / 10 M per Table I); synthetic instantiations may
            generate fewer rows via ``SyntheticConfig.num_samples``.
    """

    name: str
    num_dense: int
    tables: tuple[EmbeddingTableSpec, ...]
    num_samples: int

    def __post_init__(self) -> None:
        if self.num_dense < 0:
            raise ValueError("num_dense must be non-negative")
        if not self.tables:
            raise ValueError("a schema needs at least one embedding table")
        names = [t.name for t in self.tables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate table names in schema {self.name!r}")
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")

    @property
    def num_sparse(self) -> int:
        """Number of sparse features (== number of embedding tables)."""
        return len(self.tables)

    @property
    def total_embedding_bytes(self) -> int:
        """Aggregate embedding storage (paper Fig 2's left bars)."""
        return sum(t.size_bytes for t in self.tables)

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tables)

    def table(self, name: str) -> EmbeddingTableSpec:
        """Look up a table spec by name.

        Raises:
            KeyError: if no table has that name.
        """
        for spec in self.tables:
            if spec.name == name:
                return spec
        raise KeyError(f"no table named {name!r} in schema {self.name!r}")

    def large_tables(self, min_bytes: int = 1 << 20) -> tuple[EmbeddingTableSpec, ...]:
        """Tables at/above ``min_bytes``.

        The paper treats tables under 1 MB as de-facto hot (SS III-A.1):
        they always fit in GPU memory, so the calibrator only profiles the
        large ones.
        """
        return tuple(t for t in self.tables if t.size_bytes >= min_bytes)

    def small_tables(self, min_bytes: int = 1 << 20) -> tuple[EmbeddingTableSpec, ...]:
        """Complement of :meth:`large_tables`."""
        return tuple(t for t in self.tables if t.size_bytes < min_bytes)

    def lookups_per_sample(self) -> int:
        """Total embedding lookups a single sample performs."""
        return int(sum(t.multiplicity for t in self.tables))

    def describe(self) -> str:
        """Human-readable one-line summary (used by examples)."""
        gib = self.total_embedding_bytes / 2**30
        return (
            f"{self.name}: {self.num_dense} dense + {self.num_sparse} sparse, "
            f"{gib:.2f} GiB of embeddings, {self.num_samples:,} samples"
        )


def scaled_schema(schema: DatasetSchema, row_scale: float, sample_scale: float) -> DatasetSchema:
    """Return a geometrically shrunken copy of ``schema``.

    Accuracy experiments train real numpy models, which cannot hold the
    paper's 73 M-row tables; scaling rows and samples by a common factor
    preserves the rank-frequency shape (Zipf exponents are scale-free).
    """
    if row_scale <= 0 or sample_scale <= 0:
        raise ValueError("scales must be positive")
    tables = tuple(
        EmbeddingTableSpec(
            name=t.name,
            num_rows=max(2, int(round(t.num_rows * row_scale))),
            dim=t.dim,
            zipf_exponent=t.zipf_exponent,
            multiplicity=t.multiplicity,
        )
        for t in schema.tables
    )
    return DatasetSchema(
        name=f"{schema.name}-x{row_scale:g}",
        num_dense=schema.num_dense,
        tables=tables,
        num_samples=max(1, int(round(schema.num_samples * sample_scale))),
    )
