"""Workload factories matching the paper's Table I geometry.

Three factories mirror the three evaluated workloads:

=======  ==================  =====  ======================================
Model    Dataset             Dense  Embedding tables
=======  ==================  =====  ======================================
RMC1     Taobao (Alibaba)    3      3 tables, 0.3 GB, largest 4.1M x 16
RMC2     Criteo Kaggle       13     26 tables, ~2 GB, largest 10.1M x 16
RMC3     Criteo Terabyte     13     26 tables, ~61 GB, largest 73.1M x 64
=======  ==================  =====  ======================================

Each factory accepts a ``scale``: ``"paper"`` keeps the full row counts
(used by the hardware cost model, which never allocates the tables), while
``"medium"``/``"small"``/``"tiny"`` shrink rows and samples by a common
factor so real numpy training and unit tests stay fast.  Zipf exponents
are scale-free, so the rank-frequency *shape* survives shrinking.
"""

from __future__ import annotations


from repro.data.schema import DatasetSchema, EmbeddingTableSpec, scaled_schema

__all__ = [
    "criteo_kaggle_like",
    "criteo_terabyte_like",
    "taobao_like",
    "dataset_by_name",
    "SCALE_FACTORS",
]

#: Named geometric shrink factors applied to table rows and sample counts.
SCALE_FACTORS: dict[str, float] = {
    "paper": 1.0,
    "medium": 1.0 / 100.0,
    "small": 1.0 / 1000.0,
    "tiny": 1.0 / 20000.0,
}

# Published per-feature cardinalities of the Criteo Kaggle categorical
# columns (as preprocessed by the open-source DLRM repo).  Sum ~= 33.8M
# rows -> ~2.06 GiB at dim 16, matching Table I's "2 GB".
_KAGGLE_CARDINALITIES = (
    1460, 583, 10131227, 2202608, 305, 24, 12517, 633, 3, 93145, 5683,
    8351593, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4, 7046547, 18, 15,
    286181, 105, 142572,
)

# Terabyte-like cardinalities: largest table pinned at 73.1M rows per
# Table I, remaining tables spread to total ~238M rows -> ~61 GB at dim 64.
_TERABYTE_CARDINALITIES = (
    73100000, 49000000, 40000000, 29000000, 11300000, 9990000, 7500000,
    5400000, 3600000, 2800000, 1570000, 980000, 452000, 345000, 142000,
    63000, 36700, 17200, 12600, 11200, 7400, 5650, 2200, 975, 105, 26,
)

# Taobao user-behaviour log: (users, items, categories).  Items and
# categories are accessed as length-21 behaviour sequences per sample
# (paper footnote 1: "a stream of up to 21 sub-inputs").
_TAOBAO_CARDINALITIES = (987994, 4162024, 9439)
_TAOBAO_SEQ_LEN = 21


def _resolve_scale(scale: str | float) -> float:
    if isinstance(scale, str):
        try:
            return SCALE_FACTORS[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALE_FACTORS)}"
            ) from None
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return float(scale)


def _skewed_exponent(num_rows: int, base: float) -> float:
    """Mild cardinality-dependent skew adjustment.

    Very small tables (tens of rows) in real logs look closer to uniform;
    huge tables are the ones with pronounced popularity skew.  This keeps
    the generated per-table access shares within the paper's 75-92% band.
    """
    if num_rows < 100:
        return max(0.0, base - 0.5)
    return base


def _build_schema(
    name: str,
    num_dense: int,
    cardinalities: tuple[int, ...],
    dim: int,
    num_samples: int,
    base_exponent: float,
    multiplicities: tuple[int, ...] | None = None,
) -> DatasetSchema:
    if multiplicities is None:
        multiplicities = tuple(1 for _ in cardinalities)
    tables = tuple(
        EmbeddingTableSpec(
            name=f"table_{i:02d}",
            num_rows=rows,
            dim=dim,
            zipf_exponent=_skewed_exponent(rows, base_exponent),
            multiplicity=mult,
        )
        for i, (rows, mult) in enumerate(zip(cardinalities, multiplicities))
    )
    return DatasetSchema(
        name=name, num_dense=num_dense, tables=tables, num_samples=num_samples
    )


def criteo_kaggle_like(scale: str | float = "small") -> DatasetSchema:
    """Criteo Kaggle-shaped workload (RMC2 / DLRM): 13 dense, 26 tables, dim 16.

    The base Zipf exponent is set so the top ~6.8% of rows of the big
    tables capture >=76% of accesses, the skew the paper reports in SS II-A.
    """
    schema = _build_schema(
        name="criteo-kaggle",
        num_dense=13,
        cardinalities=_KAGGLE_CARDINALITIES,
        dim=16,
        num_samples=45_000_000,
        base_exponent=1.10,
    )
    return _apply_scale(schema, scale)


def criteo_terabyte_like(scale: str | float = "small") -> DatasetSchema:
    """Criteo Terabyte-shaped workload (RMC3 / DLRM): 13 dense, 26 tables, dim 64."""
    schema = _build_schema(
        name="criteo-terabyte",
        num_dense=13,
        cardinalities=_TERABYTE_CARDINALITIES,
        dim=64,
        num_samples=80_000_000,
        base_exponent=1.45,
    )
    return _apply_scale(schema, scale)


def taobao_like(scale: str | float = "small") -> DatasetSchema:
    """Taobao-shaped workload (RMC1 / TBSM): 3 dense, 3 tables, dim 16.

    Item and category tables use multiplicity 21 to model the behaviour
    sequence each TBSM input carries.
    """
    schema = _build_schema(
        name="taobao",
        num_dense=3,
        cardinalities=_TAOBAO_CARDINALITIES,
        dim=16,
        num_samples=10_000_000,
        base_exponent=1.05,
        multiplicities=(1, _TAOBAO_SEQ_LEN, _TAOBAO_SEQ_LEN),
    )
    return _apply_scale(schema, scale)


def _apply_scale(schema: DatasetSchema, scale: str | float) -> DatasetSchema:
    factor = _resolve_scale(scale)
    if factor == 1.0:
        return schema
    scaled = scaled_schema(schema, row_scale=factor, sample_scale=factor)
    # Keep enough samples for meaningful training even at tiny scales.
    if scaled.num_samples < 2000:
        scaled = DatasetSchema(
            name=scaled.name,
            num_dense=scaled.num_dense,
            tables=scaled.tables,
            num_samples=2000,
        )
    return scaled


def dataset_by_name(name: str, scale: str | float = "small") -> DatasetSchema:
    """Factory lookup used by benchmarks: accepts the paper's dataset names."""
    factories = {
        "criteo-kaggle": criteo_kaggle_like,
        "criteo-terabyte": criteo_terabyte_like,
        "taobao": taobao_like,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; expected one of {sorted(factories)}") from None
    return factory(scale)
