"""Power-law (Zipfian) samplers and skew diagnostics.

Real recommendation datasets access embedding rows with a heavy-tailed,
approximately Zipfian distribution (paper SS V cites [45]).  The synthetic
datasets in :mod:`repro.data.synthetic` draw every sparse feature from a
:class:`ZipfSampler`, and the calibration utilities here let tests assert
that generated logs reproduce the paper's headline skew numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ZipfSampler",
    "fit_zipf_exponent",
    "generalized_harmonic",
    "zipf_head_share",
    "zipf_probabilities",
    "zipf_top_k_coverage",
    "zipf_rows_above_probability",
]


def generalized_harmonic(n: int, s: float) -> float:
    """Generalized harmonic number ``H_n(s) = sum_{k=1..n} k^-s``.

    Computed exactly for small ``n`` and by Euler-Maclaurin (midpoint
    integral plus endpoint corrections) for large ``n`` — O(1) in ``n``,
    accurate to ~1e-10 relative for the exponents click logs exhibit.
    Used for analytic paper-scale coverage where materializing 73M-row
    probability vectors would be wasteful.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if s < 0:
        raise ValueError(f"s must be non-negative, got {s}")
    cutoff = 20000
    if n <= cutoff:
        return float((np.arange(1, n + 1, dtype=np.float64) ** -s).sum())
    head = float((np.arange(1, cutoff + 1, dtype=np.float64) ** -s).sum())
    # integral_{cutoff}^{n} x^-s dx + trapezoid endpoint correction
    if abs(s - 1.0) < 1e-12:
        integral = np.log(n / cutoff)
    else:
        integral = (n ** (1.0 - s) - cutoff ** (1.0 - s)) / (1.0 - s)
    correction = 0.5 * (float(n) ** -s - float(cutoff) ** -s)
    return head + integral + correction


def zipf_top_k_coverage(num_items: int, exponent: float, top_k: int) -> float:
    """Access share captured by the ``top_k`` most popular items (analytic)."""
    if top_k <= 0:
        return 0.0
    top_k = min(top_k, num_items)
    return generalized_harmonic(top_k, exponent) / generalized_harmonic(num_items, exponent)


def zipf_rows_above_probability(num_items: int, exponent: float, probability: float) -> int:
    """How many ranks have individual probability >= ``probability``.

    For Zipf, ``p_k = k^-s / H_N(s) >= t`` iff ``k <= (t H_N)^(-1/s)``.
    """
    if probability <= 0:
        return num_items
    if exponent == 0:
        uniform = 1.0 / num_items
        return num_items if uniform >= probability else 0
    h_n = generalized_harmonic(num_items, exponent)
    k = (probability * h_n) ** (-1.0 / exponent)
    return int(min(num_items, max(0.0, np.floor(k))))


def zipf_probabilities(num_items: int, exponent: float) -> np.ndarray:
    """Return the probability vector of a truncated Zipf distribution.

    ``p[k] proportional to 1 / (k + 1) ** exponent`` for ranks ``k`` in
    ``[0, num_items)``.  ``exponent == 0`` degenerates to uniform.

    Args:
        num_items: support size; must be positive.
        exponent: Zipf exponent ``s >= 0``.  Typical click logs measure
            ``s`` in ``[0.7, 1.2]``.

    Raises:
        ValueError: if ``num_items <= 0`` or ``exponent < 0``.
    """
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def zipf_head_share(num_items: int, exponent: float, head_fraction: float) -> float:
    """Probability mass captured by the top ``head_fraction`` of ranks.

    Mirrors the paper's skew statements, e.g. "the top 6.8% of embedding
    entries get at least 76% of the total accesses" (Criteo Kaggle, SS II-A).

    Args:
        num_items: support size.
        exponent: Zipf exponent.
        head_fraction: fraction of most-popular items, in ``(0, 1]``.
    """
    if not 0 < head_fraction <= 1:
        raise ValueError(f"head_fraction must be in (0, 1], got {head_fraction}")
    probs = zipf_probabilities(num_items, exponent)
    head = max(1, int(round(head_fraction * num_items)))
    return float(probs[:head].sum())


def fit_zipf_exponent(counts: np.ndarray, min_count: int = 1) -> float:
    """Estimate the Zipf exponent from observed access counts.

    Performs a least-squares fit of ``log(count)`` against ``log(rank)``
    over entries with at least ``min_count`` accesses.  This is the
    standard rank-frequency regression; it is biased for tiny samples but
    adequate for the diagnostic role it plays here (the calibrator never
    depends on it).

    Args:
        counts: per-item access counts (any order; zeros allowed).
        min_count: drop items with fewer accesses before fitting.

    Returns:
        The fitted exponent ``s`` (non-negative for any real click log).

    Raises:
        ValueError: if fewer than two items survive the ``min_count`` cut.
    """
    counts = np.asarray(counts, dtype=np.float64)
    ordered = np.sort(counts)[::-1]
    ordered = ordered[ordered >= min_count]
    if ordered.size < 2:
        raise ValueError("need at least two items with counts >= min_count to fit")
    ranks = np.arange(1, ordered.size + 1, dtype=np.float64)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(ordered), 1)
    return float(-slope)


@dataclass
class ZipfSampler:
    """Samples item ids from a truncated Zipf distribution.

    The mapping from popularity rank to item id is a fixed random
    permutation, so hot ids are scattered across the table exactly as in a
    hashed production embedding table (this matters: the Rand-Em Box's
    random-chunk sampling assumes hot rows are not clustered).

    Attributes:
        num_items: table cardinality.
        exponent: Zipf exponent ``s``.
        seed: seed for both the rank permutation and the draw stream.
    """

    num_items: int
    exponent: float
    seed: int = 0
    _probs: np.ndarray = field(init=False, repr=False)
    _rank_to_id: np.ndarray = field(init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._probs = zipf_probabilities(self.num_items, self.exponent)
        perm_rng = np.random.default_rng(self.seed)
        self._rank_to_id = perm_rng.permutation(self.num_items)
        self._rng = np.random.default_rng(self.seed + 1)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` item ids (int64, shape ``(size,)``)."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        ranks = self._rng.choice(self.num_items, size=size, p=self._probs)
        return self._rank_to_id[ranks].astype(np.int64)

    def probability_of_id(self, item_id: int) -> float:
        """Ground-truth access probability of a concrete item id."""
        ranks = np.argsort(self._rank_to_id)
        return float(self._probs[ranks[item_id]])

    def id_probabilities(self) -> np.ndarray:
        """Ground-truth probability vector indexed by item id."""
        probs = np.empty(self.num_items, dtype=np.float64)
        probs[self._rank_to_id] = self._probs
        return probs

    def hot_ids(self, access_share: float) -> np.ndarray:
        """Smallest set of ids jointly covering ``access_share`` of mass.

        Used by tests as an oracle for "which rows *should* be hot".
        """
        if not 0 < access_share <= 1:
            raise ValueError(f"access_share must be in (0, 1], got {access_share}")
        cumulative = np.cumsum(self._probs)
        cutoff = int(np.searchsorted(cumulative, access_share)) + 1
        return np.sort(self._rank_to_id[:cutoff])
