"""Parsers for the paper's real dataset formats.

The evaluation datasets themselves are not redistributable, but their
file formats are public; these parsers let users with the real data run
the full pipeline on it.

**Criteo click logs** (Kaggle and Terabyte share the format): one sample
per line, tab-separated::

    <label> \t <int_1> ... <int_13> \t <cat_1> ... <cat_26>

Integer features may be empty or negative; categorical features are
8-hex-digit hashes and may be empty.  Following the open-source DLRM
preprocessing, integers are ``log(1+max(x,0))``-transformed and
categoricals are hashed into fixed-cardinality buckets.

**Taobao user-behaviour logs**: one event per line, comma-separated::

    <user_id>,<item_id>,<category_id>,<behavior>,<timestamp>

with behaviors in {pv, cart, fav, buy}.  Events are grouped per user and
ordered by time; each sliding window of ``seq_len`` events becomes one
TBSM sample whose label is whether the *next* event is a purchase.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.data.log import ClickLog
from repro.data.schema import DatasetSchema, EmbeddingTableSpec

__all__ = [
    "parse_criteo_tsv",
    "parse_taobao_events",
    "criteo_tsv_lines",
    "NUM_CRITEO_INTS",
    "NUM_CRITEO_CATS",
]

NUM_CRITEO_INTS = 13
NUM_CRITEO_CATS = 26

#: Taobao behaviours; "buy" is the positive label.
_TAOBAO_BEHAVIORS = ("pv", "cart", "fav", "buy")


def _stable_hash(token: str, buckets: int) -> int:
    """Deterministic string -> bucket hash (stable across processes).

    Python's builtin ``hash`` is salted per process, which would make
    preprocessed FAE datasets irreproducible; md5 is stable.
    """
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % buckets


def parse_criteo_tsv(
    source: str | Path | Iterable[str],
    hash_buckets: int | list[int] = 100_000,
    dim: int = 16,
    max_rows: int | None = None,
    name: str = "criteo-parsed",
) -> ClickLog:
    """Parse Criteo-format TSV into a :class:`ClickLog`.

    Args:
        source: a path to a TSV file, or an iterable of lines.
        hash_buckets: per-table cardinality for categorical hashing —
            a single int applied to all 26 tables, or one int per table.
        dim: embedding dimension recorded in the derived schema.
        max_rows: stop after this many samples.
        name: schema name.

    Returns:
        A ClickLog whose schema has 13 dense features and 26 tables.

    Raises:
        ValueError: on malformed lines (wrong column count).
    """
    if isinstance(hash_buckets, int):
        buckets = [hash_buckets] * NUM_CRITEO_CATS
    else:
        buckets = list(hash_buckets)
        if len(buckets) != NUM_CRITEO_CATS:
            raise ValueError(
                f"hash_buckets must have {NUM_CRITEO_CATS} entries, got {len(buckets)}"
            )
    if any(b <= 0 for b in buckets):
        raise ValueError("hash bucket counts must be positive")

    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source

    labels: list[float] = []
    dense_rows: list[list[float]] = []
    cat_rows: list[list[int]] = []
    expected_cols = 1 + NUM_CRITEO_INTS + NUM_CRITEO_CATS

    for line_no, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        fields = line.split("\t")
        if len(fields) != expected_cols:
            raise ValueError(
                f"line {line_no}: expected {expected_cols} tab-separated fields, "
                f"got {len(fields)}"
            )
        labels.append(float(int(fields[0])))
        dense_rows.append(
            [
                float(np.log1p(max(int(v), 0))) if v else 0.0
                for v in fields[1 : 1 + NUM_CRITEO_INTS]
            ]
        )
        cat_rows.append(
            [
                _stable_hash(token if token else "<missing>", buckets[i])
                for i, token in enumerate(fields[1 + NUM_CRITEO_INTS :])
            ]
        )
        if max_rows is not None and len(labels) >= max_rows:
            break

    if not labels:
        raise ValueError("no samples parsed")

    schema = DatasetSchema(
        name=name,
        num_dense=NUM_CRITEO_INTS,
        tables=tuple(
            EmbeddingTableSpec(f"table_{i:02d}", num_rows=buckets[i], dim=dim)
            for i in range(NUM_CRITEO_CATS)
        ),
        num_samples=len(labels),
    )
    cats = np.asarray(cat_rows, dtype=np.int64)
    sparse = {
        f"table_{i:02d}": cats[:, i : i + 1] for i in range(NUM_CRITEO_CATS)
    }
    return ClickLog(
        schema=schema,
        dense=np.asarray(dense_rows, dtype=np.float32),
        sparse=sparse,
        labels=np.asarray(labels, dtype=np.float32),
    )


def criteo_tsv_lines(log, max_rows: int | None = None) -> Iterable[str]:
    """Render a (synthetic) click log in Criteo TSV format.

    Useful for round-trip tests and for exporting synthetic data to tools
    that expect the original format.  Dense features are exponentiated
    back to non-negative integers; categorical ids are rendered as hex.
    """
    n = len(log) if max_rows is None else min(len(log), max_rows)
    table_names = log.schema.table_names
    for i in range(n):
        ints = [
            str(int(round(np.expm1(max(float(v), 0.0)))))
            for v in log.dense[i][:NUM_CRITEO_INTS]
        ]
        ints += ["0"] * (NUM_CRITEO_INTS - len(ints))
        cats = [f"{int(log.sparse[name][i, 0]):08x}" for name in table_names[:NUM_CRITEO_CATS]]
        cats += ["00000000"] * (NUM_CRITEO_CATS - len(cats))
        yield "\t".join([str(int(log.labels[i])), *ints, *cats])


def parse_taobao_events(
    source: str | Path | Iterable[str],
    seq_len: int = 21,
    dim: int = 16,
    max_samples: int | None = None,
    name: str = "taobao-parsed",
) -> ClickLog:
    """Parse a Taobao behaviour CSV into TBSM-shaped samples.

    Args:
        source: a path or an iterable of ``user,item,category,behavior,ts``
            lines.
        seq_len: behaviour-window length per sample (Table I: 21).
        dim: embedding dimension for the derived schema.
        max_samples: cap on emitted samples.
        name: schema name.

    Returns:
        A ClickLog with 3 dense features (log window span, distinct
        categories, positive-behaviour share) and 3 tables (user, item
        sequence, category sequence).  The label marks windows whose next
        event is a purchase.

    Raises:
        ValueError: on malformed lines or unknown behaviours.
    """
    if seq_len <= 0:
        raise ValueError("seq_len must be positive")
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source

    events_by_user: dict[str, list[tuple[int, str, str, str]]] = defaultdict(list)
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        fields = line.split(",")
        if len(fields) != 5:
            raise ValueError(f"line {line_no}: expected 5 comma-separated fields")
        user, item, category, behavior, timestamp = fields
        if behavior not in _TAOBAO_BEHAVIORS:
            raise ValueError(f"line {line_no}: unknown behavior {behavior!r}")
        events_by_user[user].append((int(timestamp), item, category, behavior))

    user_vocab: dict[str, int] = {}
    item_vocab: dict[str, int] = {}
    cat_vocab: dict[str, int] = {}

    def intern(vocab: dict[str, int], token: str) -> int:
        if token not in vocab:
            vocab[token] = len(vocab)
        return vocab[token]

    dense_rows: list[list[float]] = []
    users: list[int] = []
    item_seqs: list[list[int]] = []
    cat_seqs: list[list[int]] = []
    labels: list[float] = []

    for user in sorted(events_by_user):
        events = sorted(events_by_user[user])
        if len(events) < seq_len + 1:
            continue
        user_id = intern(user_vocab, user)
        for start in range(len(events) - seq_len):
            window = events[start : start + seq_len]
            nxt = events[start + seq_len]
            item_seqs.append([intern(item_vocab, e[1]) for e in window])
            cat_seqs.append([intern(cat_vocab, e[2]) for e in window])
            users.append(user_id)
            span = window[-1][0] - window[0][0]
            distinct_cats = len({e[2] for e in window})
            active_share = sum(e[3] != "pv" for e in window) / seq_len
            dense_rows.append(
                [float(np.log1p(span)), float(distinct_cats), float(active_share)]
            )
            labels.append(1.0 if nxt[3] == "buy" else 0.0)
            if max_samples is not None and len(labels) >= max_samples:
                break
        if max_samples is not None and len(labels) >= max_samples:
            break

    if not labels:
        raise ValueError(
            f"no samples: need users with more than seq_len={seq_len} events"
        )

    schema = DatasetSchema(
        name=name,
        num_dense=3,
        tables=(
            EmbeddingTableSpec("table_00", num_rows=max(1, len(user_vocab)), dim=dim),
            EmbeddingTableSpec(
                "table_01", num_rows=max(1, len(item_vocab)), dim=dim, multiplicity=seq_len
            ),
            EmbeddingTableSpec(
                "table_02", num_rows=max(1, len(cat_vocab)), dim=dim, multiplicity=seq_len
            ),
        ),
        num_samples=len(labels),
    )
    return ClickLog(
        schema=schema,
        dense=np.asarray(dense_rows, dtype=np.float32),
        sparse={
            "table_00": np.asarray(users, dtype=np.int64)[:, None],
            "table_01": np.asarray(item_seqs, dtype=np.int64),
            "table_02": np.asarray(cat_seqs, dtype=np.int64),
        },
        labels=np.asarray(labels, dtype=np.float32),
    )
