"""Synthetic click-log generation with planted, learnable labels.

The generator reproduces the two properties of the paper's real datasets
that FAE depends on:

1. **Access skew** — every sparse feature draws ids from a per-table
   truncated Zipf distribution (:class:`repro.data.zipf.ZipfSampler`),
   calibrated so that small head fractions capture the 75-92% access
   shares the paper measures.
2. **Learnability** — labels come from a planted logistic model over the
   dense features plus hidden per-row affinities, so the accuracy curves
   of Fig 12 / Table III are meaningful (a model that trains must climb
   above the base rate, and baseline vs FAE schedules can be compared).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import DatasetSchema
from repro.data.zipf import ZipfSampler

__all__ = ["SyntheticConfig", "SyntheticClickLog"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs for synthetic log generation.

    Attributes:
        num_samples: rows to generate (overrides the schema's nominal count).
        seed: master seed; every table/stream derives its own child seed.
        label_noise: std-dev of Gaussian noise added to the planted logit.
        dense_scale: std-dev of the dense features.
        affinity_scale: std-dev of hidden per-row affinities.  Larger values
            make sparse features more informative relative to dense ones.
        dense_signal: multiplier on the dense weight vector.  Together with
            ``affinity_scale`` this sets the planted logit's spread and thus
            the Bayes accuracy (defaults target the ~79% test accuracy the
            paper reports for Criteo Kaggle).
    """

    num_samples: int
    seed: int = 0
    label_noise: float = 0.25
    dense_scale: float = 1.0
    affinity_scale: float = 1.6
    dense_signal: float = 1.6

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if self.label_noise < 0:
            raise ValueError("label_noise must be non-negative")


class SyntheticClickLog:
    """An in-memory click log: dense features, sparse ids, binary labels.

    Attributes:
        schema: the dataset geometry this log was generated for.
        dense: float32 array of shape ``(N, num_dense)``.
        sparse: mapping table name -> int64 array ``(N, multiplicity)``.
        labels: float32 array ``(N,)`` of {0, 1} click labels.
    """

    def __init__(self, schema: DatasetSchema, config: SyntheticConfig) -> None:
        self.schema = schema
        self.config = config
        rng = np.random.default_rng(config.seed)

        n = config.num_samples
        self.dense = rng.normal(0.0, config.dense_scale, size=(n, schema.num_dense)).astype(
            np.float32
        )

        self.sparse: dict[str, np.ndarray] = {}
        self._samplers: dict[str, ZipfSampler] = {}
        logit = np.zeros(n, dtype=np.float64)

        # Dense contribution to the planted logit.
        if schema.num_dense:
            w_dense = rng.normal(
                0.0, config.dense_signal / np.sqrt(schema.num_dense), size=schema.num_dense
            )
            logit += self.dense @ w_dense

        # Sparse contributions: hidden affinity per embedding row.
        for t_index, spec in enumerate(schema.tables):
            sampler = ZipfSampler(
                num_items=spec.num_rows,
                exponent=spec.zipf_exponent,
                seed=config.seed * 7919 + t_index,
            )
            self._samplers[spec.name] = sampler
            ids = sampler.sample(n * spec.multiplicity).reshape(n, spec.multiplicity)
            self.sparse[spec.name] = ids
            affinity_rng = np.random.default_rng(config.seed * 104729 + t_index)
            affinity = affinity_rng.normal(0.0, config.affinity_scale, size=spec.num_rows)
            logit += affinity[ids].mean(axis=1) / np.sqrt(schema.num_sparse)

        logit += rng.normal(0.0, config.label_noise, size=n)
        probs = 1.0 / (1.0 + np.exp(-logit))
        self.labels = (rng.random(n) < probs).astype(np.float32)
        self._logits = logit

    def __len__(self) -> int:
        return self.config.num_samples

    @property
    def num_samples(self) -> int:
        return self.config.num_samples

    def sampler(self, table_name: str) -> ZipfSampler:
        """Ground-truth sampler for a table (tests use this as an oracle)."""
        return self._samplers[table_name]

    def access_counts(self, table_name: str, sample_indices: np.ndarray | None = None) -> np.ndarray:
        """Exact per-row access counts for one table.

        Args:
            table_name: which embedding table.
            sample_indices: restrict counting to these sample rows
                (the input sampler passes its random subset here).

        Returns:
            int64 array of length ``num_rows`` with access counts.
        """
        spec = self.schema.table(table_name)
        ids = self.sparse[table_name]
        if sample_indices is not None:
            ids = ids[sample_indices]
        return np.bincount(ids.ravel(), minlength=spec.num_rows).astype(np.int64)

    def base_rate(self) -> float:
        """Positive-label fraction; the floor any classifier must beat."""
        return float(self.labels.mean())

    def bayes_accuracy(self) -> float:
        """Accuracy of the planted model itself — an upper bound for training."""
        predictions = (self._logits > 0).astype(np.float32)
        return float((predictions == self.labels).mean())

    def take(self, indices: np.ndarray) -> "SyntheticClickLog":
        """Return a view-like copy restricted to ``indices`` (for splits)."""
        indices = np.asarray(indices)
        clone = object.__new__(SyntheticClickLog)
        clone.schema = self.schema
        clone.config = SyntheticConfig(
            num_samples=len(indices),
            seed=self.config.seed,
            label_noise=self.config.label_noise,
            dense_scale=self.config.dense_scale,
            affinity_scale=self.config.affinity_scale,
            dense_signal=self.config.dense_signal,
        )
        clone.dense = self.dense[indices]
        clone.sparse = {name: ids[indices] for name, ids in self.sparse.items()}
        clone.labels = self.labels[indices]
        clone._logits = self._logits[indices]
        clone._samplers = self._samplers
        return clone
