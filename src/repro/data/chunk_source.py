"""Chunk sources: the one input shape every preprocess stage consumes.

The FAE preprocess stages (sample, profile, classify, pack — paper
§III) are all single-pass by nature, but the original implementation fed
them a fully materialized log, so peak memory scaled with the whole
dataset.  A :class:`ChunkSource` abstracts "the training inputs" down to
what those stages actually need: a re-iterable sequence of
``(start_index, ClickLog)`` column chunks of bounded size, plus the
schema and (when known) the total length.

Backends:

- :class:`LogChunkSource` — zero-copy row-slice views over an in-memory
  log (a ``chunk_size`` of ``None`` yields the whole log as one chunk,
  which is how the legacy whole-log APIs delegate to the streaming code
  without changing a byte of their output);
- :class:`StreamChunkSource` — adapts
  :class:`~repro.data.stream.SyntheticClickStream`, whose chunks are
  generated lazily and never coexist in memory;
- :class:`ShardChunkSource` — on-disk raw-log shards written by
  :func:`save_log_shards` (one ``.npz`` per chunk plus a JSON manifest,
  each written atomically);
- :class:`UnsizedChunkSource` — wraps a chunk-iterable factory whose
  total length is unknown up front (true streaming ingest); downstream
  samplers fall back to per-chunk Bernoulli draws for these.

Every source is re-iterable: the preprocess pipeline makes two passes
(calibrate, then classify+pack) over the same source.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.data.log import ClickLog
from repro.data.schema import DatasetSchema, EmbeddingTableSpec
from repro.data.stream import SyntheticClickStream
from repro.resilience.atomic import atomic_write, atomic_write_text

__all__ = [
    "ChunkSource",
    "LogChunkSource",
    "ShardChunkSource",
    "StreamChunkSource",
    "UnsizedChunkSource",
    "as_chunk_source",
    "save_log_shards",
]

SHARD_MANIFEST = "manifest.json"
SHARD_FORMAT = "click-log-shards"
SHARD_FORMAT_VERSION = 1


class ChunkSource:
    """Re-iterable sequence of ``(start_index, ClickLog)`` chunks.

    Attributes:
        schema: table geometry shared by every chunk.
        chunk_size: nominal samples per chunk (the last may be short).
    """

    schema: DatasetSchema
    chunk_size: int

    @property
    def num_samples(self) -> int | None:
        """Total samples, or None when the length is unknown up front."""
        raise NotImplementedError

    def chunks(self) -> Iterator[tuple[int, ClickLog]]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[tuple[int, ClickLog]]:
        return self.chunks()


class LogChunkSource(ChunkSource):
    """Chunk view over an in-memory log (zero copies).

    Args:
        log: any log-shaped object (``schema``/``dense``/``sparse``/
            ``labels``); both :class:`~repro.data.log.ClickLog` and
            :class:`~repro.data.synthetic.SyntheticClickLog` qualify.
        chunk_size: rows per chunk; None yields the whole log as a
            single chunk.

    Chunks are row-slice *views* of the log's C-order arrays, built via
    :meth:`ClickLog.from_trusted`, so iteration allocates nothing.
    """

    def __init__(self, log, chunk_size: int | None = None) -> None:
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.log = log
        self.schema = log.schema
        self.chunk_size = len(log) if chunk_size is None else chunk_size

    @property
    def num_samples(self) -> int:
        return len(self.log)

    def chunks(self) -> Iterator[tuple[int, ClickLog]]:
        total = len(self.log)
        step = max(1, self.chunk_size)
        for start in range(0, total, step):
            stop = min(start + step, total)
            yield start, ClickLog.from_trusted(
                schema=self.schema,
                dense=self.log.dense[start:stop],
                sparse={name: ids[start:stop] for name, ids in self.log.sparse.items()},
                labels=self.log.labels[start:stop],
            )


class StreamChunkSource(ChunkSource):
    """Adapter over a :class:`~repro.data.stream.SyntheticClickStream`.

    Chunks are generated on demand and dropped after use, so memory is
    bounded by one chunk regardless of ``total_samples``.
    """

    def __init__(self, stream: SyntheticClickStream) -> None:
        self.stream = stream
        self.schema = stream.schema
        self.chunk_size = stream.chunk_size

    @property
    def num_samples(self) -> int:
        return self.stream.total_samples

    def chunks(self) -> Iterator[tuple[int, ClickLog]]:
        return iter(self.stream)


class UnsizedChunkSource(ChunkSource):
    """A chunk stream whose total length is unknown until exhausted.

    Args:
        schema: table geometry of the chunks.
        factory: zero-argument callable returning a fresh iterable of
            ``(start_index, ClickLog)`` each call (re-iterability).
        chunk_size: nominal chunk size (informational).

    Sampling over an unsized source cannot pre-draw index positions, so
    the calibrator switches to streaming Bernoulli draws (see
    :class:`~repro.core.sampler.BernoulliSampleStream`).
    """

    def __init__(
        self,
        schema: DatasetSchema,
        factory: Callable[[], Iterable[tuple[int, ClickLog]]],
        chunk_size: int = 8192,
    ) -> None:
        self.schema = schema
        self.chunk_size = chunk_size
        self._factory = factory

    @property
    def num_samples(self) -> None:
        return None

    def chunks(self) -> Iterator[tuple[int, ClickLog]]:
        return iter(self._factory())


def save_log_shards(
    directory: str | Path,
    source,
    chunk_size: int | None = None,
) -> Path:
    """Write a chunk source (or log) as on-disk raw-log shards.

    One ``.npz`` per chunk (``dense``/``labels``/``sparse_<table>``),
    each written atomically, then a JSON manifest carrying the schema and
    the shard list — written last, so a crashed save never leaves a
    loadable-but-incomplete directory.

    Returns:
        The shard directory path.
    """
    source = as_chunk_source(source, chunk_size=chunk_size)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    shards: list[dict] = []
    total = 0
    for start, chunk in source:
        name = f"chunk-{len(shards):06d}.npz"
        payload: dict[str, np.ndarray] = {"dense": chunk.dense, "labels": chunk.labels}
        for table, ids in chunk.sparse.items():
            payload[f"sparse_{table}"] = ids
        with atomic_write(directory / name) as tmp:
            np.savez_compressed(tmp, **payload)
        shards.append({"file": name, "start": start, "num_samples": len(chunk)})
        total += len(chunk)

    schema = source.schema
    manifest = {
        "format": SHARD_FORMAT,
        "format_version": SHARD_FORMAT_VERSION,
        "num_samples": total,
        "chunk_size": source.chunk_size,
        "schema": {
            "name": schema.name,
            "num_dense": schema.num_dense,
            "num_samples": schema.num_samples,
            "tables": [
                {
                    "name": spec.name,
                    "num_rows": spec.num_rows,
                    "dim": spec.dim,
                    "zipf_exponent": spec.zipf_exponent,
                    "multiplicity": spec.multiplicity,
                }
                for spec in schema.tables
            ],
        },
        "shards": shards,
    }
    atomic_write_text(directory / SHARD_MANIFEST, json.dumps(manifest, indent=1) + "\n")
    return directory


class ShardChunkSource(ChunkSource):
    """Chunk source over a shard directory written by :func:`save_log_shards`.

    Shards are loaded one at a time and dropped after the chunk is
    consumed, so iteration memory is bounded by the largest shard.

    Raises:
        FileNotFoundError: if the manifest is missing.
        RuntimeError: if the manifest or a shard is corrupt (the error
            names the offending file).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / SHARD_MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise
        except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
            raise RuntimeError(f"shard manifest {manifest_path} is corrupt: {exc}") from exc
        if not isinstance(manifest, dict) or manifest.get("format") != SHARD_FORMAT:
            raise RuntimeError(
                f"shard manifest {manifest_path} is not a {SHARD_FORMAT} manifest"
            )
        version = manifest.get("format_version")
        if version != SHARD_FORMAT_VERSION:
            raise ValueError(
                f"shard format version {version} unsupported (expected {SHARD_FORMAT_VERSION})"
            )
        try:
            schema_spec = manifest["schema"]
            self.schema = DatasetSchema(
                name=schema_spec["name"],
                num_dense=schema_spec["num_dense"],
                tables=tuple(
                    EmbeddingTableSpec(
                        name=t["name"],
                        num_rows=t["num_rows"],
                        dim=t["dim"],
                        zipf_exponent=t["zipf_exponent"],
                        multiplicity=t["multiplicity"],
                    )
                    for t in schema_spec["tables"]
                ),
                num_samples=schema_spec["num_samples"],
            )
            self.chunk_size = int(manifest["chunk_size"])
            self._num_samples = int(manifest["num_samples"])
            self._shards = [
                (str(s["file"]), int(s["start"]), int(s["num_samples"]))
                for s in manifest["shards"]
            ]
        except (KeyError, TypeError) as exc:
            raise RuntimeError(
                f"shard manifest {manifest_path} is truncated: missing {exc}"
            ) from exc

    @property
    def num_samples(self) -> int:
        return self._num_samples

    def shard_refs(self) -> list[tuple[str, int, int]]:
        """``(absolute shard path, start index, num samples)`` per shard.

        Lets parallel consumers (the elastic profiling pool) hand each
        worker a shard *reference* so the worker does its own I/O instead
        of the parent materializing and pickling every chunk.
        """
        return [
            (str(self.directory / name), start, count)
            for name, start, count in self._shards
        ]

    def _load_shard(self, name: str, count: int) -> ClickLog:
        path = self.directory / name
        try:
            with np.load(path, allow_pickle=False) as archive:
                dense = archive["dense"]
                labels = archive["labels"]
                sparse = {
                    spec.name: archive[f"sparse_{spec.name}"] for spec in self.schema.tables
                }
        except FileNotFoundError:
            raise RuntimeError(f"log shard {path} is missing") from None
        except (KeyError, OSError, ValueError, zipfile.BadZipFile, zlib.error) as exc:
            raise RuntimeError(f"log shard {path} is truncated or corrupt: {exc}") from exc
        chunk = ClickLog(schema=self.schema, dense=dense, sparse=sparse, labels=labels)
        if len(chunk) != count:
            raise RuntimeError(
                f"log shard {path} holds {len(chunk)} samples, manifest says {count}"
            )
        return chunk

    def chunks(self) -> Iterator[tuple[int, ClickLog]]:
        for name, start, count in self._shards:
            yield start, self._load_shard(name, count)


def as_chunk_source(obj, chunk_size: int | None = None) -> ChunkSource:
    """Coerce logs, streams, shard directories, or sources to a ChunkSource.

    Accepts an existing :class:`ChunkSource` (returned as-is), a
    :class:`~repro.data.stream.SyntheticClickStream`, a shard directory
    path, or any in-memory log-shaped object.
    """
    if isinstance(obj, ChunkSource):
        return obj
    if isinstance(obj, SyntheticClickStream):
        return StreamChunkSource(obj)
    if isinstance(obj, (str, Path)):
        return ShardChunkSource(obj)
    if hasattr(obj, "dense") and hasattr(obj, "sparse") and hasattr(obj, "labels"):
        return LogChunkSource(obj, chunk_size=chunk_size)
    raise TypeError(f"cannot build a ChunkSource from {type(obj).__name__}")
