"""Validating chunk source: ingest guardrails over any data backend.

The data layer's entry point into :mod:`repro.resilience.guards`:
:class:`ValidatingChunkSource` wraps any
:class:`~repro.data.chunk_source.ChunkSource` and applies an
:class:`~repro.resilience.guards.IngestPolicy` to every chunk — OOV
sparse ids, non-finite dense features, and invalid labels are raised on,
clamped, or quarantined to an atomic JSONL ledger, per field.  Because
every decision is per-row and content-based, the surviving stream and
the ledger are identical for any chunking of the same source — the same
invariant the streaming preprocess pins for its own output.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.chunk_source import ChunkSource, as_chunk_source
from repro.data.log import ClickLog
from repro.obs import span
from repro.obs.metrics import get_registry
from repro.resilience.guards import (
    GuardAbort,
    IngestPolicy,
    QuarantineLedger,
    validate_chunk,
)

__all__ = ["ValidatingChunkSource", "validated_log"]


class ValidatingChunkSource(ChunkSource):
    """A :class:`ChunkSource` wrapper that validates every chunk.

    Surviving rows are renumbered densely (start indices reflect the
    *clean* stream, which is what downstream positional sampling
    consumes); the ledger records *source* indices so quarantined rows
    are attributable to the original data.

    Args:
        source: anything :func:`~repro.data.chunk_source.as_chunk_source`
            accepts.
        policy: per-field validation policy.
        ledger: quarantine destination (required when any field uses the
            ``quarantine`` policy).
    """

    def __init__(
        self,
        source,
        policy: IngestPolicy,
        ledger: QuarantineLedger | None = None,
    ) -> None:
        self.source = as_chunk_source(source)
        self.policy = policy
        self.ledger = ledger
        if policy.quarantines and ledger is None:
            raise ValueError("a quarantine policy requires a ledger")
        self.schema = self.source.schema
        self.chunk_size = self.source.chunk_size
        self._clean_total: int | None = None
        self._checked = get_registry().counter("guards.ingest.records_checked")

    @property
    def num_samples(self) -> int | None:
        if not self.policy.quarantines:
            return self.source.num_samples
        if self.source.num_samples is None:
            return None
        if self._clean_total is None:
            # One counting pass (sources are re-iterable and validation
            # is deterministic, so this agrees with later iterations).
            total = 0
            for _start, chunk in self.chunks():
                total += len(chunk)
            self._clean_total = total
        return self._clean_total

    def chunks(self) -> Iterator[tuple[int, ClickLog]]:
        clean_start = 0
        with span("guards.ingest.validate", policy=repr(self.policy)):
            for start, chunk in self.source:
                self._checked.inc(len(chunk))
                clean, _dropped = validate_chunk(chunk, start, self.policy, self.ledger)
                if len(clean):
                    yield clean_start, clean
                    clean_start += len(clean)
        if self.ledger is not None:
            self.ledger.flush()


def validated_log(
    log,
    policy: IngestPolicy,
    ledger: QuarantineLedger | None = None,
    chunk_size: int | None = None,
) -> ClickLog:
    """Validate an in-memory log and materialize the clean survivor.

    Convenience for the training CLI: corrupt records are clamped or
    quarantined per ``policy`` before the log reaches preprocessing and
    the trainers.

    Raises:
        GuardAbort: when every record was quarantined.
    """
    source = ValidatingChunkSource(
        as_chunk_source(log, chunk_size=chunk_size), policy, ledger
    )
    chunks = [chunk for _start, chunk in source]
    if not chunks:
        raise GuardAbort(
            "ingest",
            "every record was quarantined; nothing left to train on",
            ledger_path=ledger.path if ledger is not None else None,
        )
    return ClickLog(
        schema=source.schema,
        dense=np.concatenate([c.dense for c in chunks]),
        sparse={
            name: np.concatenate([c.sparse[name] for c in chunks])
            for name in source.schema.table_names
        },
        labels=np.concatenate([c.labels for c in chunks]),
    )
