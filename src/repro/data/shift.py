"""Popularity-shift day streams: same world, rotated Zipf head.

The scenario that breaks a static hot set is a *popularity* shift, not a
*concept* shift: which rows are fashionable changes, but what each row
means does not.  :func:`popularity_shift_days` generates a multi-day
click stream with exactly that separation:

- every day draws sparse ids from the same truncated Zipf *shape*, but
  from ``shift_day`` onward the rank -> id permutation is rotated — a
  different set of rows becomes the head;
- the planted label model (dense weights and per-row affinities) is
  **fixed across all days** up to a per-day base-rate centering, so
  labels stay equally learnable before and after the shift — any
  accuracy gap between arms is attributable to scheduling, not to a
  moved decision boundary.

Days are duck-typed :class:`~repro.data.synthetic.SyntheticClickLog`
instances, so everything downstream (preprocess, trainers, drift
detection, serving) consumes them unchanged, and
:func:`write_day_shards` persists one shard per day so
:class:`~repro.data.chunk_source.ShardChunkSource` replays the stream
day by day.
"""

from __future__ import annotations

import numpy as np

from repro.data.chunk_source import ShardChunkSource, UnsizedChunkSource, save_log_shards
from repro.data.schema import DatasetSchema
from repro.data.synthetic import SyntheticClickLog, SyntheticConfig
from repro.data.zipf import ZipfSampler

__all__ = ["popularity_shift_days", "write_day_shards"]

#: Seed offset separating the rotated permutation stream from the base one.
_ROTATION_SALT = 6211


def popularity_shift_days(
    schema: DatasetSchema,
    samples_per_day: int,
    num_days: int,
    shift_day: int,
    seed: int = 0,
    label_noise: float = 0.25,
    dense_scale: float = 1.0,
    affinity_scale: float = 1.6,
    dense_signal: float = 1.6,
) -> list[SyntheticClickLog]:
    """Generate a seeded day stream whose Zipf head rotates mid-run.

    Args:
        schema: dataset geometry (tables, dims, Zipf exponents).
        samples_per_day: rows per day.
        num_days: total days in the stream.
        shift_day: first day drawn from the rotated popularity head
            (``0 < shift_day < num_days`` for an actual mid-run shift;
            ``shift_day >= num_days`` yields a shift-free stream).
        seed: master seed; the whole stream is a pure function of it.
        label_noise: std-dev of Gaussian noise on the planted logit.
        dense_scale: std-dev of dense features.
        affinity_scale: std-dev of the (fixed) per-row affinities.
        dense_signal: multiplier on the (fixed) dense weight vector.

    Returns:
        One duck-typed :class:`SyntheticClickLog` per day, in order.
    """
    if samples_per_day <= 0:
        raise ValueError("samples_per_day must be positive")
    if num_days <= 0:
        raise ValueError("num_days must be positive")
    if shift_day <= 0:
        raise ValueError("shift_day must be positive (day 0 seeds calibration)")

    config = SyntheticConfig(
        num_samples=samples_per_day,
        seed=seed,
        label_noise=label_noise,
        dense_scale=dense_scale,
        affinity_scale=affinity_scale,
        dense_signal=dense_signal,
    )

    # The planted world, fixed for the whole stream: dense weights and
    # per-row affinities (same derivation as SyntheticClickLog, so the
    # Bayes accuracy matches the single-log generator's).
    w_dense = None
    if schema.num_dense:
        w_dense = np.random.default_rng(seed * 53 + 11).normal(
            0.0, dense_signal / np.sqrt(schema.num_dense), size=schema.num_dense
        )
    affinities: dict[str, np.ndarray] = {}
    for t_index, spec in enumerate(schema.tables):
        affinity_rng = np.random.default_rng(seed * 104729 + t_index)
        affinities[spec.name] = affinity_rng.normal(
            0.0, affinity_scale, size=spec.num_rows
        )

    # Two sampler families per table: the base head and the rotated head.
    # Each is STATEFUL — consecutive days continue the same draw stream,
    # so no two days repeat each other's ids.
    base: dict[str, ZipfSampler] = {}
    rotated: dict[str, ZipfSampler] = {}
    for t_index, spec in enumerate(schema.tables):
        base[spec.name] = ZipfSampler(
            num_items=spec.num_rows,
            exponent=spec.zipf_exponent,
            seed=seed * 7919 + t_index,
        )
        rotated[spec.name] = ZipfSampler(
            num_items=spec.num_rows,
            exponent=spec.zipf_exponent,
            seed=seed * 7919 + t_index + _ROTATION_SALT,
        )

    days: list[SyntheticClickLog] = []
    for day in range(num_days):
        day_rng = np.random.default_rng(seed * 9176 + 31 * day + 17)
        samplers = rotated if day >= shift_day else base
        n = samples_per_day

        dense = day_rng.normal(0.0, dense_scale, size=(n, schema.num_dense)).astype(
            np.float32
        )
        logit = np.zeros(n, dtype=np.float64)
        if w_dense is not None:
            logit += dense @ w_dense

        sparse: dict[str, np.ndarray] = {}
        for spec in schema.tables:
            ids = (
                samplers[spec.name]
                .sample(n * spec.multiplicity)
                .reshape(n, spec.multiplicity)
            )
            sparse[spec.name] = ids
            logit += affinities[spec.name][ids].mean(axis=1) / np.sqrt(
                schema.num_sparse
            )

        # Center the day's logits: the Zipf head concentrates lookups on
        # a handful of rows whose affinity mean is a nonzero random draw,
        # which would skew the base rate toward one class and let a
        # majority-class predictor sit at the Bayes accuracy.  Balanced
        # classes keep accuracy sensitive to the *learned* signal.
        logit -= logit.mean()
        logit += day_rng.normal(0.0, label_noise, size=n)
        probs = 1.0 / (1.0 + np.exp(-logit))
        labels = (day_rng.random(n) < probs).astype(np.float32)

        log = object.__new__(SyntheticClickLog)
        log.schema = schema
        log.config = config
        log.dense = dense
        log.sparse = sparse
        log.labels = labels
        log._logits = logit
        log._samplers = dict(samplers)
        days.append(log)
    return days


def write_day_shards(directory, days: list[SyntheticClickLog]) -> ShardChunkSource:
    """Persist a day stream as one shard per day.

    The returned :class:`ShardChunkSource` replays the stream with
    day-granular chunks — exactly the surface
    :meth:`~repro.core.drift.DriftDetector.check_source` and the
    popularity-shift scenario iterate.
    """
    if not days:
        raise ValueError("need at least one day")
    schema = days[0].schema

    def factory():
        start = 0
        for day in days:
            yield start, day
            start += len(day)

    source = UnsizedChunkSource(schema, factory, chunk_size=len(days[0]))
    save_log_shards(directory, source)
    return ShardChunkSource(directory)
