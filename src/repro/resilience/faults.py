"""Deterministic fault injection for chaos testing the FAE runtime.

Production recommendation trainers live with constant preemption and
flaky interconnects; a resilience layer is only trustworthy if its
recovery paths are exercised.  A :class:`FaultPlan` is a *seeded* fault
schedule — every run with the same plan sees the same faults at the same
points — that the trainers and the collective layer consult:

- **transient collective failures** — :meth:`FaultPlan.check_collective`
  raises :class:`TransientCollectiveError` with a configured probability
  (the retry policy around each collective absorbs these);
- **permanent rank death** — at the N-th collective call one rank dies
  for good (:class:`PermanentRankFailure`); the distributed trainer
  responds by shrinking the world and continuing on the survivors;
- **loader hiccups** — :meth:`FaultPlan.check_loader` models transient
  data-path stalls/read errors (:class:`LoaderHiccup`);
- **hot-replica eviction** — :meth:`FaultPlan.should_evict_hot` fires
  once at a configured training iteration, simulating GPU memory
  pressure evicting the hot bags; the trainers degrade to the cold
  (CPU-master) path instead of crashing.

Every injected fault increments a ``faults.*`` counter so chaos runs are
fully traceable through :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_registry

__all__ = [
    "FaultError",
    "FaultPlan",
    "LoaderHiccup",
    "PermanentRankFailure",
    "TransientCollectiveError",
]


class FaultError(RuntimeError):
    """Base class for injected faults."""


class TransientCollectiveError(FaultError):
    """A collective failed this attempt but may succeed on retry."""


class PermanentRankFailure(FaultError):
    """A rank died and will never come back.

    Attributes:
        rank: the dead rank's index at the time of death.
    """

    def __init__(self, rank: int, message: str | None = None) -> None:
        super().__init__(message or f"rank {rank} died (permanent failure)")
        self.rank = rank


class LoaderHiccup(FaultError):
    """A transient data-loading failure (stalled read, flaky storage)."""


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Attributes:
        seed: RNG seed; two plans with equal fields inject identically.
        collective_failure_rate: per-attempt probability that a collective
            raises :class:`TransientCollectiveError`.
        max_collective_failures: cap on injected transient collective
            failures (keeps bounded-retry runs terminating).
        rank_death: ``(rank, collective_call)`` — kill ``rank``
            permanently at that collective call count, or None.
        loader_hiccup_rate: per-fetch probability of a
            :class:`LoaderHiccup`.
        max_loader_hiccups: cap on injected loader hiccups.
        hot_eviction_at: training iteration at which the hot replicas are
            evicted (simulated GPU memory pressure), or None.
    """

    seed: int = 0
    collective_failure_rate: float = 0.0
    max_collective_failures: int = 64
    rank_death: tuple[int, int] | None = None
    loader_hiccup_rate: float = 0.0
    max_loader_hiccups: int = 64
    hot_eviction_at: int | None = None

    _rng: np.random.Generator = field(init=False, repr=False)
    _collective_calls: int = field(default=0, init=False)
    _collective_failures: int = field(default=0, init=False)
    _loader_hiccups: int = field(default=0, init=False)
    _rank_death_fired: bool = field(default=False, init=False)
    _eviction_fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.collective_failure_rate < 1.0:
            raise ValueError("collective_failure_rate must be in [0, 1)")
        if not 0.0 <= self.loader_hiccup_rate < 1.0:
            raise ValueError("loader_hiccup_rate must be in [0, 1)")
        if self.rank_death is not None:
            rank, at_call = self.rank_death
            if rank < 0 or at_call < 1:
                raise ValueError(f"invalid rank_death {self.rank_death}")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------

    def check_collective(self, op: str = "collective") -> None:
        """Consulted once per collective attempt; may raise a fault."""
        self._collective_calls += 1
        if self.rank_death is not None and not self._rank_death_fired:
            rank, at_call = self.rank_death
            if self._collective_calls >= at_call:
                self._rank_death_fired = True
                get_registry().counter("faults.rank_death.injected").inc()
                raise PermanentRankFailure(
                    rank, f"rank {rank} died during {op} (injected at call {at_call})"
                )
        if (
            self.collective_failure_rate > 0.0
            and self._collective_failures < self.max_collective_failures
            and self._rng.random() < self.collective_failure_rate
        ):
            self._collective_failures += 1
            get_registry().counter("faults.collective.injected").inc()
            raise TransientCollectiveError(
                f"injected transient failure in {op} "
                f"(#{self._collective_failures} of at most {self.max_collective_failures})"
            )

    def check_loader(self) -> None:
        """Consulted once per batch fetch attempt; may raise a hiccup."""
        if (
            self.loader_hiccup_rate > 0.0
            and self._loader_hiccups < self.max_loader_hiccups
            and self._rng.random() < self.loader_hiccup_rate
        ):
            self._loader_hiccups += 1
            get_registry().counter("faults.loader.injected").inc()
            raise LoaderHiccup(
                f"injected loader hiccup (#{self._loader_hiccups} "
                f"of at most {self.max_loader_hiccups})"
            )

    def should_evict_hot(self, iteration: int) -> bool:
        """True exactly once, when ``iteration`` reaches the eviction point."""
        if self.hot_eviction_at is None or self._eviction_fired:
            return False
        if iteration >= self.hot_eviction_at:
            self._eviction_fired = True
            get_registry().counter("faults.hot_eviction.injected").inc()
            return True
        return False

    # ------------------------------------------------------------------
    # Checkpointable state
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable injection state (for checkpoints)."""
        return {
            "rng": self._rng.bit_generator.state,
            "collective_calls": self._collective_calls,
            "collective_failures": self._collective_failures,
            "loader_hiccups": self._loader_hiccups,
            "rank_death_fired": self._rank_death_fired,
            "eviction_fired": self._eviction_fired,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore injection state captured by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]
        self._collective_calls = int(state["collective_calls"])
        self._collective_failures = int(state["collective_failures"])
        self._loader_hiccups = int(state["loader_hiccups"])
        self._rank_death_fired = bool(state["rank_death_fired"])
        self._eviction_fired = bool(state["eviction_fired"])

    # ------------------------------------------------------------------
    # CLI spec parsing
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact CLI spec.

        Comma-separated ``key=value`` entries::

            seed=7,collective=0.05,death=1@40,evict=80,loader=0.02

        Keys: ``seed``, ``collective`` (transient failure rate),
        ``max_collective``, ``loader`` (hiccup rate), ``max_loader``,
        ``death`` (``RANK@COLLECTIVE_CALL``), ``evict`` (iteration).

        Raises:
            ValueError: on an unknown key or malformed entry.
        """
        kwargs: dict = {}
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ValueError(f"fault spec entry {entry!r} is not key=value")
            key, _, value = entry.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "collective":
                    kwargs["collective_failure_rate"] = float(value)
                elif key == "max_collective":
                    kwargs["max_collective_failures"] = int(value)
                elif key == "loader":
                    kwargs["loader_hiccup_rate"] = float(value)
                elif key == "max_loader":
                    kwargs["max_loader_hiccups"] = int(value)
                elif key == "death":
                    rank_str, _, call_str = value.partition("@")
                    kwargs["rank_death"] = (int(rank_str), int(call_str))
                elif key == "evict":
                    kwargs["hot_eviction_at"] = int(value)
                else:
                    raise ValueError(f"unknown fault spec key {key!r}")
            except ValueError as exc:
                raise ValueError(f"bad fault spec entry {entry!r}: {exc}") from exc
        return cls(**kwargs)
