"""Deterministic fault injection for chaos testing the FAE runtime.

Production recommendation trainers live with constant preemption and
flaky interconnects; a resilience layer is only trustworthy if its
recovery paths are exercised.  A :class:`FaultPlan` is a *seeded* fault
schedule — every run with the same plan sees the same faults at the same
points — that the trainers and the collective layer consult:

- **transient collective failures** — :meth:`FaultPlan.check_collective`
  raises :class:`TransientCollectiveError` with a configured probability
  (the retry policy around each collective absorbs these);
- **permanent rank death** — at the N-th collective call one rank dies
  for good (:class:`PermanentRankFailure`); the distributed trainer
  responds by shrinking the world and continuing on the survivors;
- **loader hiccups** — :meth:`FaultPlan.check_loader` models transient
  data-path stalls/read errors (:class:`LoaderHiccup`);
- **hot-replica eviction** — :meth:`FaultPlan.should_evict_hot` fires
  once at a configured training iteration, simulating GPU memory
  pressure evicting the hot bags; the trainers degrade to the cold
  (CPU-master) path instead of crashing.

Data-corruption faults (exercising :mod:`repro.resilience.guards`):

- **ingest corruption** — :meth:`FaultPlan.corrupt_ingest` poisons a
  seeded subset of an in-memory log's rows (non-finite dense features,
  out-of-range sparse ids, invalid labels) *before* training, so ingest
  validation and the quarantine ledger have something to catch;
- **batch corruption** — :meth:`FaultPlan.maybe_corrupt_batch` poisons
  a fetched mini-batch's dense features with a configured probability
  (NaN or bit-flip, per ``corruption_mode``);
- **gradient corruption** — :meth:`FaultPlan.should_corrupt_gradient`
  fires once at a configured iteration; the trainer then passes its
  gradient buffers to :meth:`FaultPlan.corrupt_array`;
- **hot-row corruption** — :meth:`FaultPlan.should_corrupt_hot_row`
  fires once; the trainer poisons the same row of every hot replica
  (:meth:`FaultPlan.corrupt_row`), modeling the paper's worst case of a
  corrupted popular row replicated to every GPU.

Serving-replica faults (exercising :mod:`repro.serve.cluster`):

- **replica kill / slow / flap** — :meth:`FaultPlan.replica_alive` and
  :meth:`FaultPlan.replica_slow_multiplier` describe a per-request
  schedule of replica deaths (``kill_replica``), degraded-but-alive
  stragglers (``slow_replica``), and crash-loop flapping
  (``flap_replica``) that the cluster replay applies to the replicated
  serving tier, proving failover, hedging, and probe re-admission.

Crash faults (exercising :mod:`repro.resilience.journal` and the
crash-anywhere certification harness):

- **phase-targeted refresh crash** — :meth:`FaultPlan.maybe_crash_refresh`
  SIGKILLs the *real* process when cache turnover number ``SEG`` reaches
  phase ``PHASE`` (``crash_refresh=SEG@PHASE``);
- **checkpoint-boundary crash** — :meth:`FaultPlan.maybe_crash_checkpoint`
  SIGKILLs right after the N-th checkpoint save (``crash_checkpoint=N``);
- **mid-segment crash** — :meth:`FaultPlan.maybe_crash_step` SIGKILLs
  after training iteration N (``crash_step=N``).

These are real ``SIGKILL``s, not exceptions: no ``finally`` blocks run,
no buffers flush — exactly the failure the durability layer must absorb.

Every injected fault increments a ``faults.*`` counter so chaos runs are
fully traceable through :mod:`repro.obs`.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_registry

__all__ = [
    "FaultError",
    "FaultPlan",
    "LoaderHiccup",
    "PermanentRankFailure",
    "REFRESH_PHASES",
    "TransientCollectiveError",
    "popular_local_row",
]

#: Crash-injectable phases of one journaled cache refresh, in execution
#: order: after planning, after the journal intent record, after the
#: cache membership swap, after replica delta application, after the
#: batch repack, after the scheduler pool swap, and after the commit.
REFRESH_PHASES = ("plan", "intent", "apply", "replicas", "repack", "pools", "commit")


def popular_local_row(bag, global_ids: np.ndarray) -> int:
    """Bag-local row of the most frequent global id in ``global_ids``.

    Hot-row corruption must poison a row the model is about to *read*:
    hot ids are stored sorted by id, not by popularity, so a fixed local
    row (e.g. 0) may belong to an id that barely appears in training and
    the injected fault would never flow through a forward pass.  Callers
    pass the sparse ids of the upcoming hot batch — all of them are in
    the bag by construction — and poison the returned row, modeling the
    paper's worst case: the *popular* row, replicated to every GPU, goes
    bad.  Returns 0 when ``global_ids`` is empty.
    """
    ids = np.asarray(global_ids).ravel()
    if ids.size == 0:
        return 0
    values, counts = np.unique(ids, return_counts=True)
    target = values[int(np.argmax(counts))]
    return int(bag.to_local(np.asarray([target], dtype=np.int64))[0])


class FaultError(RuntimeError):
    """Base class for injected faults."""


class TransientCollectiveError(FaultError):
    """A collective failed this attempt but may succeed on retry."""


class PermanentRankFailure(FaultError):
    """A rank died and will never come back.

    Attributes:
        rank: the dead rank's index at the time of death.
    """

    def __init__(self, rank: int, message: str | None = None) -> None:
        super().__init__(message or f"rank {rank} died (permanent failure)")
        self.rank = rank


class LoaderHiccup(FaultError):
    """A transient data-loading failure (stalled read, flaky storage)."""


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Attributes:
        seed: RNG seed; two plans with equal fields inject identically.
        collective_failure_rate: per-attempt probability that a collective
            raises :class:`TransientCollectiveError`.
        max_collective_failures: cap on injected transient collective
            failures (keeps bounded-retry runs terminating).
        rank_death: ``(rank, collective_call)`` — kill ``rank``
            permanently at that collective call count, or None.
        loader_hiccup_rate: per-fetch probability of a
            :class:`LoaderHiccup`.
        max_loader_hiccups: cap on injected loader hiccups.
        hot_eviction_at: training iteration at which the hot replicas are
            evicted (simulated GPU memory pressure), or None.
        ingest_corruption_rate: fraction of log rows poisoned by
            :meth:`corrupt_ingest` before training.
        max_ingest_corruptions: cap on poisoned ingest rows.
        batch_corruption_rate: per-batch probability that the fetched
            mini-batch's dense features are poisoned.
        max_batch_corruptions: cap on poisoned batches.
        gradient_corruption_at: iteration at which gradient buffers are
            poisoned once, or None.
        hot_row_corruption_at: iteration at which one hot-replica row is
            poisoned (identically on every replica) once, or None.
        corruption_mode: ``"nan"`` (values become NaN) or ``"bitflip"``
            (a high exponent bit is flipped, yielding huge-but-usually-
            finite values that trip the spike detector instead of the
            NaN checks).
        replica_kill: ``(replica, request_index)`` — serving replica
            dies permanently when the cluster replay reaches that
            request, or None.  The cluster discovers the death the hard
            way (a failed dispatch → failover), as a real load balancer
            with a finite probe interval would.
        replica_slow: ``(replica, start, stop)`` — the replica's service
            cost is multiplied by ``replica_slow_factor`` over that
            request-index window (a degraded-but-alive straggler, the
            tail-latency case hedged requests exist for), or None.
        replica_slow_factor: service-cost multiplier inside the slow
            window.
        replica_flap: ``(replica, start, period)`` — from ``start`` on,
            the replica alternates ``period`` requests down / ``period``
            requests up (crash-loop or partition flapping); the cluster's
            health probe must re-admit it on each recovery, or None.
        worker_kill_task: elastic-pool task index whose first lease
            SIGKILLs its worker mid-task (real process death), or None.
        worker_hang_task: task index whose first lease wedges its worker
            — heartbeats stop, the task never returns — so the
            supervisor's heartbeat-miss budget must catch it.  None
            disables.
        worker_straggle_task: task index whose first lease sleeps
            ``worker_straggle_seconds`` before completing (a slow-start
            straggler for speculation to beat), or None.
        worker_straggle_seconds: straggler sleep length.
        crash_refresh: ``(refresh_index, phase)`` — SIGKILL the process
            when that cache turnover reaches that phase (one of
            :data:`REFRESH_PHASES`), or None.
        crash_checkpoint: SIGKILL the process immediately after the N-th
            (0-based) checkpoint save of this run, or None.
        crash_step: SIGKILL the process right after training iteration N
            completes (a mid-segment kill), or None.
    """

    seed: int = 0
    collective_failure_rate: float = 0.0
    max_collective_failures: int = 64
    rank_death: tuple[int, int] | None = None
    loader_hiccup_rate: float = 0.0
    max_loader_hiccups: int = 64
    hot_eviction_at: int | None = None
    ingest_corruption_rate: float = 0.0
    max_ingest_corruptions: int = 64
    batch_corruption_rate: float = 0.0
    max_batch_corruptions: int = 8
    gradient_corruption_at: int | None = None
    hot_row_corruption_at: int | None = None
    corruption_mode: str = "nan"
    replica_kill: tuple[int, int] | None = None
    replica_slow: tuple[int, int, int] | None = None
    replica_slow_factor: float = 20.0
    replica_flap: tuple[int, int, int] | None = None
    worker_kill_task: int | None = None
    worker_hang_task: int | None = None
    worker_straggle_task: int | None = None
    worker_straggle_seconds: float = 0.5
    crash_refresh: tuple[int, str] | None = None
    crash_checkpoint: int | None = None
    crash_step: int | None = None

    _rng: np.random.Generator = field(init=False, repr=False)
    _checkpoint_saves: int = field(default=0, init=False)
    _collective_calls: int = field(default=0, init=False)
    _collective_failures: int = field(default=0, init=False)
    _loader_hiccups: int = field(default=0, init=False)
    _rank_death_fired: bool = field(default=False, init=False)
    _eviction_fired: bool = field(default=False, init=False)
    _batch_corruptions: int = field(default=0, init=False)
    _gradient_corruption_fired: bool = field(default=False, init=False)
    _hot_row_corruption_fired: bool = field(default=False, init=False)
    _replica_kill_fired: bool = field(default=False, init=False)
    _replica_slow_fired: bool = field(default=False, init=False)
    _replica_flap_fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.collective_failure_rate < 1.0:
            raise ValueError("collective_failure_rate must be in [0, 1)")
        if not 0.0 <= self.loader_hiccup_rate < 1.0:
            raise ValueError("loader_hiccup_rate must be in [0, 1)")
        if not 0.0 <= self.ingest_corruption_rate < 1.0:
            raise ValueError("ingest_corruption_rate must be in [0, 1)")
        if not 0.0 <= self.batch_corruption_rate < 1.0:
            raise ValueError("batch_corruption_rate must be in [0, 1)")
        if self.corruption_mode not in ("nan", "bitflip"):
            raise ValueError(
                f"corruption_mode must be 'nan' or 'bitflip', got {self.corruption_mode!r}"
            )
        if self.rank_death is not None:
            rank, at_call = self.rank_death
            if rank < 0 or at_call < 1:
                raise ValueError(f"invalid rank_death {self.rank_death}")
        if self.replica_kill is not None:
            replica, at_request = self.replica_kill
            if replica < 0 or at_request < 0:
                raise ValueError(f"invalid replica_kill {self.replica_kill}")
        if self.replica_slow is not None:
            replica, start, stop = self.replica_slow
            if replica < 0 or start < 0 or stop <= start:
                raise ValueError(f"invalid replica_slow {self.replica_slow}")
        if self.replica_slow_factor <= 1.0:
            raise ValueError("replica_slow_factor must be > 1")
        if self.replica_flap is not None:
            replica, start, period = self.replica_flap
            if replica < 0 or start < 0 or period < 1:
                raise ValueError(f"invalid replica_flap {self.replica_flap}")
        for name in ("worker_kill_task", "worker_hang_task", "worker_straggle_task"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.worker_straggle_seconds <= 0:
            raise ValueError("worker_straggle_seconds must be positive")
        if self.crash_refresh is not None:
            refresh_index, phase = self.crash_refresh
            if refresh_index < 0 or phase not in REFRESH_PHASES:
                raise ValueError(
                    f"invalid crash_refresh {self.crash_refresh}: phase must "
                    f"be one of {REFRESH_PHASES}"
                )
        if self.crash_checkpoint is not None and self.crash_checkpoint < 0:
            raise ValueError("crash_checkpoint must be >= 0")
        if self.crash_step is not None and self.crash_step < 1:
            raise ValueError("crash_step must be >= 1")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------

    def check_collective(self, op: str = "collective") -> None:
        """Consulted once per collective attempt; may raise a fault."""
        self._collective_calls += 1
        if self.rank_death is not None and not self._rank_death_fired:
            rank, at_call = self.rank_death
            if self._collective_calls >= at_call:
                self._rank_death_fired = True
                get_registry().counter("faults.rank_death.injected").inc()
                raise PermanentRankFailure(
                    rank, f"rank {rank} died during {op} (injected at call {at_call})"
                )
        if (
            self.collective_failure_rate > 0.0
            and self._collective_failures < self.max_collective_failures
            and self._rng.random() < self.collective_failure_rate
        ):
            self._collective_failures += 1
            get_registry().counter("faults.collective.injected").inc()
            raise TransientCollectiveError(
                f"injected transient failure in {op} "
                f"(#{self._collective_failures} of at most {self.max_collective_failures})"
            )

    def check_loader(self) -> None:
        """Consulted once per batch fetch attempt; may raise a hiccup."""
        if (
            self.loader_hiccup_rate > 0.0
            and self._loader_hiccups < self.max_loader_hiccups
            and self._rng.random() < self.loader_hiccup_rate
        ):
            self._loader_hiccups += 1
            get_registry().counter("faults.loader.injected").inc()
            raise LoaderHiccup(
                f"injected loader hiccup (#{self._loader_hiccups} "
                f"of at most {self.max_loader_hiccups})"
            )

    def should_evict_hot(self, iteration: int) -> bool:
        """True exactly once, when ``iteration`` reaches the eviction point."""
        if self.hot_eviction_at is None or self._eviction_fired:
            return False
        if iteration >= self.hot_eviction_at:
            self._eviction_fired = True
            get_registry().counter("faults.hot_eviction.injected").inc()
            return True
        return False

    # ------------------------------------------------------------------
    # Data corruption (chaos for repro.resilience.guards)
    # ------------------------------------------------------------------

    def _poison(self, values: np.ndarray) -> np.ndarray:
        """Corrupt ``values`` per ``corruption_mode``; returns the result."""
        if self.corruption_mode == "nan":
            return np.full_like(values, np.nan)
        # Bit-flip: XOR the high exponent bit of each float32, turning
        # ordinary magnitudes into astronomically large (finite or inf)
        # ones — the classic silent-memory-corruption signature.
        bits = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
        return (bits ^ np.uint32(1 << 30)).view(np.float32).astype(values.dtype)

    def corrupt_array(self, array: np.ndarray, k: int = 4) -> None:
        """Poison up to ``k`` seeded positions of ``array`` in place."""
        size = array.size
        if size == 0:
            return
        positions = self._rng.integers(0, size, size=min(k, size))
        array.flat[positions] = self._poison(np.asarray(array.flat[positions]))

    def corrupt_row(self, matrix: np.ndarray, row: int = 0) -> None:
        """Poison one full row of a 2-D weight matrix in place.

        Callers apply this to the *same* row of every hot replica so the
        replicas stay bit-equal — the failure modeled is a corrupted
        popular row that FAE has replicated everywhere.
        """
        matrix[row, :] = self._poison(matrix[row, :])

    def corrupt_ingest(self, log) -> dict[int, str]:
        """Poison a seeded subset of ``log``'s rows in place, pre-training.

        Row selection uses a dedicated RNG substream derived from
        ``seed`` (not the shared fault stream), so the poisoned set is
        identical no matter how the log is later chunked, and the other
        fault draws are unperturbed.  Each poisoned row gets one of the
        three corruption kinds, round-robin: non-finite dense features,
        an out-of-range sparse id, or an invalid label.

        Returns:
            Mapping of poisoned row index -> corruption kind
            (``dense`` | ``sparse`` | ``label``).
        """
        if self.ingest_corruption_rate <= 0.0 or len(log) == 0:
            return {}
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 0xDA7A]))
        draws = rng.random(len(log))
        rows = np.flatnonzero(draws < self.ingest_corruption_rate)
        rows = rows[: self.max_ingest_corruptions]
        tables = sorted(log.sparse)
        kinds: dict[int, str] = {}
        for position, index in enumerate(rows.tolist()):
            kind = ("dense", "sparse", "label")[position % 3]
            if kind == "dense":
                log.dense[index, 0] = (
                    np.nan if self.corruption_mode == "nan" else np.inf
                )
            elif kind == "sparse":
                table = tables[position % len(tables)]
                log.sparse[table][index, 0] = log.schema.table(table).num_rows + 7
            else:
                log.labels[index] = np.nan if self.corruption_mode == "nan" else 3.0
            kinds[index] = kind
        if kinds:
            get_registry().counter("faults.ingest_corruption.injected").inc(len(kinds))
        return kinds

    def maybe_corrupt_batch(self, batch):
        """Return ``batch``, possibly with poisoned dense features.

        Fires with ``batch_corruption_rate`` per call, up to
        ``max_batch_corruptions`` times.  The batch arrays are copied
        before poisoning so the source log stays clean.
        """
        if (
            self.batch_corruption_rate <= 0.0
            or self._batch_corruptions >= self.max_batch_corruptions
            or self._rng.random() >= self.batch_corruption_rate
        ):
            return batch
        self._batch_corruptions += 1
        get_registry().counter("faults.batch_corruption.injected").inc()
        dense = batch.dense.copy()
        row = int(self._rng.integers(0, dense.shape[0])) if dense.shape[0] else 0
        dense[row, :] = self._poison(dense[row, :])
        return type(batch)(
            dense=dense,
            sparse=batch.sparse,
            labels=batch.labels,
            indices=batch.indices,
            hot=batch.hot,
        )

    def should_corrupt_gradient(self, iteration: int) -> bool:
        """True exactly once, at the configured gradient-poison point."""
        if self.gradient_corruption_at is None or self._gradient_corruption_fired:
            return False
        if iteration >= self.gradient_corruption_at:
            self._gradient_corruption_fired = True
            get_registry().counter("faults.gradient_corruption.injected").inc()
            return True
        return False

    def should_corrupt_hot_row(self, iteration: int) -> bool:
        """True exactly once, at the configured hot-row-poison point."""
        if self.hot_row_corruption_at is None or self._hot_row_corruption_fired:
            return False
        if iteration >= self.hot_row_corruption_at:
            self._hot_row_corruption_fired = True
            get_registry().counter("faults.hot_row_corruption.injected").inc()
            return True
        return False

    # ------------------------------------------------------------------
    # Crash faults (exercising repro.resilience.journal / certify)
    # ------------------------------------------------------------------

    @staticmethod
    def _sigkill() -> None:
        # A real, unhandled kill: the process dies here, mid-everything.
        os.kill(os.getpid(), signal.SIGKILL)

    def maybe_crash_refresh(self, refresh_index: int, phase: str) -> None:
        """SIGKILL when cache turnover ``refresh_index`` reaches ``phase``.

        The trainers call this at every phase boundary of every journaled
        refresh; the plan kills the process at exactly one of them.
        """
        if self.crash_refresh is None:
            return
        target_index, target_phase = self.crash_refresh
        if refresh_index == target_index and phase == target_phase:
            get_registry().counter("faults.crash_refresh.injected").inc()
            self._sigkill()

    def maybe_crash_checkpoint(self) -> None:
        """SIGKILL immediately after the configured checkpoint save."""
        save_index = self._checkpoint_saves
        self._checkpoint_saves += 1
        if self.crash_checkpoint is not None and save_index == self.crash_checkpoint:
            get_registry().counter("faults.crash_checkpoint.injected").inc()
            self._sigkill()

    def maybe_crash_step(self, iteration: int) -> None:
        """SIGKILL right after training iteration ``crash_step``."""
        if self.crash_step is not None and iteration == self.crash_step:
            get_registry().counter("faults.crash_step.injected").inc()
            self._sigkill()

    # ------------------------------------------------------------------
    # Serving-replica faults (exercising repro.serve.cluster)
    # ------------------------------------------------------------------

    def replica_alive(self, replica: int, request_index: int) -> bool:
        """Whether serving replica ``replica`` is up at ``request_index``.

        A pure function of the plan and the request index (no RNG draw),
        so the cluster replay can consult it for every replica on every
        request without perturbing the other fault streams.
        """
        if self.replica_kill is not None:
            target, at_request = self.replica_kill
            if replica == target and request_index >= at_request:
                if not self._replica_kill_fired:
                    self._replica_kill_fired = True
                    get_registry().counter("faults.replica_kill.injected").inc()
                return False
        if self.replica_flap is not None:
            target, start, period = self.replica_flap
            if replica == target and request_index >= start:
                # Down for `period` requests, up for `period`, repeating.
                if ((request_index - start) // period) % 2 == 0:
                    if not self._replica_flap_fired:
                        self._replica_flap_fired = True
                        get_registry().counter("faults.replica_flap.injected").inc()
                    return False
        return True

    def replica_slow_multiplier(self, replica: int, request_index: int) -> float:
        """Service-cost multiplier for ``replica`` at ``request_index``."""
        if self.replica_slow is not None:
            target, start, stop = self.replica_slow
            if replica == target and start <= request_index < stop:
                if not self._replica_slow_fired:
                    self._replica_slow_fired = True
                    get_registry().counter("faults.replica_slow.injected").inc()
                return self.replica_slow_factor
        return 1.0

    # ------------------------------------------------------------------
    # Real-process faults (exercising repro.resilience.elastic)
    # ------------------------------------------------------------------

    def worker_faults(self) -> dict | None:
        """Picklable worker-side fault spec for the elastic pool.

        Workers consult the spec on each lease (faults fire on lease 0
        only, so re-dispatched work always completes).  Returns None when
        no real-process faults are configured.
        """
        spec: dict = {}
        if self.worker_kill_task is not None:
            spec["kill_task"] = self.worker_kill_task
        if self.worker_hang_task is not None:
            spec["hang_task"] = self.worker_hang_task
        if self.worker_straggle_task is not None:
            spec["straggle_task"] = self.worker_straggle_task
            spec["straggle_seconds"] = self.worker_straggle_seconds
        return spec or None

    # ------------------------------------------------------------------
    # Checkpointable state
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable injection state (for checkpoints)."""
        return {
            "rng": self._rng.bit_generator.state,
            "collective_calls": self._collective_calls,
            "collective_failures": self._collective_failures,
            "loader_hiccups": self._loader_hiccups,
            "rank_death_fired": self._rank_death_fired,
            "eviction_fired": self._eviction_fired,
            "batch_corruptions": self._batch_corruptions,
            "gradient_corruption_fired": self._gradient_corruption_fired,
            "hot_row_corruption_fired": self._hot_row_corruption_fired,
            "replica_kill_fired": self._replica_kill_fired,
            "replica_slow_fired": self._replica_slow_fired,
            "replica_flap_fired": self._replica_flap_fired,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore injection state captured by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]
        self._collective_calls = int(state["collective_calls"])
        self._collective_failures = int(state["collective_failures"])
        self._loader_hiccups = int(state["loader_hiccups"])
        self._rank_death_fired = bool(state["rank_death_fired"])
        self._eviction_fired = bool(state["eviction_fired"])
        self._batch_corruptions = int(state.get("batch_corruptions", 0))
        self._gradient_corruption_fired = bool(
            state.get("gradient_corruption_fired", False)
        )
        self._hot_row_corruption_fired = bool(
            state.get("hot_row_corruption_fired", False)
        )
        self._replica_kill_fired = bool(state.get("replica_kill_fired", False))
        self._replica_slow_fired = bool(state.get("replica_slow_fired", False))
        self._replica_flap_fired = bool(state.get("replica_flap_fired", False))

    # ------------------------------------------------------------------
    # CLI spec parsing
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact CLI spec.

        Comma-separated ``key=value`` entries::

            seed=7,collective=0.05,death=1@40,evict=80,loader=0.02
            seed=7,ingest=0.01,bad_batch=0.05,bad_row=40,corrupt=nan
            seed=7,kill_task=1,straggle_task=3,straggle_secs=0.8
            seed=7,kill_replica=1@120,slow_replica=2@40:160,flap_replica=0@30/25
            crash_refresh=0@repack
            crash_checkpoint=1
            crash_step=12

        Keys: ``seed``, ``collective`` (transient failure rate),
        ``max_collective``, ``loader`` (hiccup rate), ``max_loader``,
        ``death`` (``RANK@COLLECTIVE_CALL``), ``evict`` (iteration),
        ``ingest`` (row corruption rate), ``max_ingest``, ``bad_batch``
        (batch corruption rate), ``max_bad_batch``, ``bad_grad``
        (iteration), ``bad_row`` (iteration), ``corrupt``
        (``nan`` | ``bitflip``), ``kill_task`` / ``hang_task`` /
        ``straggle_task`` (elastic-pool task index), ``straggle_secs``,
        ``kill_replica`` (``REPLICA@REQUEST``), ``slow_replica``
        (``REPLICA@START:STOP``), ``slow_replica_factor``,
        ``flap_replica`` (``REPLICA@START/PERIOD``), ``crash_refresh``
        (``SEG@PHASE``, phase in :data:`REFRESH_PHASES`),
        ``crash_checkpoint`` (0-based save index), ``crash_step``
        (training iteration).

        Raises:
            ValueError: on an unknown key or malformed entry.
        """
        kwargs: dict = {}
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ValueError(f"fault spec entry {entry!r} is not key=value")
            key, _, value = entry.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "collective":
                    kwargs["collective_failure_rate"] = float(value)
                elif key == "max_collective":
                    kwargs["max_collective_failures"] = int(value)
                elif key == "loader":
                    kwargs["loader_hiccup_rate"] = float(value)
                elif key == "max_loader":
                    kwargs["max_loader_hiccups"] = int(value)
                elif key == "death":
                    rank_str, _, call_str = value.partition("@")
                    kwargs["rank_death"] = (int(rank_str), int(call_str))
                elif key == "evict":
                    kwargs["hot_eviction_at"] = int(value)
                elif key == "ingest":
                    kwargs["ingest_corruption_rate"] = float(value)
                elif key == "max_ingest":
                    kwargs["max_ingest_corruptions"] = int(value)
                elif key == "bad_batch":
                    kwargs["batch_corruption_rate"] = float(value)
                elif key == "max_bad_batch":
                    kwargs["max_batch_corruptions"] = int(value)
                elif key == "bad_grad":
                    kwargs["gradient_corruption_at"] = int(value)
                elif key == "bad_row":
                    kwargs["hot_row_corruption_at"] = int(value)
                elif key == "corrupt":
                    kwargs["corruption_mode"] = value
                elif key == "kill_task":
                    kwargs["worker_kill_task"] = int(value)
                elif key == "hang_task":
                    kwargs["worker_hang_task"] = int(value)
                elif key == "straggle_task":
                    kwargs["worker_straggle_task"] = int(value)
                elif key == "straggle_secs":
                    kwargs["worker_straggle_seconds"] = float(value)
                elif key == "kill_replica":
                    replica_str, _, request_str = value.partition("@")
                    kwargs["replica_kill"] = (int(replica_str), int(request_str))
                elif key == "slow_replica":
                    replica_str, _, window = value.partition("@")
                    start_str, _, stop_str = window.partition(":")
                    kwargs["replica_slow"] = (
                        int(replica_str), int(start_str), int(stop_str)
                    )
                elif key == "slow_replica_factor":
                    kwargs["replica_slow_factor"] = float(value)
                elif key == "flap_replica":
                    replica_str, _, window = value.partition("@")
                    start_str, _, period_str = window.partition("/")
                    kwargs["replica_flap"] = (
                        int(replica_str), int(start_str), int(period_str)
                    )
                elif key == "crash_refresh":
                    index_str, _, phase = value.partition("@")
                    kwargs["crash_refresh"] = (int(index_str), phase.strip())
                elif key == "crash_checkpoint":
                    kwargs["crash_checkpoint"] = int(value)
                elif key == "crash_step":
                    kwargs["crash_step"] = int(value)
                else:
                    raise ValueError(f"unknown fault spec key {key!r}")
            except ValueError as exc:
                raise ValueError(f"bad fault spec entry {entry!r}: {exc}") from exc
        return cls(**kwargs)
