"""Write-ahead journal for hot-cache refresh transactions.

A cache refresh at a segment boundary mutates four things that must
agree: cache membership, GPU replica bags, the repacked batch streams,
and the scheduler's pools.  A crash between any two of those leaves the
run inconsistent.  The journal makes the refresh a transaction:

1. **intent** — before anything mutates, the planned delta (promoted /
   demoted ids per table), the cache's logical tick, and the target
   generation are written to ``refresh.journal`` via the fsynced
   atomic-write machinery;
2. the refresh mutations run;
3. **commit** — after ``repack_pools`` the record is rewritten with
   ``status="committed"``.

Recovery does not replay the journal.  Checkpoints are taken *before*
the refresh and :meth:`EmbeddingHotCache.plan_rebalance` is a pure
function of cache state, so the resumed trainer simply re-plans and
rolls the refresh forward; the journal's pending intent is then used to
*verify* that the re-derived delta matches what the crashed process was
about to do (any mismatch means nondeterminism and is a hard error).
One record suffices — a refresh only begins after the previous one
committed, and a pending intent is superseded exactly when the re-plan
that matches it commits.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.obs.metrics import get_registry
from repro.resilience.atomic import atomic_write_text

__all__ = ["JOURNAL_VERSION", "JournalError", "RefreshJournal"]

#: Schema version of ``refresh.journal`` records.
JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The refresh journal contradicts the trainer's state."""


def _delta_to_json(delta) -> dict:
    """CacheDelta -> JSON-safe sorted id lists (deterministic bytes)."""
    return {
        "promoted": {
            name: [int(i) for i in ids]
            for name, ids in sorted(delta.promoted.items())
            if ids.size
        },
        "demoted": {
            name: [int(i) for i in ids]
            for name, ids in sorted(delta.demoted.items())
            if ids.size
        },
    }


class RefreshJournal:
    """One-record write-ahead journal under a checkpoint directory.

    Args:
        directory: the checkpoint directory; the journal lives next to
            the checkpoints it guards, as ``refresh.journal``.
    """

    FILENAME = "refresh.journal"

    def __init__(self, directory: str | Path) -> None:
        self.path = Path(directory) / self.FILENAME

    # ------------------------------------------------------------------
    # Transaction protocol
    # ------------------------------------------------------------------

    def begin(self, *, refresh_index: int, tick: int, generation: int, delta) -> dict:
        """Durably record the intent to apply ``delta`` — call *before*
        any cache/replica/scheduler mutation.
        """
        record = {
            "version": JOURNAL_VERSION,
            "status": "intent",
            "refresh_index": int(refresh_index),
            "tick": int(tick),
            "generation": int(generation),
            "delta": _delta_to_json(delta),
        }
        atomic_write_text(self.path, json.dumps(record, sort_keys=True) + "\n")
        get_registry().counter("resilience.journal.begins").inc()
        return record

    def commit(self) -> None:
        """Mark the in-flight refresh complete — call after ``repack_pools``.

        Raises:
            JournalError: if there is no intent record to commit.
        """
        record = self.read()
        if record is None or record.get("status") != "intent":
            raise JournalError(
                f"journal {self.path} has no pending intent to commit"
            )
        record["status"] = "committed"
        atomic_write_text(self.path, json.dumps(record, sort_keys=True) + "\n")
        get_registry().counter("resilience.journal.commits").inc()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def read(self) -> dict | None:
        """The journal record, or None when absent.

        Raises:
            JournalError: on an unparseable or wrong-version record — the
                file is written atomically, so garbage is not a torn
                write but real corruption worth surfacing.
        """
        if not self.path.exists():
            return None
        text = self.path.read_text(encoding="utf-8")
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise JournalError(f"journal {self.path} is unreadable: {exc}") from exc
        if record.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal {self.path} has version {record.get('version')}, "
                f"expected {JOURNAL_VERSION}"
            )
        return record

    def pending(self) -> dict | None:
        """The uncommitted intent record, or None."""
        record = self.read()
        if record is not None and record.get("status") == "intent":
            return record
        return None

    def matches(self, record: dict, *, tick: int, delta) -> bool:
        """Whether a re-derived plan reproduces a journaled intent."""
        return int(record.get("tick", -1)) == int(tick) and record.get(
            "delta"
        ) == _delta_to_json(delta)

    def verify_rollforward(self, *, tick: int, delta) -> None:
        """Check a re-planned refresh against the pending intent, if any.

        A pending intent drawn at the same logical tick must describe the
        same delta the resumed trainer just re-derived; anything else
        means the "deterministic" re-plan was not deterministic, and
        rolling it forward would silently diverge from the crashed run.

        Raises:
            JournalError: on a delta mismatch at the intent's tick.
        """
        record = self.pending()
        if record is None or int(record.get("tick", -1)) != int(tick):
            return
        if not self.matches(record, tick=tick, delta=delta):
            raise JournalError(
                f"journal {self.path} intent at tick {tick} does not match "
                "the re-derived refresh delta — refusing to roll forward a "
                "nondeterministic refresh"
            )
        get_registry().counter("resilience.journal.rollforwards").inc()


def _as_delta_arrays(mapping: dict) -> dict[str, np.ndarray]:
    """JSON id lists -> sorted int64 arrays (for tests/tools)."""
    return {
        name: np.asarray(ids, dtype=np.int64) for name, ids in mapping.items()
    }
