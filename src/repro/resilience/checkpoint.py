"""Atomic, checksummed training checkpoints.

A checkpoint captures everything a trainer needs to continue a run as if
it had never stopped: model parameters (dense layers + embedding
masters), the :class:`~repro.core.scheduler.ShuffleScheduler`'s rate and
adaptation state, the epoch/segment cursor, optimizer state, and the
fault plan's RNG state.  The format is one ``.npz`` archive per
checkpoint plus a ``.sha256`` sidecar:

- the archive is written with :func:`~repro.resilience.atomic.atomic_write`
  (temp file + ``os.replace``) so a crash mid-write never leaves a
  truncated checkpoint under the final name;
- the sidecar holds the archive's SHA-256; :func:`load_checkpoint`
  verifies it and raises :class:`CheckpointCorruptionError` (naming the
  file) on any mismatch, truncation, or unreadable archive;
- :func:`latest_checkpoint` scans a directory newest-first and skips
  corrupt entries, so resume falls back to the last *good* snapshot.

Checkpoints are taken at segment boundaries with the CPU master tables
authoritative (hot rows freshly synced), which is why a resumed run's
loss trajectory reproduces the uninterrupted run bit-for-bit — see
``tests/test_resilience.py``.
"""

from __future__ import annotations

import hashlib
import io
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.metrics import get_registry
from repro.resilience.atomic import atomic_write, atomic_write_text

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointManager",
    "TrainerCheckpoint",
    "capture_training_state",
    "latest_checkpoint",
    "load_checkpoint",
    "read_checkpoint_meta",
    "restore_training_state",
    "save_checkpoint",
    "verify_checkpoint",
]

#: v1: params + scheduler + cursors.  v2 (PR 10): adds durable cache /
#: drift / repacked-dataset state so the exact-resume invariant holds
#: under the online hot cache.  v1 archives still load (cache state
#: absent -> cold start with a warning).
CHECKPOINT_VERSION = 2

_SUPPORTED_VERSIONS = (1, 2)

_DENSE_PREFIX = "param.dense."
_TABLE_PREFIX = "param.table."
_OPT_PREFIX = "opt."
_STATE_PREFIX = "state."

_NDARRAY_MARKER = "__ndarray__"


class CheckpointError(RuntimeError):
    """A checkpoint could not be saved, found, or restored."""


class CheckpointCorruptionError(CheckpointError):
    """A checkpoint file failed its integrity check."""


@dataclass
class TrainerCheckpoint:
    """A full training snapshot at a segment boundary.

    Attributes:
        step: global iteration count at capture time.
        epoch: epoch index being trained when captured.
        cursors: per-pool batch cursors within the epoch.
        scheduler_state: :meth:`ShuffleScheduler.state_dict` output.
        params: parameter arrays — ``dense.<index>`` entries in
            ``dense_parameters()`` order plus ``table.<name>`` masters.
        optimizer_state: optimizer tensors (empty for stateless SGD).
        rng_state: fault-plan / RNG state (JSON-serializable), or None.
        degraded: whether the run had degraded to cold-only execution.
        last_train_loss: trailing train-loss carry for history fidelity.
        last_train_accuracy: trailing train-accuracy carry.
        metadata: free-form JSON-serializable extras.
        cache_state: :meth:`EmbeddingHotCache.state_dict` output, or None
            when the run has no online cache (or the archive predates v2).
        dataset_state: :meth:`FAEDataset.state_dict` of the *repacked*
            dataset, or None while the run still trains the original
            packing (cache turnover rewrites batch geometry mid-epoch,
            so cursors/scheduler state are meaningless without it).
        drift_state: :meth:`DriftDetector.state_dict` output, or None.
    """

    step: int
    epoch: int
    cursors: dict[str, int]
    scheduler_state: dict
    params: dict[str, np.ndarray]
    optimizer_state: dict[str, np.ndarray] = field(default_factory=dict)
    rng_state: dict | None = None
    degraded: bool = False
    last_train_loss: float = 0.0
    last_train_accuracy: float = 0.0
    metadata: dict = field(default_factory=dict)
    cache_state: dict | None = None
    dataset_state: dict | None = None
    drift_state: dict | None = None


# ----------------------------------------------------------------------
# Model-state capture/restore
# ----------------------------------------------------------------------


def capture_training_state(dense_parameters, tables) -> dict[str, np.ndarray]:
    """Copy dense parameters and master-table weights into a state dict.

    Args:
        dense_parameters: the model's ``dense_parameters()`` list.
        tables: master :class:`~repro.nn.embedding.EmbeddingTable` map.
    """
    state: dict[str, np.ndarray] = {}
    for index, param in enumerate(dense_parameters):
        state[f"dense.{index:04d}"] = param.value.copy()
    for name, table in tables.items():
        state[f"table.{name}"] = table.weight.value.copy()
    return state


def restore_training_state(dense_parameters, tables, state: dict[str, np.ndarray]) -> None:
    """Write a captured state dict back into live parameters, in place.

    Raises:
        CheckpointError: on a missing entry or shape mismatch — the
            checkpoint belongs to a different model.
    """

    def _restore(key: str, target) -> None:
        if key not in state:
            raise CheckpointError(f"checkpoint is missing parameter {key!r}")
        saved = state[key]
        if saved.shape != target.value.shape:
            raise CheckpointError(
                f"checkpoint parameter {key!r} has shape {saved.shape}, "
                f"model expects {target.value.shape}"
            )
        target.value[...] = saved

    for index, param in enumerate(dense_parameters):
        _restore(f"dense.{index:04d}", param)
    for name, table in tables.items():
        _restore(f"table.{name}", table.weight)


# ----------------------------------------------------------------------
# Nested-state packing
# ----------------------------------------------------------------------
#
# state_dict trees (cache / drift / dataset) mix JSON scalars with numpy
# arrays.  Arrays cannot ride in the meta JSON and npz archives are flat,
# so the tree is split: every ndarray leaf moves into the archive under a
# generated "state.<path>" key and leaves a {"__ndarray__": key} marker
# behind; the marker-bearing skeleton goes into the meta JSON and is
# re-inflated on load.


def _pack_tree(tree, prefix: str, arrays: dict[str, np.ndarray]):
    if isinstance(tree, np.ndarray):
        arrays[prefix] = tree
        return {_NDARRAY_MARKER: prefix}
    if isinstance(tree, dict):
        if _NDARRAY_MARKER in tree:
            raise CheckpointError(
                f"state dict key {_NDARRAY_MARKER!r} is reserved for array markers"
            )
        return {
            key: _pack_tree(value, f"{prefix}.{key}", arrays)
            for key, value in tree.items()
        }
    if isinstance(tree, (list, tuple)):
        return [
            _pack_tree(value, f"{prefix}.{index}", arrays)
            for index, value in enumerate(tree)
        ]
    if isinstance(tree, (np.integer, np.floating, np.bool_)):
        return tree.item()
    return tree


def _unpack_tree(tree, arrays: dict[str, np.ndarray]):
    if isinstance(tree, dict):
        if set(tree) == {_NDARRAY_MARKER}:
            return arrays[tree[_NDARRAY_MARKER]]
        return {key: _unpack_tree(value, arrays) for key, value in tree.items()}
    if isinstance(tree, list):
        return [_unpack_tree(value, arrays) for value in tree]
    return tree


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


def _checkpoint_name(step: int) -> str:
    return f"ckpt-{step:08d}.npz"


def _sidecar(path: Path) -> Path:
    return path.with_name(path.name + ".sha256")


def save_checkpoint(directory: str | Path, ckpt: TrainerCheckpoint) -> Path:
    """Atomically persist ``ckpt`` under ``directory``; returns its path.

    The archive is materialized in memory, hashed, written via temp file
    + ``os.replace``, and only then does its checksum sidecar appear —
    a checkpoint without a valid sidecar is treated as corrupt, so no
    interleaving of crashes can yield a resumable-but-wrong snapshot.
    """
    directory = Path(directory)
    meta = {
        "version": CHECKPOINT_VERSION,
        "step": ckpt.step,
        "epoch": ckpt.epoch,
        "cursors": ckpt.cursors,
        "scheduler_state": ckpt.scheduler_state,
        "rng_state": ckpt.rng_state,
        "degraded": ckpt.degraded,
        "last_train_loss": ckpt.last_train_loss,
        "last_train_accuracy": ckpt.last_train_accuracy,
        "metadata": ckpt.metadata,
    }
    state_arrays: dict[str, np.ndarray] = {}
    meta["extra_state"] = _pack_tree(
        {
            "cache": ckpt.cache_state,
            "dataset": ckpt.dataset_state,
            "drift": ckpt.drift_state,
        },
        _STATE_PREFIX[:-1],
        state_arrays,
    )
    payload: dict[str, np.ndarray] = {"meta_json": np.array(json.dumps(meta))}
    payload.update(state_arrays)
    for key, value in ckpt.params.items():
        if key.startswith("dense."):
            payload[_DENSE_PREFIX + key[len("dense."):]] = value
        elif key.startswith("table."):
            payload[_TABLE_PREFIX + key[len("table."):]] = value
        else:
            raise CheckpointError(f"unrecognized parameter key {key!r}")
    for key, value in ckpt.optimizer_state.items():
        payload[_OPT_PREFIX + key] = value

    buffer = io.BytesIO()
    np.savez_compressed(buffer, **payload)
    blob = buffer.getvalue()
    digest = hashlib.sha256(blob).hexdigest()

    path = directory / _checkpoint_name(ckpt.step)
    with atomic_write(path) as tmp:
        tmp.write_bytes(blob)
    atomic_write_text(_sidecar(path), f"{digest}  {path.name}\n")

    registry = get_registry()
    registry.counter("resilience.checkpoint.saves").inc()
    registry.counter("resilience.checkpoint.bytes").inc(len(blob))
    return path


def _read_verified(path: Path) -> bytes:
    """Read a checkpoint's bytes, enforcing the checksum sidecar."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint {path} does not exist")
    sidecar = _sidecar(path)
    if not sidecar.exists():
        raise CheckpointCorruptionError(
            f"checkpoint {path} has no {sidecar.name} sidecar — "
            "treating it as an interrupted write"
        )
    expected = sidecar.read_text(encoding="utf-8").split()[0]
    blob = path.read_bytes()
    actual = hashlib.sha256(blob).hexdigest()
    if actual != expected:
        raise CheckpointCorruptionError(
            f"checkpoint {path} failed its integrity check "
            f"(sha256 {actual[:12]}… != recorded {expected[:12]}…)"
        )
    return blob


def verify_checkpoint(path: str | Path) -> bool:
    """True if ``path`` exists and passes its checksum."""
    try:
        _read_verified(Path(path))
    except (FileNotFoundError, CheckpointCorruptionError, OSError):
        return False
    return True


def load_checkpoint(path: str | Path) -> TrainerCheckpoint:
    """Load and verify a checkpoint written by :func:`save_checkpoint`.

    Raises:
        FileNotFoundError: if ``path`` does not exist.
        CheckpointCorruptionError: on checksum mismatch or an unreadable
            archive (the error names the file).
        CheckpointError: on a version mismatch.
    """
    path = Path(path)
    blob = _read_verified(path)
    try:
        with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta_json"]))
            arrays = {key: archive[key] for key in archive.files if key != "meta_json"}
    except Exception as exc:
        raise CheckpointCorruptionError(
            f"checkpoint {path} is unreadable despite a matching checksum: {exc}"
        ) from exc
    version = meta.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise CheckpointError(
            f"checkpoint {path} has version {version}, "
            f"expected one of {_SUPPORTED_VERSIONS}"
        )
    if version < CHECKPOINT_VERSION:
        warnings.warn(
            f"checkpoint {path} is a v{version} archive (pre-durability): "
            "it carries no cache/drift/dataset state, so an online cache "
            "will cold-start instead of resuming exactly",
            stacklevel=2,
        )
    params: dict[str, np.ndarray] = {}
    optimizer_state: dict[str, np.ndarray] = {}
    state_arrays: dict[str, np.ndarray] = {}
    for key, value in arrays.items():
        if key.startswith(_DENSE_PREFIX):
            params["dense." + key[len(_DENSE_PREFIX):]] = value
        elif key.startswith(_TABLE_PREFIX):
            params["table." + key[len(_TABLE_PREFIX):]] = value
        elif key.startswith(_OPT_PREFIX):
            optimizer_state[key[len(_OPT_PREFIX):]] = value
        elif key.startswith(_STATE_PREFIX):
            state_arrays[key] = value
    extra_state = _unpack_tree(meta.get("extra_state") or {}, state_arrays)
    get_registry().counter("resilience.checkpoint.restores").inc()
    return TrainerCheckpoint(
        step=int(meta["step"]),
        epoch=int(meta["epoch"]),
        cursors={k: int(v) for k, v in meta["cursors"].items()},
        scheduler_state=meta["scheduler_state"],
        params=params,
        optimizer_state=optimizer_state,
        rng_state=meta.get("rng_state"),
        degraded=bool(meta.get("degraded", False)),
        last_train_loss=float(meta.get("last_train_loss", 0.0)),
        last_train_accuracy=float(meta.get("last_train_accuracy", 0.0)),
        metadata=meta.get("metadata", {}),
        cache_state=extra_state.get("cache"),
        dataset_state=extra_state.get("dataset"),
        drift_state=extra_state.get("drift"),
    )


def read_checkpoint_meta(path: str | Path) -> dict:
    """Verified metadata of one checkpoint, without loading its arrays.

    Returns the raw meta dict (version, step, epoch, degraded, ...) plus
    ``size_bytes``; used by ``repro checkpoint ls``.  Raises the same
    errors as :func:`load_checkpoint` on missing/corrupt files.
    """
    path = Path(path)
    blob = _read_verified(path)
    try:
        with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta_json"]))
    except Exception as exc:
        raise CheckpointCorruptionError(
            f"checkpoint {path} is unreadable despite a matching checksum: {exc}"
        ) from exc
    meta["size_bytes"] = len(blob)
    return meta


def latest_checkpoint(directory: str | Path) -> Path | None:
    """Newest checkpoint in ``directory`` that passes verification.

    Corrupt or half-written entries are skipped (and counted under
    ``resilience.checkpoint.corrupt_skipped``), so resume falls back to
    the last good snapshot instead of dying on a truncated file.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob("ckpt-*.npz"), reverse=True)
    for candidate in candidates:
        if verify_checkpoint(candidate):
            return candidate
        get_registry().counter("resilience.checkpoint.corrupt_skipped").inc()
    return None


class CheckpointManager:
    """Periodic checkpointing into a directory with bounded retention.

    Args:
        directory: where checkpoints live.
        every: save every N completed segments (>= 1).
        keep: how many newest checkpoints to retain, or None for all.
    """

    def __init__(self, directory: str | Path, every: int = 1, keep: int | None = 3) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        if keep is not None and keep < 1:
            raise ValueError("keep must be >= 1 (or None for unlimited)")
        self.directory = Path(directory)
        self.every = every
        self.keep = keep

    def should_save(self, segments_done: int) -> bool:
        """Whether a checkpoint is due after ``segments_done`` segments."""
        return segments_done > 0 and segments_done % self.every == 0

    def save(self, ckpt: TrainerCheckpoint) -> Path:
        """Persist ``ckpt`` and prune beyond the retention limit."""
        path = save_checkpoint(self.directory, ckpt)
        self._prune()
        return path

    def latest(self) -> Path | None:
        return latest_checkpoint(self.directory)

    def _prune(self) -> None:
        if self.keep is None:
            return
        checkpoints = sorted(self.directory.glob("ckpt-*.npz"), reverse=True)
        for stale in checkpoints[self.keep:]:
            stale.unlink(missing_ok=True)
            _sidecar(stale).unlink(missing_ok=True)
