"""Bounded retry with exponential backoff.

Transient faults (a flaky collective, a loader hiccup) are absorbed by
retrying the failed operation a bounded number of times with exponential
backoff; anything that keeps failing surfaces as
:class:`RetryExhaustedError` so callers can escalate (shrink the world,
degrade, or abort).  Permanent faults are never retried — only the
exception types listed in ``retryable`` are caught.

Every retry and every exhaustion is recorded through the metrics
registry (``resilience.retry.*``) and, when tracing is on, as a
``resilience.retry`` span, so chaos runs show exactly where time went.
The per-retry sleep (jitter included) is also observed into the
``resilience.retry.delay_seconds`` histogram, so the actual schedule a
chaos run used is visible in the metrics snapshot.

With ``jitter > 0`` each backoff is scaled by a factor drawn uniformly
from ``[1 - jitter, 1 + jitter]``; many callers hitting the same fault
then spread out instead of retrying in lock-step (the thundering-herd
failure mode of pure exponential backoff).  The draw is *seeded* —
``(policy.seed, operation name, retry index)`` fully determine it — so
chaos runs stay reproducible: same seed, same schedule.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.resilience.faults import LoaderHiccup, TransientCollectiveError

__all__ = ["RetryExhaustedError", "RetryPolicy", "with_retries", "RETRYABLE_FAULTS"]

T = TypeVar("T")

#: Fault types that are safe to retry by default.
RETRYABLE_FAULTS: tuple[type[Exception], ...] = (TransientCollectiveError, LoaderHiccup)


class RetryExhaustedError(RuntimeError):
    """An operation kept failing after the policy's final attempt."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff.

    Attributes:
        max_attempts: total tries, including the first (must be >= 1).
        base_delay: sleep before the first retry, in seconds.
        multiplier: backoff growth factor per retry.
        max_delay: ceiling on any single sleep (applied before jitter).
        sleep_enabled: set False in tests to skip real sleeping (the
            schedule is still computed and recorded).
        jitter: backoff spread in ``[0, 1]``; each delay is scaled by a
            seeded uniform draw from ``[1 - jitter, 1 + jitter]`` (0
            keeps the exact exponential schedule).
        seed: jitter seed; the schedule is a pure function of
            ``(seed, salt, retry_index)``, so runs are reproducible.
    """

    max_attempts: int = 4
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    sleep_enabled: bool = True
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], got {self.jitter}")

    def delay(self, retry_index: int, salt: int = 0) -> float:
        """Backoff before the ``retry_index``-th retry (0-based).

        Args:
            salt: decorrelates call sites sharing one policy (callers
                pass a hash of the operation name); ignored when
                ``jitter`` is 0.
        """
        base = min(self.base_delay * self.multiplier**retry_index, self.max_delay)
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self.seed & 0xFFFFFFFF, salt & 0xFFFFFFFF, retry_index]
            )
        )
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


def with_retries(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    retryable: tuple[type[Exception], ...] = RETRYABLE_FAULTS,
    name: str = "operation",
) -> T:
    """Run ``fn``, retrying ``retryable`` failures per ``policy``.

    Args:
        fn: zero-argument operation to attempt.
        policy: retry policy; defaults to :class:`RetryPolicy`.
        retryable: exception types worth retrying; anything else
            propagates immediately (e.g. a permanent rank failure).
        name: label for metrics/spans.

    Returns:
        ``fn()``'s result from the first successful attempt.

    Raises:
        RetryExhaustedError: when every attempt failed with a retryable
            error (the last one is chained as ``__cause__``).
    """
    policy = policy or RetryPolicy()
    registry = get_registry()
    salt = zlib.crc32(name.encode("utf-8"))
    last_error: Exception | None = None
    for attempt in range(policy.max_attempts):
        try:
            result = fn()
        except retryable as exc:
            last_error = exc
            registry.counter("resilience.retry.attempts").inc()
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.delay(attempt, salt=salt)
            registry.histogram("resilience.retry.delay_seconds").observe(delay)
            with span("resilience.retry", op=name, attempt=attempt, delay=delay):
                if policy.sleep_enabled and delay > 0:
                    time.sleep(delay)
        else:
            if attempt > 0:
                registry.counter("resilience.retry.recovered").inc()
            return result
    registry.counter("resilience.retry.exhausted").inc()
    raise RetryExhaustedError(
        f"{name} still failing after {policy.max_attempts} attempts"
    ) from last_error
