"""Crash-anywhere certification: SIGKILL real training, resume, byte-compare.

The durability claim worth certifying is not "resume works" but "resume
is *exact* no matter where the crash lands".  This harness proves it the
only way that counts — with real processes and real SIGKILLs:

1. an **uninterrupted reference** run trains to completion and writes a
   deterministic final-state fingerprint (:func:`write_final_state`);
2. for every kill point — each refresh phase of the journaled cache
   turnover (``crash_refresh=SEG@PHASE``), each checkpoint boundary
   (``crash_checkpoint=N``), and optional mid-segment steps
   (``crash_step=N``) — a fresh run is launched with that crash fault
   armed and must die by SIGKILL (a clean exit means the kill point
   never fired, which is itself a failure: the certification would be
   vacuous);
3. the killed run is resumed from its newest good checkpoint and writes
   its own final-state fingerprint;
4. the two fingerprints are compared **byte-for-byte** with
   :func:`filecmp.cmp`.

The fingerprint covers SHA-256 digests of every dense parameter and
embedding table, the resume-invariant fields of the
:class:`~repro.train.trainer.TrainResult`, and the cache's full durable
state (stats plus a digest of its entire ``state_dict`` tree), all as
sorted-key JSON — a pure function of the final training state, so two
runs agree iff they converged to identical bytes.
"""

from __future__ import annotations

import filecmp
import hashlib
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.resilience.atomic import atomic_write_text
from repro.resilience.faults import REFRESH_PHASES

__all__ = [
    "CERTIFY_VERSION",
    "SIGKILL_RETURNCODE",
    "CertifyConfig",
    "format_certification",
    "run_certification",
    "write_final_state",
]

#: Schema version of final-state fingerprints and certification reports.
CERTIFY_VERSION = 1

#: What ``subprocess`` reports for a process that died by SIGKILL.
SIGKILL_RETURNCODE = -9


# ----------------------------------------------------------------------
# Final-state fingerprint
# ----------------------------------------------------------------------


def _array_digest(hasher: "hashlib._Hash", array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    hasher.update(str(array.dtype).encode())
    hasher.update(str(array.shape).encode())
    hasher.update(array.tobytes())


def _tree_digest(tree) -> str:
    """SHA-256 over a nested dict/list/array tree, order-independent.

    Dict keys are walked sorted and fed into the hash alongside the leaf
    bytes, so two trees digest equal iff they hold identical values at
    identical paths.
    """
    hasher = hashlib.sha256()

    def walk(node, path: str) -> None:
        if isinstance(node, dict):
            for key in sorted(node):
                walk(node[key], f"{path}/{key}")
        elif isinstance(node, (list, tuple)):
            for index, item in enumerate(node):
                walk(item, f"{path}[{index}]")
        elif isinstance(node, np.ndarray):
            hasher.update(path.encode())
            _array_digest(hasher, node)
        else:
            hasher.update(path.encode())
            hasher.update(repr(node).encode())

    walk(tree, "")
    return hasher.hexdigest()


def write_final_state(path: str | Path, model, result, cache=None) -> Path:
    """Write the deterministic final-state fingerprint of a finished run.

    The JSON bytes are a pure function of the final training state:
    resumed and uninterrupted runs that converged to identical state
    produce identical files (compare with ``cmp`` / :func:`filecmp.cmp`).
    Histories, sync counts, and wall times are deliberately excluded —
    they legitimately differ across a resume.
    """
    dense_hasher = hashlib.sha256()
    for param in model.dense_parameters():
        _array_digest(dense_hasher, param.value)
    tables = {
        name: _tree_digest(table.weight.value)
        for name, table in sorted(model.tables.items())
    }
    fingerprint = {
        "version": CERTIFY_VERSION,
        "params": {"dense": dense_hasher.hexdigest(), "tables": tables},
        "result": {
            "iterations": int(result.history.points[-1].iteration)
            if result.history.points
            else 0,
            "final_train_accuracy": float(result.final_train_accuracy),
            "final_test_accuracy": float(result.final_test_accuracy),
            "degraded": bool(result.degraded),
        },
        "cache": None
        if cache is None
        else {"stats": cache.stats(), "state": _tree_digest(cache.state_dict())},
    }
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        destination, json.dumps(fingerprint, indent=2, sort_keys=True) + "\n"
    )
    return destination


# ----------------------------------------------------------------------
# Certification harness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CertifyConfig:
    """One certification campaign (all kill points share these knobs).

    Scaled so the default run refreshes its cache at least once within a
    couple of minutes: tiny schema, small log, aggressive
    ``cache_every``.

    Attributes:
        phases: refresh phases to SIGKILL at (``refresh_index`` selects
            which turnover).
        checkpoints: checkpoint-save indices (0-based) to SIGKILL after.
        steps: optimizer-iteration numbers to SIGKILL after (mid-segment
            kill points; resume replays from the previous boundary).
        gpus: > 1 certifies the distributed trainer instead.
        timeout: per-subprocess wall clock bound, seconds.
    """

    dataset: str = "criteo-kaggle"
    scale: str = "tiny"
    samples: int = 2048
    seed: int = 12
    epochs: int = 1
    batch_size: int = 64
    lr: float = 0.15
    budget_bytes: int = 32 * 1024
    cache_budget: int = 32 * 1024
    cache_every: int = 256
    checkpoint_every: int = 1
    refresh_index: int = 0
    phases: tuple[str, ...] = REFRESH_PHASES
    checkpoints: tuple[int, ...] = (0,)
    steps: tuple[int, ...] = ()
    gpus: int = 1
    timeout: float = 600.0

    def __post_init__(self) -> None:
        for phase in self.phases:
            if phase not in REFRESH_PHASES:
                raise ValueError(
                    f"unknown refresh phase {phase!r}; expected one of {REFRESH_PHASES}"
                )

    def kill_specs(self) -> list[str]:
        """Every kill point as a ``FaultPlan.parse`` crash-fault spec."""
        specs = [f"crash_refresh={self.refresh_index}@{phase}" for phase in self.phases]
        specs += [f"crash_checkpoint={index}" for index in self.checkpoints]
        specs += [f"crash_step={iteration}" for iteration in self.steps]
        return specs


def _train_argv(
    config: CertifyConfig,
    checkpoint_dir: Path,
    final_state: Path | None,
    faults: str | None = None,
    resume: bool = False,
) -> list[str]:
    argv = [
        sys.executable,
        "-m",
        "repro",
        "train",
        config.dataset,
        "--mode",
        "fae",
        "--scale",
        str(config.scale),
        "--samples",
        str(config.samples),
        "--seed",
        str(config.seed),
        "--epochs",
        str(config.epochs),
        "--batch-size",
        str(config.batch_size),
        "--lr",
        str(config.lr),
        "--budget-bytes",
        str(config.budget_bytes),
        "--cache-budget",
        str(config.cache_budget),
        "--cache-every",
        str(config.cache_every),
        "--checkpoint-dir",
        str(checkpoint_dir),
        "--checkpoint-every",
        str(config.checkpoint_every),
    ]
    if config.gpus > 1:
        argv += ["--gpus", str(config.gpus)]
    if final_state is not None:
        argv += ["--final-state", str(final_state)]
    if faults is not None:
        argv += ["--faults", faults]
    if resume:
        argv += ["--resume"]
    return argv


def _run(argv: list[str], timeout: float) -> subprocess.CompletedProcess:
    """Run one training subprocess with the repro package importable."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return subprocess.run(
        argv, capture_output=True, text=True, timeout=timeout, env=env
    )


def run_certification(
    config: CertifyConfig, out_dir: str | Path, log=print
) -> dict:
    """Run the full crash-anywhere campaign; returns the report dict.

    Layout under ``out_dir``: ``reference/`` holds the uninterrupted
    run's checkpoints and ``final_state.json``; each kill point gets its
    own subdirectory (checkpoints, journal, crash/resume logs, and its
    fingerprint).  The report itself is written to
    ``out_dir/certify_report.json``.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    reference_dir = out_dir / "reference"
    reference_state = reference_dir / "final_state.json"
    log(f"certify: reference run -> {reference_dir}")
    completed = _run(
        _train_argv(config, reference_dir / "ckpt", reference_state),
        config.timeout,
    )
    if completed.returncode != 0 or not reference_state.exists():
        raise RuntimeError(
            "certification reference run failed "
            f"(exit {completed.returncode}):\n{completed.stderr[-2000:]}"
        )

    points: list[dict] = []
    for spec in config.kill_specs():
        slug = spec.replace("=", "-").replace("@", "-")
        point_dir = out_dir / slug
        checkpoint_dir = point_dir / "ckpt"
        point_state = point_dir / "final_state.json"
        point: dict = {"kill": spec, "killed": False, "resumed": False, "match": False}

        crashed = _run(
            _train_argv(config, checkpoint_dir, None, faults=spec),
            config.timeout,
        )
        point["crash_returncode"] = crashed.returncode
        (point_dir / "crash.log").parent.mkdir(parents=True, exist_ok=True)
        (point_dir / "crash.log").write_text(
            crashed.stdout + crashed.stderr, encoding="utf-8"
        )
        if crashed.returncode != SIGKILL_RETURNCODE:
            # A clean exit means the kill point never fired: the matrix
            # entry proved nothing, so the certification fails loudly.
            point["error"] = (
                f"expected SIGKILL ({SIGKILL_RETURNCODE}), got {crashed.returncode} "
                "— crash point never fired"
            )
            log(f"certify: {spec}: FAIL ({point['error']})")
            points.append(point)
            continue
        point["killed"] = True

        resumed = _run(
            _train_argv(config, checkpoint_dir, point_state, resume=True),
            config.timeout,
        )
        point["resume_returncode"] = resumed.returncode
        (point_dir / "resume.log").write_text(
            resumed.stdout + resumed.stderr, encoding="utf-8"
        )
        if resumed.returncode != 0 or not point_state.exists():
            point["error"] = f"resume failed (exit {resumed.returncode})"
            log(f"certify: {spec}: FAIL ({point['error']})")
            points.append(point)
            continue
        point["resumed"] = True

        point["match"] = filecmp.cmp(reference_state, point_state, shallow=False)
        log(f"certify: {spec}: {'ok' if point['match'] else 'MISMATCH'}")
        points.append(point)

    report = {
        "version": CERTIFY_VERSION,
        "config": {
            "dataset": config.dataset,
            "scale": config.scale,
            "samples": config.samples,
            "seed": config.seed,
            "epochs": config.epochs,
            "batch_size": config.batch_size,
            "cache_budget": config.cache_budget,
            "cache_every": config.cache_every,
            "checkpoint_every": config.checkpoint_every,
            "refresh_index": config.refresh_index,
            "gpus": config.gpus,
        },
        "reference": str(reference_state),
        "points": points,
        "passed": bool(points) and all(p["match"] for p in points),
    }
    atomic_write_text(
        out_dir / "certify_report.json",
        json.dumps(report, indent=2, sort_keys=True) + "\n",
    )
    return report


def format_certification(report: dict) -> str:
    """Human-readable campaign summary (one line per kill point)."""
    lines = [
        f"crash-anywhere certification: {len(report['points'])} kill point(s), "
        f"{'PASS' if report['passed'] else 'FAIL'}"
    ]
    for point in report["points"]:
        if point["match"]:
            status = "ok (byte-identical resume)"
        else:
            status = point.get("error", "final state MISMATCH")
        lines.append(f"  {point['kill']:<28} {status}")
    return "\n".join(lines)
