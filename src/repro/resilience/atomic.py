"""Atomic file writes: temp file + ``os.replace``.

Long preprocessing and training runs die — machines get preempted, jobs
hit wall-clock limits, users press Ctrl-C.  Every artifact the pipeline
persists (packed ``.npz`` datasets, trace exports, checkpoints) must
therefore be written so that an interrupted run leaves either the old
file or the new file, never a truncated hybrid.  The recipe is the
standard one: write to a same-directory temporary file, fsync it, then
``os.replace`` it into place (atomic on POSIX when source and target
share a filesystem, which same-directory guarantees), and fsync the
directory so the rename itself survives power loss.  Renaming without
the fsync is only atomic against process crashes: after a power cut the
filesystem may replay the rename but not the data blocks, surfacing a
zero-length "atomic" file.

This module is intentionally stdlib-only so anything in the tree can use
it without import cycles.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = ["atomic_write", "atomic_write_text"]


@contextmanager
def atomic_write(path: str | Path) -> Iterator[Path]:
    """Yield a temporary path that is atomically renamed to ``path``.

    The temporary file lives in the destination directory and keeps the
    destination's suffix (so e.g. ``np.savez`` does not append ``.npz``
    to it).  On a clean exit it replaces ``path``; on any exception it is
    removed and the destination is left untouched.

    Usage::

        with atomic_write("plan.npz") as tmp:
            np.savez_compressed(tmp, **payload)
    """
    final = Path(path)
    final.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=final.parent, prefix=f".{final.name}.", suffix=".tmp" + final.suffix
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        yield tmp
        _fsync_path(tmp)
        os.replace(tmp, final)
        _fsync_dir(final.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _fsync_path(path: Path) -> None:
    """Flush a file's data to stable storage before it is renamed."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (the rename) to stable storage.

    Best-effort: some filesystems refuse fsync on directory fds; the
    rename is still atomic against process crashes there.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> Path:
    """Atomically write ``text`` to ``path``; returns the final path."""
    final = Path(path)
    with atomic_write(final) as tmp:
        tmp.write_text(text, encoding=encoding)
    return final
