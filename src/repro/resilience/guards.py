"""Data-integrity guardrails: ingest validation, numeric guards, breakers.

PR 2 hardened the *infrastructure* (checkpoints, retries, rank death);
this layer hardens the *data and numerics*.  Skewed pipelines concentrate
damage — a corrupted hot row is replicated to every GPU and poisons the
majority of accesses — so the guards sit at the three places bad values
enter or spread:

- **Ingest** — :class:`IngestPolicy` assigns a per-field policy
  (``raise`` | ``clamp`` | ``quarantine``) for out-of-range sparse ids,
  non-finite dense features, and invalid labels.
  :class:`~repro.data.validate.ValidatingChunkSource` applies it chunk
  by chunk over any :class:`~repro.data.chunk_source.ChunkSource`;
  quarantined records go to an atomic JSONL :class:`QuarantineLedger`
  with machine-readable reasons.  Decisions are per-row and content-based, so the surviving
  stream and the ledger are byte-identical across chunk sizes.
- **Training** — :class:`NumericGuard` checks batches before the
  forward pass, the loss after it (non-finite, or an EMA spike), and the
  gradients before the optimizer step.  Poisoned *inputs* are skipped;
  poisoned *state* (a clean batch producing a non-finite or spiking
  loss) triggers :class:`LossSpikeError`, which the trainers answer by
  rolling back to the last good checkpoint with learning-rate backoff,
  bounded by a retry budget.
- **Serving** — :class:`CircuitBreaker` watches a rolling window of
  request outcomes (deadline misses / fallbacks) and sheds load while
  open, recovering through a half-open probe.

Every guard event flows through :mod:`repro.obs` (``guards.*``
counters), and terminal failures raise :class:`GuardAbort`, which the
CLI renders with the ledger / checkpoint locations.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.metrics import get_registry
from repro.resilience.atomic import atomic_write_text

if TYPE_CHECKING:  # avoid a repro.data import cycle at runtime
    from repro.data.log import ClickLog

__all__ = [
    "GUARD_POLICIES",
    "CircuitBreaker",
    "GuardAbort",
    "GuardError",
    "IngestPolicy",
    "IngestValidationError",
    "LoadShedError",
    "LossSpikeError",
    "NumericGuard",
    "NumericGuardConfig",
    "QuarantineLedger",
    "validate_chunk",
]

GUARD_POLICIES = ("raise", "clamp", "quarantine")


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------


class GuardError(RuntimeError):
    """Base class for data-integrity guard failures."""


class IngestValidationError(GuardError):
    """A record failed ingest validation under the ``raise`` policy.

    Attributes:
        index: global sample index of the offending record.
        reason: machine-readable reason tag (e.g. ``sparse.table_00.oov``).
    """

    def __init__(self, index: int, reason: str, message: str) -> None:
        super().__init__(message)
        self.index = index
        self.reason = reason


class LossSpikeError(GuardError):
    """Training numerics went bad from clean inputs: state is poisoned.

    Raised by :class:`NumericGuard` and caught by the trainers, which
    roll back to the last good checkpoint with learning-rate backoff.

    Attributes:
        iteration: global step at which the guard tripped.
        loss: the offending loss value.
        ema: the loss EMA at trip time (None during warmup).
    """

    def __init__(self, iteration: int, loss: float, ema: float | None, detail: str) -> None:
        super().__init__(detail)
        self.iteration = iteration
        self.loss = loss
        self.ema = ema


class GuardAbort(GuardError):
    """A guard exhausted its recovery options; the run cannot continue.

    Attributes:
        guard: which guard gave up (``ingest`` | ``numeric`` | ``serving``).
        ledger_path: quarantine ledger location, if one exists.
        checkpoint_dir: checkpoint directory, if one was configured.
    """

    def __init__(
        self,
        guard: str,
        detail: str,
        ledger_path: str | Path | None = None,
        checkpoint_dir: str | Path | None = None,
    ) -> None:
        super().__init__(detail)
        self.guard = guard
        self.ledger_path = str(ledger_path) if ledger_path is not None else None
        self.checkpoint_dir = str(checkpoint_dir) if checkpoint_dir is not None else None

    def hints(self) -> list[str]:
        """Actionable follow-up lines for the CLI error handler."""
        lines = []
        if self.ledger_path is not None:
            lines.append(f"quarantine ledger: {self.ledger_path}")
        if self.checkpoint_dir is not None:
            lines.append(f"last good checkpoints: {self.checkpoint_dir}")
        return lines


class LoadShedError(GuardError):
    """The serving circuit breaker is open; the request was shed."""


# ----------------------------------------------------------------------
# Ingest validation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class IngestPolicy:
    """Per-field handling of invalid records at ingest.

    Attributes:
        sparse: policy for out-of-range (OOV / negative) sparse ids.
        dense: policy for non-finite dense features.
        labels: policy for non-finite or non-{0,1} labels.

    ``raise`` aborts on the first bad record (the historical behavior),
    ``clamp`` repairs in place (ids clipped into range, non-finite dense
    zeroed, labels thresholded), ``quarantine`` drops the record and
    writes it to the ledger.
    """

    sparse: str = "raise"
    dense: str = "raise"
    labels: str = "raise"

    def __post_init__(self) -> None:
        for name in ("sparse", "dense", "labels"):
            value = getattr(self, name)
            if value not in GUARD_POLICIES:
                raise ValueError(
                    f"{name} policy must be one of {GUARD_POLICIES}, got {value!r}"
                )

    @property
    def quarantines(self) -> bool:
        """Whether any field can drop records (stream length may shrink)."""
        return "quarantine" in (self.sparse, self.dense, self.labels)

    @classmethod
    def parse(cls, spec: str) -> "IngestPolicy":
        """Build a policy from a compact CLI spec.

        A bare policy name applies to every field
        (``"quarantine"``); comma-separated ``field=policy`` entries
        set fields individually (``"sparse=quarantine,dense=clamp"``).
        """
        spec = spec.strip()
        if spec in GUARD_POLICIES:
            return cls(sparse=spec, dense=spec, labels=spec)
        kwargs: dict[str, str] = {}
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ValueError(
                    f"ingest policy entry {entry!r} is not field=policy "
                    f"(fields: sparse, dense, labels; policies: {GUARD_POLICIES})"
                )
            key, _, value = entry.partition("=")
            key, value = key.strip(), value.strip()
            if key not in ("sparse", "dense", "labels"):
                raise ValueError(f"unknown ingest policy field {key!r}")
            kwargs[key] = value
        return cls(**kwargs)


class QuarantineLedger:
    """Append-and-flush JSONL ledger of quarantined records.

    Records accumulate in memory (deduplicated by global sample index,
    because the preprocess pipeline iterates its source twice) and
    :meth:`flush` rewrites the ledger file atomically, sorted by index
    with sorted keys — so the ledger bytes are deterministic for a given
    set of decisions regardless of chunking or pass count.

    Args:
        directory: ledger directory; the file is ``quarantine.jsonl``.
    """

    FILENAME = "quarantine.jsonl"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME
        self._records: dict[int, dict] = {}
        self._counter = get_registry().counter("guards.quarantined")

    def __len__(self) -> int:
        return len(self._records)

    def record(self, index: int, reasons: list[str], detail: dict | None = None) -> None:
        """Register one quarantined record (idempotent per index)."""
        index = int(index)
        if index in self._records:
            return
        entry = {"index": index, "reasons": sorted(reasons)}
        if detail:
            entry["detail"] = detail
        self._records[index] = entry
        self._counter.inc()

    @property
    def indices(self) -> list[int]:
        """Quarantined global sample indices, ascending."""
        return sorted(self._records)

    def flush(self) -> Path:
        """Atomically (re)write the ledger file; returns its path."""
        lines = [
            json.dumps(self._records[index], sort_keys=True)
            for index in sorted(self._records)
        ]
        atomic_write_text(self.path, "".join(line + "\n" for line in lines))
        return self.path

    @staticmethod
    def load(path: str | Path) -> list[dict]:
        """Parse a ledger file back into its records.

        Raises:
            GuardError: if a line is not valid JSON (the error names the
                file and line number).
        """
        records = []
        for lineno, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise GuardError(f"quarantine ledger {path}:{lineno} is corrupt: {exc}") from exc
        return records


def _bad_dense_rows(dense: np.ndarray) -> np.ndarray:
    return ~np.isfinite(dense).all(axis=1)


def _bad_label_rows(labels: np.ndarray) -> np.ndarray:
    finite = np.isfinite(labels)
    valid = finite & ((labels == 0.0) | (labels == 1.0))
    return ~valid


def validate_chunk(
    chunk: ClickLog,
    start: int,
    policy: IngestPolicy,
    ledger: QuarantineLedger | None = None,
) -> tuple[ClickLog, int]:
    """Validate one chunk under ``policy``; returns ``(clean, dropped)``.

    Per-row checks: non-finite dense features, labels outside {0, 1},
    and sparse ids outside ``[0, num_rows)`` for each table.  Decisions
    depend only on row content and the row's global index (``start`` +
    offset), never on chunk boundaries.

    Raises:
        IngestValidationError: on the first bad record of a field whose
            policy is ``raise``.
    """
    schema = chunk.schema
    n = len(chunk)
    if n == 0:
        return chunk, 0

    dense = chunk.dense
    labels = chunk.labels
    sparse = chunk.sparse
    drop = np.zeros(n, dtype=bool)
    reasons: dict[int, list[str]] = {}
    detail: dict[int, dict] = {}

    def _flag(rows: np.ndarray, reason: str, info: dict[int, object] | None = None) -> None:
        for offset in np.flatnonzero(rows):
            index = start + int(offset)
            reasons.setdefault(index, []).append(reason)
            if info is not None:
                detail.setdefault(index, {})[reason] = info[int(offset)]
        drop[rows] = True

    bad_dense = _bad_dense_rows(dense)
    if bad_dense.any():
        if policy.dense == "raise":
            offset = int(np.flatnonzero(bad_dense)[0])
            raise IngestValidationError(
                start + offset,
                "dense.nonfinite",
                f"sample {start + offset}: non-finite dense features",
            )
        if policy.dense == "clamp":
            dense = np.nan_to_num(dense, nan=0.0, posinf=0.0, neginf=0.0)
        else:
            _flag(
                bad_dense,
                "dense.nonfinite",
                {
                    int(o): int((~np.isfinite(chunk.dense[o])).sum())
                    for o in np.flatnonzero(bad_dense)
                },
            )

    bad_labels = _bad_label_rows(labels)
    if bad_labels.any():
        if policy.labels == "raise":
            offset = int(np.flatnonzero(bad_labels)[0])
            raise IngestValidationError(
                start + offset,
                "label.invalid",
                f"sample {start + offset}: label {labels[offset]!r} is not in {{0, 1}}",
            )
        if policy.labels == "clamp":
            labels = np.where(
                np.nan_to_num(labels, nan=0.0, posinf=1.0, neginf=0.0) >= 0.5, 1.0, 0.0
            ).astype(np.float32)
        else:
            _flag(
                bad_labels,
                "label.invalid",
                {int(o): float(labels[o]) for o in np.flatnonzero(bad_labels)},
            )

    clamped_sparse: dict[str, np.ndarray] = {}
    for spec in schema.tables:
        ids = sparse[spec.name]
        bad_ids = (ids < 0) | (ids >= spec.num_rows)
        bad_rows = bad_ids.any(axis=1)
        if bad_rows.any():
            if policy.sparse == "raise":
                offset = int(np.flatnonzero(bad_rows)[0])
                offending = int(ids[offset][bad_ids[offset]][0])
                raise IngestValidationError(
                    start + offset,
                    f"sparse.{spec.name}.oov",
                    f"sample {start + offset}: {spec.name} id {offending} "
                    f"out of range [0, {spec.num_rows})",
                )
            if policy.sparse == "clamp":
                clamped_sparse[spec.name] = np.clip(ids, 0, spec.num_rows - 1)
            else:
                _flag(
                    bad_rows,
                    f"sparse.{spec.name}.oov",
                    {
                        int(o): int(ids[o][bad_ids[o]][0])
                        for o in np.flatnonzero(bad_rows)
                    },
                )

    dropped = int(drop.sum())
    if dropped and ledger is not None:
        for index in sorted(reasons):
            ledger.record(index, reasons[index], detail.get(index))

    if not dropped and dense is chunk.dense and labels is chunk.labels and not clamped_sparse:
        return chunk, 0

    from repro.data.log import ClickLog  # deferred: avoids an import cycle

    keep = ~drop
    clean_sparse = {
        name: clamped_sparse.get(name, sparse[name])[keep] for name in sparse
    }
    clean = ClickLog.from_trusted(
        schema=schema,
        dense=np.ascontiguousarray(dense[keep], dtype=np.float32),
        sparse={k: np.ascontiguousarray(v, dtype=np.int64) for k, v in clean_sparse.items()},
        labels=np.ascontiguousarray(labels[keep], dtype=np.float32),
    )
    return clean, dropped


# ----------------------------------------------------------------------
# Numeric guards (training)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NumericGuardConfig:
    """Thresholds for the training-time numeric guard.

    Attributes:
        ema_beta: smoothing factor of the loss EMA (higher = slower).
        spike_factor: a loss above ``spike_factor * ema`` is a spike.
        warmup_steps: loss observations before spike detection arms
            (early losses are legitimately noisy).
        max_rollbacks: rollback budget; exceeding it raises
            :class:`GuardAbort`.
        lr_backoff: learning-rate multiplier applied at each rollback.
        max_skipped_steps: discarded optimizer steps tolerated between
            rollbacks before the guard concludes the *parameters* are
            poisoned and escalates to a rollback.  (A NaN weight row can
            hide from the loss check — ``np.where``-style ReLUs map NaN
            activations to 0 in the forward pass — but it keeps
            producing non-finite gradients.)
    """

    ema_beta: float = 0.9
    spike_factor: float = 4.0
    warmup_steps: int = 8
    max_rollbacks: int = 2
    lr_backoff: float = 0.5
    max_skipped_steps: int = 16

    def __post_init__(self) -> None:
        if not 0.0 < self.ema_beta < 1.0:
            raise ValueError("ema_beta must be in (0, 1)")
        if self.spike_factor <= 1.0:
            raise ValueError("spike_factor must be > 1")
        if self.warmup_steps < 1:
            raise ValueError("warmup_steps must be >= 1")
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be >= 0")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise ValueError("lr_backoff must be in (0, 1]")
        if self.max_skipped_steps < 1:
            raise ValueError("max_skipped_steps must be >= 1")

    @classmethod
    def parse(cls, spec: str) -> "NumericGuardConfig":
        """Build a config from a compact CLI spec.

        Comma-separated ``key=value`` entries::

            spike=4.0,ema=0.9,warmup=8,rollbacks=2,backoff=0.5,skips=16

        An empty spec (or the literal ``default``) yields the defaults.
        """
        spec = spec.strip()
        if spec in ("", "default"):
            return cls()
        kwargs: dict = {}
        keys = {
            "ema": ("ema_beta", float),
            "spike": ("spike_factor", float),
            "warmup": ("warmup_steps", int),
            "rollbacks": ("max_rollbacks", int),
            "backoff": ("lr_backoff", float),
            "skips": ("max_skipped_steps", int),
        }
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ValueError(f"guard spec entry {entry!r} is not key=value")
            key, _, value = entry.partition("=")
            key = key.strip()
            if key not in keys:
                raise ValueError(
                    f"unknown guard spec key {key!r} (have {sorted(keys)})"
                )
            name, cast = keys[key]
            kwargs[name] = cast(value.strip())
        return cls(**kwargs)


class NumericGuard:
    """NaN/Inf and loss-spike detection around every optimizer step.

    The guard distinguishes *input* corruption from *state* corruption:

    - a batch with non-finite features/labels is **skipped** before the
      forward pass (``guards.batch.skipped``) — dropping one bad batch
      costs one update;
    - non-finite gradients from a clean batch are **discarded** before
      the step (``guards.step.skipped``) — the parameters stay good; but
      more than ``max_skipped_steps`` of them between rollbacks means
      the parameters themselves are producing the poison (a NaN weight
      row can hide from the loss check behind a ``np.where`` ReLU), and
      the guard escalates to a rollback;
    - a non-finite or spiking loss from a clean batch means the
      *parameters* are already poisoned (e.g. a corrupted hot-replica
      row): :meth:`check_loss` raises :class:`LossSpikeError` and the
      trainer rolls back to the last good checkpoint with LR backoff.

    One guard instance is shared across a trainer's rollback attempts,
    so the rollback budget is global to the run.
    """

    def __init__(self, config: NumericGuardConfig | None = None) -> None:
        self.config = config or NumericGuardConfig()
        self.ema: float | None = None
        self.observations = 0
        self.rollbacks = 0
        self.skipped_batches = 0
        self.skipped_steps = 0
        self.rejected_checkpoints = 0
        self._skips_since_reset = 0
        registry = get_registry()
        self._batch_counter = registry.counter("guards.batch.skipped")
        self._step_counter = registry.counter("guards.step.skipped")
        self._rollback_counter = registry.counter("guards.rollbacks")
        self._ckpt_counter = registry.counter("guards.checkpoint.rejected")

    # -- input checks ---------------------------------------------------

    def batch_ok(self, batch) -> bool:
        """False (and count) if the batch carries non-finite values."""
        if np.isfinite(batch.dense).all() and np.isfinite(batch.labels).all():
            return True
        self.skipped_batches += 1
        self._batch_counter.inc()
        return False

    def grads_ok(self, parameters, iteration: int = 0) -> bool:
        """False (and count) if any accumulated gradient is non-finite.

        Raises:
            LossSpikeError: when more than ``max_skipped_steps`` steps
                have been discarded since the last rollback — persistent
                gradient poison means the parameters are the source.
        """

        def _bad() -> bool:
            for param in parameters:
                if param.grad is not None and not np.isfinite(param.grad).all():
                    return True
                for record in param.sparse_grads:
                    if not np.isfinite(record.values).all():
                        return True
            return False

        if not _bad():
            return True
        self.skipped_steps += 1
        self._skips_since_reset += 1
        self._step_counter.inc()
        if self._skips_since_reset > self.config.max_skipped_steps:
            raise LossSpikeError(
                iteration, float("nan"), self.ema,
                f"{self._skips_since_reset} non-finite-gradient steps discarded "
                f"since the last rollback (> {self.config.max_skipped_steps}): "
                "the parameters are likely poisoned",
            )
        return False

    # -- state checks ---------------------------------------------------

    def check_loss(self, loss: float, iteration: int) -> None:
        """Observe one training loss; raise on poisoned state.

        Raises:
            LossSpikeError: when the loss is non-finite, or exceeds
                ``spike_factor`` times the EMA after warmup.
        """
        loss = float(loss)
        if not math.isfinite(loss):
            raise LossSpikeError(
                iteration, loss, self.ema,
                f"non-finite training loss {loss!r} at iteration {iteration}",
            )
        if (
            self.ema is not None
            and self.observations >= self.config.warmup_steps
            and loss > self.config.spike_factor * self.ema
        ):
            raise LossSpikeError(
                iteration, loss, self.ema,
                f"loss spike at iteration {iteration}: {loss:.4f} > "
                f"{self.config.spike_factor:g} x EMA {self.ema:.4f}",
            )
        beta = self.config.ema_beta
        self.ema = loss if self.ema is None else beta * self.ema + (1.0 - beta) * loss
        self.observations += 1

    def check_eval_loss(self, loss: float, iteration: int) -> None:
        """A non-finite *evaluation* loss also means poisoned state.

        Raises:
            LossSpikeError: when ``loss`` is NaN/Inf.
        """
        if not math.isfinite(float(loss)):
            raise LossSpikeError(
                iteration, float(loss), self.ema,
                f"non-finite evaluation loss at iteration {iteration}",
            )

    def state_ok(self, arrays) -> bool:
        """Whether a parameter snapshot is finite (checkpoint hygiene).

        Trainers call this before persisting a checkpoint; a snapshot
        carrying NaN/Inf is refused so rollback never restores poison.
        """
        for value in (arrays.values() if isinstance(arrays, dict) else arrays):
            if not np.isfinite(value).all():
                self.rejected_checkpoints += 1
                self._ckpt_counter.inc()
                return False
        return True

    # -- rollback budget ------------------------------------------------

    def note_rollback(self, detail: str, checkpoint_dir=None, ledger_path=None) -> None:
        """Record one rollback; raise when the budget is exhausted.

        Raises:
            GuardAbort: after more than ``max_rollbacks`` rollbacks.
        """
        self.rollbacks += 1
        self._rollback_counter.inc()
        if self.rollbacks > self.config.max_rollbacks:
            raise GuardAbort(
                "numeric",
                f"rollback budget exhausted "
                f"({self.rollbacks} > {self.config.max_rollbacks}): {detail}",
                ledger_path=ledger_path,
                checkpoint_dir=checkpoint_dir,
            )
        # The EMA tracked the pre-rollback trajectory; re-warm it so the
        # replayed (lower-LR) losses are not judged against stale state.
        self.ema = None
        self.observations = 0
        self._skips_since_reset = 0

    def snapshot(self) -> dict:
        """JSON-ready guard activity summary."""
        return {
            "rollbacks": self.rollbacks,
            "skipped_batches": self.skipped_batches,
            "skipped_steps": self.skipped_steps,
            "rejected_checkpoints": self.rejected_checkpoints,
            "loss_ema": self.ema,
        }


# ----------------------------------------------------------------------
# Serving circuit breaker
# ----------------------------------------------------------------------


@dataclass
class CircuitBreaker:
    """Rolling-window circuit breaker over request outcomes.

    Closed: requests flow, outcomes are recorded.  When the failure
    fraction over the last ``window`` requests reaches
    ``failure_threshold`` (with at least ``min_requests`` observed), the
    breaker **opens** and sheds load.  After ``cooldown`` shed requests
    it goes **half-open**: one probe request is admitted; success closes
    the breaker (window cleared), failure re-opens it.

    Request counts (not wall time) drive the cooldown so behavior is
    deterministic under test.

    Attributes:
        window: outcomes retained for the failure-rate computation.
        failure_threshold: failure fraction that opens the breaker.
        min_requests: observations required before the breaker may trip.
        cooldown: shed requests before a half-open probe is admitted.
    """

    window: int = 64
    failure_threshold: float = 0.5
    min_requests: int = 16
    cooldown: int = 32

    state: str = field(default="closed", init=False)
    trips: int = field(default=0, init=False)
    shed_requests: int = field(default=0, init=False)
    _outcomes: list[bool] = field(default_factory=list, init=False, repr=False)
    _shed_since_open: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_requests < 1 or self.cooldown < 0:
            raise ValueError("window/min_requests must be >= 1, cooldown >= 0")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        registry = get_registry()
        self._trip_counter = registry.counter("guards.breaker.trips")
        self._shed_counter = registry.counter("guards.breaker.shed")

    def failure_rate(self) -> float:
        """Failure fraction over the current window (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        return 1.0 - (sum(self._outcomes) / len(self._outcomes))

    def allow(self) -> bool:
        """Whether the next request may proceed (False = shed it)."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._shed_since_open >= self.cooldown:
                self.state = "half_open"
                return True
            self._shed_since_open += 1
            self.shed_requests += 1
            self._shed_counter.inc()
            return False
        # half_open: the in-flight probe owns the slot.
        self.shed_requests += 1
        self._shed_counter.inc()
        return False

    def record(self, success: bool) -> None:
        """Report the outcome of an admitted request."""
        if self.state == "half_open":
            if success:
                self.state = "closed"
                self._outcomes = []
            else:
                self.state = "open"
                self._shed_since_open = 0
            return
        self._outcomes.append(bool(success))
        if len(self._outcomes) > self.window:
            del self._outcomes[: len(self._outcomes) - self.window]
        if (
            self.state == "closed"
            and len(self._outcomes) >= self.min_requests
            and self.failure_rate() >= self.failure_threshold
        ):
            self.state = "open"
            self._shed_since_open = 0
            self.trips += 1
            self._trip_counter.inc()

    def health(self) -> dict:
        """JSON-ready health snapshot."""
        return {
            "state": self.state,
            "failure_rate": self.failure_rate(),
            "window_size": len(self._outcomes),
            "trips": self.trips,
            "shed_requests": self.shed_requests,
        }
