"""Elastic real-process execution: a supervised worker pool.

Everything else in :mod:`repro.resilience` survives *simulated* faults —
exceptions raised inside one Python process.  This module is the
real-process substrate: a supervisor that spawns genuine
``multiprocessing`` workers, detects their deaths by missed heartbeats,
re-runs their work elsewhere, and degrades gracefully when processes are
not available at all.  The design mirrors how production parameter-server
and data-preprocessing fleets stay up (the Facebook training-efficiency
paper attributes a large share of lost throughput to crashes, hangs, and
stragglers — exactly the three fault kinds injected here):

- **heartbeats** — each worker runs a daemon thread that beats over a
  queue every ``heartbeat_interval``; the supervisor declares a worker
  dead after ``heartbeat_miss_budget`` consecutive missed beats (a
  SIGKILL stops the beats instantly; a wedged process that stops
  beating is indistinguishable from a dead one, which is the point).
- **task leases** — every dispatch is a lease.  A lease whose worker
  dies, or that outlives ``lease_timeout``, is re-dispatched to another
  worker.  A task that burns ``max_task_leases`` failed leases is a
  *poison task*: it is quarantined into the same JSONL ledger format as
  :class:`~repro.resilience.guards.QuarantineLedger` and the run fails
  loudly instead of looping forever.
- **speculation** — with ``speculate`` on, an idle worker duplicates the
  oldest still-running task once it has been outstanding for
  ``speculate_after`` seconds.  First result wins; the loser's result is
  discarded on arrival (and its worker reclaimed), which is how
  MapReduce-style backup tasks cancel without preemption.
- **degradation** — when process spawn is unavailable (or ``workers``
  <= 1, or the pool burns its respawn budget), the remaining tasks run
  in-process, sequentially, in task order — deterministic and
  fault-free, so callers always get an answer.

Task functions are addressed as ``"module.path:function"`` strings and
resolved by import inside the worker, so the pool works under both
``fork`` and ``spawn`` start methods; payloads and results cross the
process boundary by pickling.  Tasks must be pure (re-executable): a
re-dispatched or speculated task runs from scratch elsewhere, and the
supervisor keeps only the first result.

Every lifecycle step is emitted into a schema-versioned JSONL event log
(:class:`SupervisorEventLog`) and mirrored as ``resilience.elastic.*``
counters in the metrics registry, so a chaos run is fully auditable:
spawn, heartbeat-miss, death, re-dispatch, speculate, quarantine,
degrade, cancel — and the trainers add ``rejoin``.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing as mp
import os
import queue as queue_mod
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.obs.metrics import get_registry
from repro.resilience.atomic import atomic_write_text

__all__ = [
    "ELASTIC_EVENT_VERSION",
    "ElasticConfig",
    "ElasticError",
    "SupervisorEventLog",
    "TaskQuarantinedError",
    "WorkerPool",
]

#: Schema version stamped into every supervisor event record.
ELASTIC_EVENT_VERSION = 1

#: How long an injected hang sleeps; far past any sane heartbeat budget,
#: so the supervisor always wins the race.
_HANG_SECONDS = 600.0


class ElasticError(RuntimeError):
    """The worker pool could not complete the submitted tasks."""


class TaskQuarantinedError(ElasticError):
    """One or more tasks were quarantined as poison.

    Attributes:
        task_ids: quarantined task indices, ascending.
        ledger_path: quarantine ledger location (None when no directory
            was configured).
        results: results of the tasks that *did* complete, by task id.
    """

    def __init__(
        self,
        kind: str,
        task_ids: list[int],
        ledger_path: Path | None,
        results: dict[int, Any],
    ) -> None:
        where = f" (ledger: {ledger_path})" if ledger_path else ""
        super().__init__(
            f"{len(task_ids)} poison task(s) quarantined running {kind}: "
            f"{task_ids}{where}"
        )
        self.task_ids = task_ids
        self.ledger_path = ledger_path
        self.results = results


@dataclass(frozen=True)
class ElasticConfig:
    """Supervisor knobs for the elastic worker pool.

    Attributes:
        workers: worker processes; <= 1 runs tasks in-process (the
            deterministic degraded mode).
        heartbeat_interval: seconds between worker heartbeats.
        heartbeat_miss_budget: consecutive missed beats before a worker
            is declared dead.
        lease_timeout: seconds a single task lease may run before it is
            re-dispatched (catches live-but-stuck workers).
        max_task_leases: failed leases before a task is quarantined.
        speculate: duplicate the slowest outstanding task onto an idle
            worker (first result wins).
        speculate_after: seconds a task must be outstanding before it is
            eligible for speculation.
        max_respawns: replacement workers the supervisor may spawn over
            the pool's lifetime before degrading to in-process execution.
        spawn_grace: seconds a freshly spawned worker has to deliver its
            first heartbeat (covers slow ``spawn``-method interpreter
            startup) before liveness checks apply.
        run_timeout: hard wall-clock ceiling on one :meth:`WorkerPool.run`
            call — a supervisor bug must never hang the caller.
        start_method: multiprocessing start method, or None to prefer
            ``fork`` (falling back to the platform default).
    """

    workers: int = 0
    heartbeat_interval: float = 0.05
    heartbeat_miss_budget: int = 5
    lease_timeout: float = 30.0
    max_task_leases: int = 3
    speculate: bool = False
    speculate_after: float = 1.0
    max_respawns: int = 8
    spawn_grace: float = 10.0
    run_timeout: float = 300.0
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_miss_budget < 1:
            raise ValueError("heartbeat_miss_budget must be >= 1")
        if self.lease_timeout <= 0 or self.run_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_task_leases < 1:
            raise ValueError("max_task_leases must be >= 1")
        if self.speculate_after < 0:
            raise ValueError("speculate_after must be >= 0")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")

    @property
    def process_mode(self) -> bool:
        """Whether this config asks for real worker processes."""
        return self.workers > 1

    @property
    def death_after(self) -> float:
        """Silence, in seconds, that flips a worker to dead."""
        return self.heartbeat_interval * self.heartbeat_miss_budget


class SupervisorEventLog:
    """Schema-versioned, sequence-numbered JSONL supervisor event log.

    Events accumulate in memory; :meth:`flush` writes the whole log
    atomically (same discipline as the quarantine ledger), so a crashed
    run never leaves a truncated log.  Each record carries ``v`` (schema
    version), ``seq`` (monotonic), ``ts`` (wall clock), and ``event``
    plus event-specific fields.

    Args:
        path: JSONL destination, or None for an in-memory-only log.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: list[dict] = []
        self._seq = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, event: str, **fields) -> dict:
        """Append one event record and return it."""
        with self._lock:
            record = {
                "v": ELASTIC_EVENT_VERSION,
                "seq": self._seq,
                "ts": round(time.time(), 6),
                "event": event,
                **fields,
            }
            self._seq += 1
            self.events.append(record)
        return record

    def count(self, event: str) -> int:
        """Occurrences of one event kind."""
        return sum(1 for record in self.events if record["event"] == event)

    def kinds(self) -> list[str]:
        """Distinct event kinds, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.events:
            seen.setdefault(record["event"], None)
        return list(seen)

    def flush(self) -> Path | None:
        """Atomically (re)write the log file; returns its path (or None)."""
        if self.path is None:
            return None
        with self._lock:
            lines = [json.dumps(record, sort_keys=True) for record in self.events]
        atomic_write_text(self.path, "".join(line + "\n" for line in lines))
        return self.path

    @staticmethod
    def load(path: str | Path) -> list[dict]:
        """Parse a flushed event log back into records.

        Raises:
            ValueError: on a non-JSON line or an unsupported schema
                version (the error names the file and line).
        """
        records = []
        for lineno, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), 1
        ):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"event log {path}:{lineno} is corrupt: {exc}") from exc
            if record.get("v") != ELASTIC_EVENT_VERSION:
                raise ValueError(
                    f"event log {path}:{lineno} has schema version "
                    f"{record.get('v')!r} (expected {ELASTIC_EVENT_VERSION})"
                )
            records.append(record)
        return records


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def resolve_task(kind: str) -> Callable[[Any], Any]:
    """Resolve a ``"module.path:function"`` task kind to its callable.

    Raises:
        ValueError: on a malformed kind string.
        ImportError / AttributeError: when the target does not exist.
    """
    module_name, sep, attr = kind.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(f"task kind {kind!r} is not 'module.path:function'")
    return getattr(importlib.import_module(module_name), attr)


def _apply_worker_faults(faults: dict | None, task_id: int, lease: int, stop_beats) -> None:
    """Fire any injected fault targeting this (task, lease) in the worker.

    Faults only fire on lease 0 — a re-dispatched lease must succeed, or
    chaos runs would never terminate.  The hang fault stops the
    heartbeat thread *first*, modeling a fully wedged process (e.g. a
    native loop holding the GIL), so detection flows through the
    supervisor's heartbeat-miss path as designed.
    """
    if not faults or lease != 0:
        return
    if faults.get("straggle_task") == task_id:
        time.sleep(float(faults.get("straggle_seconds", 0.5)))
    if faults.get("hang_task") == task_id:
        stop_beats.set()
        time.sleep(_HANG_SECONDS)
    if faults.get("kill_task") == task_id:
        os.kill(os.getpid(), signal.SIGKILL)


def _worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    beat_queue,
    heartbeat_interval: float,
    faults: dict | None,
) -> None:
    """Worker process entry: beat, take leases, return results."""
    stop_beats = threading.Event()

    def beat_loop() -> None:
        while not stop_beats.wait(heartbeat_interval):
            try:
                beat_queue.put(("beat", worker_id))
            except Exception:
                return  # supervisor gone; the process is being torn down

    beat_queue.put(("beat", worker_id))
    threading.Thread(
        target=beat_loop, name=f"elastic-beat-{worker_id}", daemon=True
    ).start()

    while True:
        message = task_queue.get()
        if message is None:
            return
        task_id, lease, kind, payload = message
        try:
            _apply_worker_faults(faults, task_id, lease, stop_beats)
            result = resolve_task(kind)(payload)
        except BaseException as exc:  # noqa: BLE001 - must never kill the loop
            result_queue.put(
                ("fail", worker_id, task_id, lease, f"{type(exc).__name__}: {exc}")
            )
        else:
            result_queue.put(("done", worker_id, task_id, lease, result))


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------


class _Task:
    """Supervisor-side state of one submitted task."""

    __slots__ = ("task_id", "payload", "status", "failures", "leases", "running", "speculated")

    def __init__(self, task_id: int, payload: Any) -> None:
        self.task_id = task_id
        self.payload = payload
        self.status = "pending"  # pending | running | done | failed
        self.failures = 0
        self.leases = 0  # next lease number to issue
        self.running: dict[int, tuple[int, float]] = {}  # lease -> (worker, t0)
        self.speculated = False


class _Worker:
    """Supervisor-side state of one worker process."""

    __slots__ = ("worker_id", "proc", "queue", "last_beat", "beats_seen", "spawned_at", "assignment")

    def __init__(self, worker_id: int, proc, queue) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.queue = queue
        self.last_beat = time.monotonic()
        self.beats_seen = 0
        self.spawned_at = self.last_beat
        self.assignment: tuple[int, int] | None = None  # (task_id, lease)


class WorkerPool:
    """Supervised elastic worker pool (see the module docstring).

    Args:
        config: supervisor knobs.
        worker_faults: picklable injected-fault spec for the workers
            (from :meth:`~repro.resilience.faults.FaultPlan.worker_faults`),
            or None for a clean run.
        events: event log to emit into (a fresh in-memory log by default).
        quarantine_dir: directory for the poison-task ledger
            (``quarantine.jsonl``, same format as the ingest ledger);
            None keeps quarantine records in events/counters only.
    """

    def __init__(
        self,
        config: ElasticConfig,
        worker_faults: dict | None = None,
        events: SupervisorEventLog | None = None,
        quarantine_dir: str | Path | None = None,
    ) -> None:
        self.config = config
        self.worker_faults = worker_faults
        self.events = events if events is not None else SupervisorEventLog()
        self.quarantine_dir = Path(quarantine_dir) if quarantine_dir else None
        registry = get_registry()
        self._counters = {
            name: registry.counter(f"resilience.elastic.{name}")
            for name in (
                "spawns",
                "heartbeat_misses",
                "deaths",
                "redispatches",
                "lease_expiries",
                "speculations",
                "duplicates_ignored",
                "quarantined",
                "degraded",
                "tasks_completed",
                "cancelled",
            )
        }

    # -- public API ------------------------------------------------------

    def run(self, kind: str, payloads: list) -> dict[int, Any]:
        """Execute ``kind`` over every payload; results by task index.

        Tasks may complete in any order and on any worker (or twice, under
        speculation) — the returned dict is keyed by submission index, so
        callers merge in canonical order regardless.

        Raises:
            TaskQuarantinedError: when any task exhausted its leases
                (partial results ride on the exception).
            ElasticError: on supervisor-level failure (e.g. run timeout).
        """
        resolve_task(kind)  # fail fast in the parent on a bad kind
        tasks = [_Task(index, payload) for index, payload in enumerate(payloads)]
        if not tasks:
            return {}
        try:
            if not self.config.process_mode:
                results: dict[int, Any] = {}
                self._run_inline(kind, tasks, results, reason="workers<=1")
            else:
                results = self._run_supervised(kind, tasks)
        finally:
            if self.events.path is not None:
                self.events.flush()
        failed = sorted(t.task_id for t in tasks if t.status == "failed")
        if failed:
            ledger_path = self._flush_quarantine(kind, tasks)
            raise TaskQuarantinedError(kind, failed, ledger_path, results)
        return results

    # -- degraded (in-process) execution ---------------------------------

    def _run_inline(
        self, kind: str, tasks: list[_Task], results: dict[int, Any], reason: str
    ) -> None:
        """Deterministic sequential fallback; never injects faults."""
        remaining = [t for t in tasks if t.status not in ("done", "failed")]
        self.events.emit("degrade", reason=reason, remaining=len(remaining))
        self._counters["degraded"].inc()
        fn = resolve_task(kind)
        for task in remaining:
            try:
                results[task.task_id] = fn(task.payload)
            except Exception as exc:  # deterministic failure: straight to poison
                task.failures += 1
                self._quarantine(task, f"{type(exc).__name__}: {exc}")
            else:
                task.status = "done"
                self._counters["tasks_completed"].inc()

    # -- supervised (real-process) execution -----------------------------

    def _context(self):
        if self.config.start_method is not None:
            return mp.get_context(self.config.start_method)
        methods = mp.get_all_start_methods()
        return mp.get_context("fork" if "fork" in methods else None)

    def _run_supervised(self, kind: str, tasks: list[_Task]) -> dict[int, Any]:
        try:
            ctx = self._context()
            result_queue = ctx.Queue()
            beat_queue = ctx.Queue()
        except Exception as exc:
            results: dict[int, Any] = {}
            self._run_inline(kind, tasks, results, reason=f"no-multiprocessing: {exc}")
            return results

        workers: dict[int, _Worker] = {}
        state = {"next_worker_id": 0}

        def spawn() -> _Worker | None:
            worker_id = state["next_worker_id"]
            try:
                task_queue = ctx.Queue()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        worker_id,
                        task_queue,
                        result_queue,
                        beat_queue,
                        self.config.heartbeat_interval,
                        self.worker_faults,
                    ),
                    daemon=True,
                    name=f"elastic-worker-{worker_id}",
                )
                proc.start()
            except Exception:
                return None
            state["next_worker_id"] += 1
            worker = _Worker(worker_id, proc, task_queue)
            workers[worker_id] = worker
            self.events.emit("spawn", worker=worker_id, pid=proc.pid)
            self._counters["spawns"].inc()
            return worker

        for _ in range(min(self.config.workers, len(tasks))):
            if spawn() is None:
                break
        if not workers:
            results = {}
            self._run_inline(kind, tasks, results, reason="process spawn unavailable")
            return results

        results = {}
        try:
            self._supervise(kind, tasks, results, workers, spawn, result_queue, beat_queue)
        finally:
            self._shutdown(workers, tasks)
        return results

    def _supervise(
        self, kind, tasks, results, workers, spawn, result_queue, beat_queue
    ) -> None:
        """The supervisor loop: dispatch, drain, detect, re-dispatch."""
        config = self.config
        pending: deque[_Task] = deque(tasks)
        deadline = time.monotonic() + config.run_timeout
        poll = min(config.heartbeat_interval / 2, 0.05)

        def dispatch(worker: _Worker, task: _Task, speculative: bool = False) -> None:
            lease = task.leases
            task.leases += 1
            now = time.monotonic()
            task.running[lease] = (worker.worker_id, now)
            task.status = "running"
            worker.assignment = (task.task_id, lease)
            self._note_armed_faults(task.task_id, lease)
            worker.queue.put((task.task_id, lease, kind, task.payload))
            if speculative:
                task.speculated = True
                self.events.emit(
                    "speculate", task=task.task_id, lease=lease, worker=worker.worker_id
                )
                self._counters["speculations"].inc()
            else:
                self.events.emit(
                    "dispatch", task=task.task_id, lease=lease, worker=worker.worker_id
                )

        def fail_lease(task: _Task, lease: int, reason: str) -> None:
            """A lease died/expired: re-dispatch the task or quarantine it."""
            task.running.pop(lease, None)
            if task.status in ("done", "failed"):
                return
            task.failures += 1
            if task.failures >= config.max_task_leases:
                self._quarantine(task, reason)
                return
            if not task.running:
                task.status = "pending"
            pending.appendleft(task)
            self.events.emit(
                "re-dispatch", task=task.task_id, failures=task.failures, reason=reason
            )
            self._counters["redispatches"].inc()

        def on_worker_death(worker: _Worker, reason: str) -> None:
            self.events.emit(
                "death", worker=worker.worker_id, pid=worker.proc.pid, reason=reason
            )
            self._counters["deaths"].inc()
            if worker.proc.is_alive():
                worker.proc.terminate()
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
            assignment = worker.assignment
            del workers[worker.worker_id]
            if assignment is not None:
                task_id, lease = assignment
                fail_lease(tasks[task_id], lease, reason)
            if state_needs_worker() and state_can_respawn():
                self._respawns_used += 1
                spawn()

        self._respawns_used = 0

        def state_can_respawn() -> bool:
            return self._respawns_used < config.max_respawns

        def state_needs_worker() -> bool:
            outstanding = sum(1 for t in tasks if t.status in ("pending", "running"))
            return outstanding > 0 and len(workers) < config.workers

        while any(t.status in ("pending", "running") for t in tasks):
            if time.monotonic() > deadline:
                raise ElasticError(
                    f"elastic run exceeded run_timeout={config.run_timeout}s "
                    f"({sum(1 for t in tasks if t.status == 'done')}/{len(tasks)} done)"
                )

            # Drain heartbeats (non-blocking).
            while True:
                try:
                    _, worker_id = beat_queue.get_nowait()
                except queue_mod.Empty:
                    break
                worker = workers.get(worker_id)
                if worker is not None:
                    worker.last_beat = time.monotonic()
                    worker.beats_seen += 1

            # Drain results; block briefly on the first read as the loop's pace.
            blocking = True
            while True:
                try:
                    message = (
                        result_queue.get(timeout=poll)
                        if blocking
                        else result_queue.get_nowait()
                    )
                except queue_mod.Empty:
                    break
                blocking = False
                status, worker_id, task_id, lease, payload = message
                worker = workers.get(worker_id)
                if worker is not None and worker.assignment == (task_id, lease):
                    worker.assignment = None
                    worker.last_beat = time.monotonic()
                task = tasks[task_id]
                task.running.pop(lease, None)
                if task.status in ("done", "failed"):
                    self.events.emit(
                        "duplicate-ignored", task=task_id, lease=lease, worker=worker_id
                    )
                    self._counters["duplicates_ignored"].inc()
                    continue
                if status == "done":
                    task.status = "done"
                    results[task_id] = payload
                    self.events.emit("complete", task=task_id, lease=lease, worker=worker_id)
                    self._counters["tasks_completed"].inc()
                else:
                    fail_lease(task, lease, f"task error: {payload}")

            now = time.monotonic()

            # Liveness: exited processes and heartbeat silence.
            for worker in list(workers.values()):
                if not worker.proc.is_alive():
                    on_worker_death(worker, "exited")
                    continue
                grace = (
                    config.spawn_grace
                    if worker.beats_seen == 0
                    else config.death_after
                )
                silence = now - worker.last_beat
                if silence > config.death_after and worker.beats_seen > 0:
                    self.events.emit(
                        "heartbeat-miss",
                        worker=worker.worker_id,
                        silence=round(silence, 4),
                        budget=config.heartbeat_miss_budget,
                    )
                    self._counters["heartbeat_misses"].inc(config.heartbeat_miss_budget)
                    on_worker_death(worker, "heartbeat-miss")
                elif worker.beats_seen == 0 and silence > grace:
                    on_worker_death(worker, "never-beat")

            # Lease expiry: live workers stuck on one task too long.
            for task in tasks:
                if task.status != "running":
                    continue
                for lease, (worker_id, started) in list(task.running.items()):
                    if now - started <= config.lease_timeout:
                        continue
                    self.events.emit(
                        "lease-expiry", task=task.task_id, lease=lease, worker=worker_id
                    )
                    self._counters["lease_expiries"].inc()
                    worker = workers.get(worker_id)
                    if worker is not None and worker.assignment == (task.task_id, lease):
                        # The worker is wedged on this lease: recycle it.
                        on_worker_death(worker, "lease-expiry")
                    else:
                        fail_lease(task, lease, "lease expired")

            # Dispatch pending work to idle workers.
            idle = [w for w in workers.values() if w.assignment is None]
            while pending and idle:
                task = pending.popleft()
                if task.status in ("done", "failed"):
                    continue
                dispatch(idle.pop(), task)

            # Speculation: duplicate the oldest outstanding task.
            if config.speculate and not pending and idle:
                candidates = [
                    t
                    for t in tasks
                    if t.status == "running" and not t.speculated and len(t.running) == 1
                ]
                if candidates:
                    oldest = min(
                        candidates, key=lambda t: next(iter(t.running.values()))[1]
                    )
                    started = next(iter(oldest.running.values()))[1]
                    if now - started >= config.speculate_after:
                        dispatch(idle.pop(), oldest, speculative=True)

            # All workers gone and no respawn budget: finish inline.
            if not workers:
                self._run_inline(kind, tasks, results, reason="worker pool exhausted")
                return

    # -- shared helpers --------------------------------------------------

    def _note_armed_faults(self, task_id: int, lease: int) -> None:
        """Count injected worker faults at arm time (the child can't)."""
        if not self.worker_faults or lease != 0:
            return
        registry = get_registry()
        for key, kind in (
            ("kill_task", "kill"),
            ("hang_task", "hang"),
            ("straggle_task", "straggle"),
        ):
            if self.worker_faults.get(key) == task_id:
                registry.counter(f"faults.worker_{kind}.injected").inc()
                self.events.emit("fault-armed", task=task_id, kind=kind)

    def _quarantine(self, task: _Task, reason: str) -> None:
        task.status = "failed"
        self.events.emit(
            "quarantine", task=task.task_id, failures=task.failures, reason=reason
        )
        self._counters["quarantined"].inc()

    def _flush_quarantine(self, kind: str, tasks: list[_Task]) -> Path | None:
        """Write poison tasks into a guards-format quarantine ledger."""
        failed = [t for t in tasks if t.status == "failed"]
        if self.quarantine_dir is None or not failed:
            return None
        from repro.resilience.guards import QuarantineLedger

        ledger = QuarantineLedger(self.quarantine_dir)
        for task in failed:
            ledger.record(
                task.task_id,
                ["elastic.poison_task"],
                detail={"kind": kind, "failures": task.failures},
            )
        return ledger.flush()

    def _shutdown(self, workers: dict[int, _Worker], tasks: list[_Task]) -> None:
        """Stop every worker; terminate stragglers (cancelled duplicates)."""
        for worker in workers.values():
            try:
                worker.queue.put(None)
            except Exception:
                pass
        for worker in workers.values():
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                if worker.assignment is not None:
                    self.events.emit(
                        "cancel", worker=worker.worker_id, task=worker.assignment[0]
                    )
                    self._counters["cancelled"].inc()
                worker.proc.terminate()
                worker.proc.join(timeout=2.0)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(timeout=1.0)
            for q in (worker.queue,):
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:
                    pass
