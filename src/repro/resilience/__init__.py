"""Resilience: checkpoint/resume, fault injection, and recovery policies.

FAE's value proposition is long training runs over huge embedding
tables; at that horizon failures are routine, not exceptional.  This
package is the robustness backbone the rest of the stack leans on:

- :mod:`repro.resilience.atomic` — temp-file + ``os.replace`` writes so
  interrupted runs never leave truncated artifacts;
- :mod:`repro.resilience.checkpoint` — atomic, SHA-256-checksummed
  training snapshots (parameters, scheduler state, cursors, RNG state)
  with corruption detection and newest-good resolution for resume;
- :mod:`repro.resilience.journal` — a write-ahead ``refresh.journal``
  that turns hot-cache turnover into a crash-consistent transaction
  (intent before mutation, commit after ``repack_pools``, deterministic
  roll-forward verification on resume);
- :mod:`repro.resilience.faults` — a seedable :class:`FaultPlan` that
  deterministically injects transient collective failures, permanent
  rank deaths, loader hiccups, hot-replica evictions, and SIGKILL crash
  points targeted at refresh phases / checkpoint boundaries / steps;
- :mod:`repro.resilience.retry` — bounded exponential-backoff retry
  (with seeded, reproducible jitter) around transient faults;
- :mod:`repro.resilience.elastic` — a supervised real-process worker
  pool: heartbeat liveness, bounded task leases with poison-task
  quarantine, speculative duplicate execution for stragglers, and
  graceful degradation to deterministic in-process execution;
- :mod:`repro.resilience.guards` — data-integrity guardrails: ingest
  validation with per-field ``raise``/``clamp``/``quarantine`` policies
  and an atomic JSONL quarantine ledger, NaN/loss-spike detection with
  checkpoint rollback, and a serving circuit breaker.

Recovery policies live where the state lives: the collectives retry
in :class:`~repro.dist.collectives.ProcessGroup`, the distributed FAE
trainer shrinks the world on permanent rank death, and both trainers
degrade hot execution to the cold (CPU-master) path when the hot
replicas are evicted.  Every fault, retry, recovery, and degradation is
emitted through :mod:`repro.obs`.
"""

from repro.resilience.atomic import atomic_write, atomic_write_text
from repro.resilience.elastic import (
    ElasticConfig,
    ElasticError,
    SupervisorEventLog,
    TaskQuarantinedError,
    WorkerPool,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointManager,
    TrainerCheckpoint,
    capture_training_state,
    latest_checkpoint,
    load_checkpoint,
    read_checkpoint_meta,
    restore_training_state,
    save_checkpoint,
    verify_checkpoint,
)
from repro.resilience.journal import JOURNAL_VERSION, JournalError, RefreshJournal
from repro.resilience.guards import (
    GUARD_POLICIES,
    CircuitBreaker,
    GuardAbort,
    GuardError,
    IngestPolicy,
    IngestValidationError,
    LoadShedError,
    LossSpikeError,
    NumericGuard,
    NumericGuardConfig,
    QuarantineLedger,
    validate_chunk,
)
from repro.resilience.faults import (
    FaultError,
    FaultPlan,
    LoaderHiccup,
    PermanentRankFailure,
    TransientCollectiveError,
)
from repro.resilience.retry import (
    RETRYABLE_FAULTS,
    RetryExhaustedError,
    RetryPolicy,
    with_retries,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointManager",
    "CircuitBreaker",
    "ElasticConfig",
    "ElasticError",
    "FaultError",
    "FaultPlan",
    "GUARD_POLICIES",
    "GuardAbort",
    "GuardError",
    "IngestPolicy",
    "IngestValidationError",
    "JOURNAL_VERSION",
    "JournalError",
    "LoadShedError",
    "LoaderHiccup",
    "LossSpikeError",
    "NumericGuard",
    "NumericGuardConfig",
    "PermanentRankFailure",
    "QuarantineLedger",
    "RefreshJournal",
    "RETRYABLE_FAULTS",
    "RetryExhaustedError",
    "RetryPolicy",
    "SupervisorEventLog",
    "TaskQuarantinedError",
    "TrainerCheckpoint",
    "TransientCollectiveError",
    "atomic_write",
    "atomic_write_text",
    "validate_chunk",
    "capture_training_state",
    "latest_checkpoint",
    "load_checkpoint",
    "read_checkpoint_meta",
    "restore_training_state",
    "save_checkpoint",
    "verify_checkpoint",
    "with_retries",
    "WorkerPool",
]
