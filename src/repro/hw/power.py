"""GPU power accounting (paper Table VI).

The paper measures 5.3-8.8% lower *per-GPU average power* under FAE and
attributes it to reduced CPU-GPU communication.  The mechanism this model
encodes: during host-side phases the GPU does not power-gate — the CUDA
runtime busy-waits (spin polling on stream sync) and the clocks stay
raised, which draws *more* than steady streamed compute; PCIe DMA phases
additionally light up the copy engines and PHY.  FAE converts most
busy-wait and transfer time into efficient bulk compute, lowering the
time-weighted average draw even though utilization rises.

Phase power states:

- ``P_WAIT`` (64 W): GPU spin-waiting on CPU embedding/optimizer work.
- ``P_TRANSFER`` (68 W): PCIe DMA active.
- ``P_COMPUTE`` (56 W): steady GEMM/gather execution.
- ``P_NVLINK`` (60 W): NCCL collective on NVLink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.simulator import (
    EpochTimeline,
    GPU_COMPUTE_PHASES,
    GPU_WAIT_PHASES,
    TRANSFER_PHASES,
)

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Phase-weighted per-GPU power model.

    Attributes:
        wait_watts: busy-wait draw during host phases.
        transfer_watts: PCIe-active draw.
        compute_watts: steady kernel-execution draw.
        nvlink_watts: collective-communication draw.
    """

    wait_watts: float = 64.0
    transfer_watts: float = 68.0
    compute_watts: float = 56.0
    nvlink_watts: float = 60.0

    def _phase_watts(self, phase: str) -> float:
        if phase in GPU_WAIT_PHASES:
            return self.wait_watts
        if phase in TRANSFER_PHASES:
            return self.transfer_watts
        if phase == "allreduce":
            return self.nvlink_watts
        if phase in GPU_COMPUTE_PHASES:
            return self.compute_watts
        return self.compute_watts

    def energy_joules(self, timeline: EpochTimeline) -> float:
        """Per-GPU energy over one epoch."""
        return sum(
            seconds * self._phase_watts(phase)
            for phase, seconds in timeline.breakdown.phases.items()
        )

    def average_watts(self, timeline: EpochTimeline) -> float:
        """Time-weighted average per-GPU power (Table VI's metric)."""
        total = timeline.seconds
        if total == 0:
            return 0.0
        return self.energy_joules(timeline) / total

    def reduction_percent(self, baseline: EpochTimeline, fae: EpochTimeline) -> float:
        """Power reduction of FAE vs baseline, in percent."""
        base = self.average_watts(baseline)
        if base == 0:
            return 0.0
        return 100.0 * (base - self.average_watts(fae)) / base
