"""Device and interconnect specifications (paper Table II).

Peak numbers come from vendor datasheets; the *efficiency* fields encode
how much of peak real recommendation kernels achieve (small-GEMM MLPs,
random-gather embedding lookups) and are the calibration surface of the
cost model.  Per-operator launch overheads model framework dispatch cost,
which dominates CPU-side embedding work at small batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "LinkSpec", "XEON_4116", "TESLA_V100", "PCIE3_X16", "NVLINK2"]


@dataclass(frozen=True)
class DeviceSpec:
    """A compute device.

    Attributes:
        name: human-readable identifier.
        peak_flops: peak fp32 FLOP/s.
        mem_bandwidth: peak memory bandwidth, bytes/s.
        mem_capacity: device memory, bytes.
        gemm_efficiency: fraction of peak FLOP/s realized on the MLP GEMMs.
        gather_efficiency: fraction of peak bandwidth realized on random
            row gathers (embedding lookups / optimizer scatters).
        op_overhead: per-operator dispatch latency, seconds.
        row_access_cost: per-row cost of random embedding-row operations,
            seconds/row.  On CPUs this is framework-dominated (index
            checks, cache misses: ~0.2 us/row in torch's EmbeddingBag);
            on GPUs thousands of rows gather in parallel (~2 ns/row).
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    mem_capacity: int
    gemm_efficiency: float
    gather_efficiency: float
    op_overhead: float
    row_access_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0 or self.mem_capacity <= 0:
            raise ValueError(f"{self.name}: peak numbers must be positive")
        if not 0 < self.gemm_efficiency <= 1 or not 0 < self.gather_efficiency <= 1:
            raise ValueError(f"{self.name}: efficiencies must be in (0, 1]")
        if self.op_overhead < 0:
            raise ValueError(f"{self.name}: op_overhead must be non-negative")

    def gemm_seconds(self, flops: float, num_ops: int = 1) -> float:
        """Time to execute ``flops`` worth of GEMM across ``num_ops`` kernels."""
        return flops / (self.peak_flops * self.gemm_efficiency) + num_ops * self.op_overhead

    def gather_seconds(self, bytes_moved: float, num_ops: int = 1, rows: float = 0.0) -> float:
        """Time for random row gathers/scatters.

        Three additive terms: bandwidth (bytes through the memory system
        at gather efficiency), per-row framework/cache-miss cost, and
        per-operator dispatch overhead.
        """
        return (
            bytes_moved / (self.mem_bandwidth * self.gather_efficiency)
            + rows * self.row_access_cost
            + num_ops * self.op_overhead
        )

    def stream_seconds(self, bytes_moved: float) -> float:
        """Time for a sequential streaming access at full bandwidth."""
        return bytes_moved / self.mem_bandwidth


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point interconnect.

    Attributes:
        name: identifier.
        bandwidth: effective bytes/s in one direction.
        latency: per-transfer setup latency, seconds (driver + DMA setup;
            dominates the small, frequent transfers recommendation
            training performs).
    """

    name: str
    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")

    def transfer_seconds(self, bytes_moved: float, num_transfers: int = 1) -> float:
        """Time to move ``bytes_moved`` in ``num_transfers`` messages."""
        return bytes_moved / self.bandwidth + num_transfers * self.latency


#: Intel Xeon Silver 4116: 12C/24T Skylake-SP @ 2.1 GHz.  ~0.6 TFLOP/s
#: effective fp32 with AVX-512 across cores; ~60 GB/s sustained DRAM
#: bandwidth on 6 channels of DDR4-2666.  High per-op overhead reflects
#: framework dispatch on CPU tensors.
XEON_4116 = DeviceSpec(
    name="xeon-silver-4116",
    peak_flops=0.6e12,
    mem_bandwidth=60e9,
    mem_capacity=768 * 2**30,
    gemm_efficiency=0.55,
    gather_efficiency=0.18,
    op_overhead=100e-6,
    row_access_cost=0.13e-6,
)

#: NVIDIA Tesla V100 (SXM2 16 GB): 14 TFLOP/s fp32, 900 GB/s HBM2.
#: Recommendation MLPs are small GEMMs (~20-30% of peak); gathers hit
#: roughly half of HBM bandwidth; ~18 us kernel-launch overhead.
TESLA_V100 = DeviceSpec(
    name="tesla-v100-16gb",
    peak_flops=14e12,
    mem_bandwidth=900e9,
    mem_capacity=16 * 2**30,
    gemm_efficiency=0.28,
    gather_efficiency=0.5,
    op_overhead=18e-6,
    row_access_cost=2e-9,
)

#: PCIe 3.0 x16: ~12 GB/s effective of the 15.75 GB/s raw; ~0.45 ms
#: per-transfer setup (pinned-buffer staging + driver).
PCIE3_X16 = LinkSpec(name="pcie3-x16", bandwidth=12e9, latency=450e-6)

#: NVLink 2.0 (per V100, aggregated): ~120 GB/s effective for NCCL
#: collectives with ~35 us ring-setup latency.
NVLINK2 = LinkSpec(name="nvlink2", bandwidth=120e9, latency=35e-6)
