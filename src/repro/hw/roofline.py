"""Roofline analysis: why embeddings belong to memory and MLPs to compute.

The paper's whole design rests on a roofline argument it never draws:
embedding ops have arithmetic intensity near zero (pure gathers — a few
flops per byte moved), so they are memory-bound everywhere and their
*placement* is decided by capacity and transfer costs; MLP GEMMs at
recommendation batch sizes sit near the compute roof of a GPU but above
the CPU's, so the GPU keeps them regardless.  This module computes those
positions from the workload character and the device specs, giving the
cost model a first-principles cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import DeviceSpec
from repro.hw.workload import WorkloadCharacter

__all__ = ["RooflinePoint", "roofline_point", "analyze_workload"]


@dataclass(frozen=True)
class RooflinePoint:
    """One operator placed on a device's roofline.

    Attributes:
        name: operator label.
        flops: floating-point operations per execution.
        bytes_moved: bytes through the memory system per execution.
        intensity: flops / bytes (arithmetic intensity).
        attainable_flops: roofline value min(peak, intensity x bandwidth).
        bound: "memory" or "compute".
        time_seconds: execution time implied by the roofline.
    """

    name: str
    flops: float
    bytes_moved: float
    intensity: float
    attainable_flops: float
    bound: str
    time_seconds: float


def roofline_point(name: str, flops: float, bytes_moved: float, device: DeviceSpec) -> RooflinePoint:
    """Place one operator on a device's (naive) roofline.

    Peak numbers only — efficiency factors belong to the cost model; the
    roofline gives the bound's *identity*, not a calibrated time.
    """
    if flops < 0 or bytes_moved <= 0:
        raise ValueError("flops must be non-negative and bytes positive")
    intensity = flops / bytes_moved
    ridge = device.peak_flops / device.mem_bandwidth
    attainable = min(device.peak_flops, intensity * device.mem_bandwidth)
    bound = "compute" if intensity >= ridge else "memory"
    if flops > 0:
        time = flops / attainable
    else:
        time = bytes_moved / device.mem_bandwidth
    return RooflinePoint(
        name=name,
        flops=flops,
        bytes_moved=bytes_moved,
        intensity=intensity,
        attainable_flops=attainable,
        bound=bound,
        time_seconds=time,
    )


def analyze_workload(
    workload: WorkloadCharacter, device: DeviceSpec, batch_size: int
) -> list[RooflinePoint]:
    """Roofline points for a workload's two op classes on one device.

    Returns points for the pooled embedding lookup and the MLP stack of
    one ``batch_size`` mini-batch.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    lookup_bytes = batch_size * workload.lookup_bytes_per_sample
    # A mean-pooled gather performs ~1 add per element read.
    lookup_flops = lookup_bytes / 4.0

    mlp_flops = 2.0 * workload.mlp_macs_per_sample * batch_size
    # GEMM traffic: weights read once per batch + activations in/out; for
    # recommendation MLPs weights dominate at small batch.
    mlp_bytes = workload.dense_param_bytes + 8.0 * batch_size * workload.pooled_bytes_per_sample

    return [
        roofline_point("embedding_lookup", lookup_flops, lookup_bytes, device),
        roofline_point("mlp", mlp_flops, mlp_bytes, device),
    ]
