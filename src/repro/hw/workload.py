"""Workload characterization for the hardware simulator.

A :class:`WorkloadCharacter` is the distilled description of a
(model, dataset, FAE plan) triple the simulator consumes: per-sample
compute and lookup volumes, hot-input fraction, hot-bag footprint, and
scheduler behaviour.  :func:`characterize` derives one analytically at
*paper scale* — the Zipf coverage math replaces generating 45-80M-sample
logs — while :func:`characterize_from_plan` builds one from an actual
(scaled) :class:`~repro.core.pipeline.FAEPlan` so measured and analytic
paths share the same simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import dataset_by_name
from repro.data.schema import DatasetSchema
from repro.data.zipf import (
    zipf_rows_above_probability,
    zipf_top_k_coverage,
)
from repro.models.zoo import ModelSpec, build_model

__all__ = ["WorkloadCharacter", "characterize", "characterize_from_plan", "analytic_hot_stats"]


@dataclass(frozen=True)
class WorkloadCharacter:
    """Everything the cost model needs to price one workload.

    Attributes:
        name: workload id (e.g. "RMC2").
        num_samples: training inputs per epoch.
        base_batch_size: mini-batch size on 1 GPU (weak-scaled by the
            simulator for multi-GPU runs).
        mlp_macs_per_sample: forward multiply-accumulates per sample in
            the neural-network portion (backward is derived).
        num_mlp_layers: Linear layer count (per-op overhead accounting).
        dense_param_bytes: MLP/attention parameter bytes (all-reduce and
            GPU optimizer volume).
        lookup_rows_per_sample: embedding rows gathered per sample.
        lookup_bytes_per_sample: bytes of embedding rows per sample.
        pooled_bytes_per_sample: bytes of *pooled* per-table activations a
            sample ships between CPU and GPU in the baseline (one vector
            per table regardless of multiplicity).
        num_tables: embedding table count (per-op overheads).
        hot_fraction: fraction of inputs classified hot.
        hot_bytes: per-GPU hot-bag footprint in bytes.
        total_embedding_bytes: full embedding size (CPU resident).
        unique_row_factor: fraction of a batch's lookups hitting distinct
            rows (optimizer scatter volume; duplicates coalesce).
        dispatch_seconds: host-side framework dispatch time per mini-batch,
            paid in every execution mode.  Small for DLRM; large for the
            reference TBSM, whose per-timestep Python loop launches
            hundreds of tiny ops per batch.
        cpu_ops_per_phase: embedding-operator dispatches per CPU phase
            (DLRM: one EmbeddingBag per table; TBSM: one per table per
            timestep).
        transfer_events: PCIe messages per transfer direction per batch
            (DLRM ships one fused buffer; TBSM's sequence pipeline chunks
            its activations).
    """

    name: str
    num_samples: int
    base_batch_size: int
    mlp_macs_per_sample: float
    num_mlp_layers: int
    dense_param_bytes: float
    lookup_rows_per_sample: float
    lookup_bytes_per_sample: float
    pooled_bytes_per_sample: float
    num_tables: int
    hot_fraction: float
    hot_bytes: float
    total_embedding_bytes: float
    unique_row_factor: float = 0.7
    dispatch_seconds: float = 8e-3
    cpu_ops_per_phase: int = 1
    transfer_events: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.hot_fraction <= 1:
            raise ValueError(f"hot_fraction must be in [0, 1], got {self.hot_fraction}")
        if self.num_samples <= 0 or self.base_batch_size <= 0:
            raise ValueError("num_samples and base_batch_size must be positive")
        if not 0 < self.unique_row_factor <= 1:
            raise ValueError("unique_row_factor must be in (0, 1]")

    def batches_per_epoch(self, num_gpus: int) -> int:
        """Weak scaling: global batch = base * k, so batches shrink by k."""
        return max(1, self.num_samples // (self.base_batch_size * num_gpus))


def analytic_hot_stats(
    schema: DatasetSchema,
    gpu_memory_budget: int,
    large_table_min_bytes: int = 1 << 20,
) -> tuple[float, float]:
    """Analytic (hot_fraction, hot_bytes) at a GPU budget.

    Mirrors the calibrator's semantics on the generative model itself: a
    common access-probability threshold ``t`` is lowered until the hot
    rows (rows with ground-truth probability >= t, plus all small tables)
    no longer fit the budget; the feasible threshold's coverage product
    over tables gives the hot-input fraction.
    """
    small_bytes = 0
    large = []
    for spec in schema.tables:
        if spec.size_bytes < large_table_min_bytes:
            small_bytes += spec.size_bytes
        else:
            large.append(spec)
    if small_bytes > gpu_memory_budget:
        raise ValueError("small tables alone exceed the GPU budget")

    def hot_bytes_at(threshold: float) -> float:
        total = float(small_bytes)
        for spec in large:
            rows = zipf_rows_above_probability(spec.num_rows, spec.zipf_exponent, threshold)
            total += rows * spec.dim * 4
        return total

    lo, hi = 1e-18, 1.0
    for _ in range(80):
        mid = float(np.sqrt(lo * hi))
        if hot_bytes_at(mid) > gpu_memory_budget:
            lo = mid
        else:
            hi = mid
    threshold = hi

    fraction = 1.0
    for spec in large:
        rows = zipf_rows_above_probability(spec.num_rows, spec.zipf_exponent, threshold)
        coverage = zipf_top_k_coverage(spec.num_rows, spec.zipf_exponent, rows)
        fraction *= coverage**spec.multiplicity
    return fraction, hot_bytes_at(threshold)


def characterize(
    spec: ModelSpec,
    num_gpus: int = 1,
    gpu_memory_budget: int = 256 * 2**20,
    hot_fraction: float | None = None,
) -> WorkloadCharacter:
    """Characterize a Table I workload analytically at paper scale.

    Args:
        spec: workload (RMC1/RMC2/RMC3).
        num_gpus: unused for the character itself (batch scaling happens
            in the simulator) but kept for API symmetry.
        gpu_memory_budget: the FAE budget ``L``.
        hot_fraction: override the analytic hot fraction (ablations).
    """
    schema = dataset_by_name(spec.dataset, "paper")
    # A tiny instantiation provides exact MLP shapes/flops without
    # allocating paper-scale tables.
    tiny_schema = dataset_by_name(spec.dataset, "tiny")
    model = build_model(spec, schema=tiny_schema)

    if hot_fraction is None:
        fraction, hot_bytes = analytic_hot_stats(schema, gpu_memory_budget)
    else:
        fraction = hot_fraction
        _, hot_bytes = analytic_hot_stats(schema, gpu_memory_budget)

    lookup_rows = float(schema.lookups_per_sample())
    lookup_bytes = float(sum(t.multiplicity * t.dim * 4 for t in schema.tables))
    pooled_bytes = float(sum(t.dim * 4 for t in schema.tables))
    dense_param_bytes = float(sum(p.nbytes for p in model.dense_parameters()))
    num_mlp_layers = sum(
        1 for p in model.dense_parameters() if p.value.ndim == 2
    )

    seq_len = int(getattr(model, "seq_len", 1))
    is_tbsm = spec.model_kind == "tbsm"
    return WorkloadCharacter(
        name=spec.name,
        num_samples=schema.num_samples,
        base_batch_size=spec.base_batch_size,
        mlp_macs_per_sample=float(model.mlp_flops_per_sample()),
        num_mlp_layers=num_mlp_layers,
        dense_param_bytes=dense_param_bytes,
        lookup_rows_per_sample=lookup_rows,
        lookup_bytes_per_sample=lookup_bytes,
        pooled_bytes_per_sample=pooled_bytes,
        num_tables=schema.num_sparse,
        hot_fraction=fraction,
        hot_bytes=float(hot_bytes),
        total_embedding_bytes=float(schema.total_embedding_bytes),
        dispatch_seconds=40e-3 if is_tbsm else 8e-3,
        cpu_ops_per_phase=schema.num_sparse * (6 * (seq_len + 1) if is_tbsm else 1),
        transfer_events=6 if is_tbsm else 1,
    )


def characterize_from_plan(spec: ModelSpec, plan, schema: DatasetSchema) -> WorkloadCharacter:
    """Characterize from a measured :class:`~repro.core.pipeline.FAEPlan`.

    Used by the end-to-end examples so the simulated timing reflects the
    plan actually computed on the (scaled) data.
    """
    model = build_model(spec, schema=schema)
    lookup_bytes = float(sum(t.multiplicity * t.dim * 4 for t in schema.tables))
    seq_len = int(getattr(model, "seq_len", 1))
    is_tbsm = spec.model_kind == "tbsm"
    return WorkloadCharacter(
        name=spec.name,
        num_samples=plan.dataset.num_inputs,
        base_batch_size=plan.dataset.batch_size,
        mlp_macs_per_sample=float(model.mlp_flops_per_sample()),
        num_mlp_layers=sum(1 for p in model.dense_parameters() if p.value.ndim == 2),
        dense_param_bytes=float(sum(p.nbytes for p in model.dense_parameters())),
        lookup_rows_per_sample=float(schema.lookups_per_sample()),
        lookup_bytes_per_sample=lookup_bytes,
        pooled_bytes_per_sample=float(sum(t.dim * 4 for t in schema.tables)),
        num_tables=schema.num_sparse,
        hot_fraction=plan.hot_input_fraction,
        hot_bytes=float(plan.hot_bytes),
        total_embedding_bytes=float(schema.total_embedding_bytes),
        dispatch_seconds=40e-3 if is_tbsm else 8e-3,
        cpu_ops_per_phase=schema.num_sparse * (6 * (seq_len + 1) if is_tbsm else 1),
        transfer_events=6 if is_tbsm else 1,
    )
