"""Cluster topology: one or more servers, each with a CPU and k GPUs.

The paper evaluates a single Table II server (4x V100 on NVLink) but
expects its insights to hold multi-server (SS IV-A.3).  Setting
``num_nodes > 1`` models that scenario: each node contributes its own
CPU (so host-side embedding work parallelizes across nodes) and its own
PCIe links, while gradient all-reduce becomes hierarchical — a fast
NVLink ring within each node plus a slower network ring across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import DeviceSpec, LinkSpec, NVLINK2, PCIE3_X16, TESLA_V100, XEON_4116

__all__ = ["Cluster", "ETHERNET_100G", "INFINIBAND_HDR"]

#: 100 GbE with RoCE: ~10 GB/s effective, ~12 us collective hop latency.
ETHERNET_100G = LinkSpec(name="ethernet-100g", bandwidth=10e9, latency=12e-6)

#: InfiniBand HDR (200 Gb/s): ~22 GB/s effective, ~3 us hop latency.
INFINIBAND_HDR = LinkSpec(name="infiniband-hdr", bandwidth=22e9, latency=3e-6)


@dataclass(frozen=True)
class Cluster:
    """A training cluster.

    Attributes:
        cpu: host CPU spec (one per node).
        gpu: GPU spec (all GPUs identical).
        num_gpus: GPUs per node.
        pcie: CPU <-> GPU link within a node.
        nvlink: GPU <-> GPU link within a node.
        num_nodes: server count; 1 reproduces the paper's testbed.
        network: inter-node link used when ``num_nodes > 1``.
    """

    cpu: DeviceSpec = XEON_4116
    gpu: DeviceSpec = TESLA_V100
    num_gpus: int = 4
    pcie: LinkSpec = PCIE3_X16
    nvlink: LinkSpec = NVLINK2
    num_nodes: int = 1
    network: LinkSpec = ETHERNET_100G

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {self.num_gpus}")
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {self.num_nodes}")

    @property
    def total_gpus(self) -> int:
        """GPUs across the whole cluster."""
        return self.num_gpus * self.num_nodes

    def with_gpus(self, num_gpus: int) -> "Cluster":
        """Same server(s) with a different per-node GPU count (Fig 13)."""
        return Cluster(
            cpu=self.cpu,
            gpu=self.gpu,
            num_gpus=num_gpus,
            pcie=self.pcie,
            nvlink=self.nvlink,
            num_nodes=self.num_nodes,
            network=self.network,
        )

    def with_nodes(self, num_nodes: int, network: LinkSpec | None = None) -> "Cluster":
        """Scale out to ``num_nodes`` servers."""
        return Cluster(
            cpu=self.cpu,
            gpu=self.gpu,
            num_gpus=self.num_gpus,
            pcie=self.pcie,
            nvlink=self.nvlink,
            num_nodes=num_nodes,
            network=network or self.network,
        )

    def _ring_seconds(self, link: LinkSpec, participants: int, bytes_per_rank: float) -> float:
        if participants <= 1:
            return 0.0
        volume = 2.0 * (participants - 1) / participants * bytes_per_rank
        return link.transfer_seconds(volume, num_transfers=2 * (participants - 1))

    def allreduce_seconds(self, bytes_per_gpu: float) -> float:
        """All-reduce time across every GPU in the cluster.

        Single node: one NVLink ring.  Multi node: hierarchical —
        intra-node NVLink reduce, inter-node network ring between node
        leaders, intra-node NVLink broadcast (modeled as two NVLink ring
        phases around the network phase).
        """
        intra = self._ring_seconds(self.nvlink, self.num_gpus, bytes_per_gpu)
        if self.num_nodes == 1:
            return intra
        inter = self._ring_seconds(self.network, self.num_nodes, bytes_per_gpu)
        return 2.0 * intra + inter
