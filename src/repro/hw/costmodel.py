"""Operator-level cost model.

Prices the primitive operations a recommendation training step performs
on a concrete :class:`~repro.hw.cluster.Cluster`: embedding gathers and
scatters, MLP GEMMs (forward and backward), sparse/dense optimizer
updates, host<->device transfers, NVLink all-reduce, and the FAE hot-bag
synchronization.  The simulator composes these into timelines; unit tests
pin their scaling behaviour (linear in bytes/rows, overhead-dominated at
small sizes).

CPU memory contention: under weak scaling, the global batch grows with
the GPU count, pushing the CPU's embedding working set past its caches.
``cpu_contention(k) = 1 + 0.1 (k-1)`` inflates CPU row costs accordingly
— this single mechanism reproduces the paper's non-monotone baseline
scaling (Table IV: Kaggle 245 -> 195 -> 201 minutes at 1/2/4 GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.cluster import Cluster
from repro.hw.workload import WorkloadCharacter

__all__ = ["CostModel", "CPU_CONTENTION_SLOPE", "ROW_AMORTIZATION_BATCH", "ROW_AMORTIZATION_EXP"]

#: Per-extra-GPU inflation of CPU row costs under weak scaling.
CPU_CONTENTION_SLOPE = 0.1

#: CPU per-row framework costs amortize as batches grow (vectorized index
#: paths, hardware prefetch): effective cost ~ row_cost * (1 + B/B0)^-a.
ROW_AMORTIZATION_BATCH = 4096
ROW_AMORTIZATION_EXP = 0.35


@dataclass(frozen=True)
class CostModel:
    """Prices training primitives for one workload on one cluster.

    Args:
        cluster: hardware configuration.
        workload: workload character (per-sample volumes, table counts).
    """

    cluster: Cluster
    workload: WorkloadCharacter

    def cpu_contention(self) -> float:
        """CPU slowdown from the weak-scaled working set (see module doc)."""
        return 1.0 + CPU_CONTENTION_SLOPE * (self.cluster.num_gpus - 1)

    def _cpu_row_amortization(self, batch_size: int) -> float:
        """Batch-size amortization of per-row CPU framework costs."""
        return (1.0 + batch_size / ROW_AMORTIZATION_BATCH) ** -ROW_AMORTIZATION_EXP

    # ------------------------------------------------------------------
    # Embedding ops
    # ------------------------------------------------------------------

    def _lookup_volume(self, batch_size: int) -> tuple[float, float]:
        """(bytes, rows) gathered for ``batch_size`` samples."""
        return (
            batch_size * self.workload.lookup_bytes_per_sample,
            batch_size * self.workload.lookup_rows_per_sample,
        )

    def embedding_forward(self, batch_size: int, device: str) -> float:
        """Pooled embedding lookup for ``batch_size`` samples on a device.

        For CPU phases, ``batch_size`` is the *per-node* share — each
        node's host works on its own shard in parallel.
        """
        bytes_moved, rows = self._lookup_volume(batch_size)
        if device == "cpu":
            seconds = self.cluster.cpu.gather_seconds(
                bytes_moved,
                self.workload.cpu_ops_per_phase,
                rows * self._cpu_row_amortization(batch_size),
            )
            return seconds * self.cpu_contention()
        return self.cluster.gpu.gather_seconds(
            bytes_moved, self.workload.cpu_ops_per_phase, rows
        )

    def embedding_backward(self, batch_size: int, device: str) -> float:
        """Gradient scatter: read-modify-write of the touched rows (~1.5x)."""
        bytes_moved, rows = self._lookup_volume(batch_size)
        if device == "cpu":
            seconds = self.cluster.cpu.gather_seconds(
                2.0 * bytes_moved,
                self.workload.cpu_ops_per_phase,
                1.5 * rows * self._cpu_row_amortization(batch_size),
            )
            return seconds * self.cpu_contention()
        return self.cluster.gpu.gather_seconds(
            2.0 * bytes_moved, self.workload.cpu_ops_per_phase, 1.5 * rows
        )

    # ------------------------------------------------------------------
    # Neural-network ops (run on each GPU over its per-GPU shard)
    # ------------------------------------------------------------------

    def mlp_forward(self, per_gpu_batch: int) -> float:
        flops = 2.0 * self.workload.mlp_macs_per_sample * per_gpu_batch
        return self.cluster.gpu.gemm_seconds(flops, self.workload.num_mlp_layers)

    def mlp_backward(self, per_gpu_batch: int) -> float:
        """Backward GEMMs move ~2x the forward flops (dgrad + wgrad)."""
        flops = 4.0 * self.workload.mlp_macs_per_sample * per_gpu_batch
        return self.cluster.gpu.gemm_seconds(flops, 2 * self.workload.num_mlp_layers)

    # ------------------------------------------------------------------
    # Optimizer
    # ------------------------------------------------------------------

    def optimizer_embedding(self, batch_size: int, device: str) -> float:
        """SGD on the rows a batch touched: read grad + read/write param."""
        unique_rows = (
            batch_size
            * self.workload.lookup_rows_per_sample
            * self.workload.unique_row_factor
        )
        row_bytes = (
            self.workload.lookup_bytes_per_sample / self.workload.lookup_rows_per_sample
        )
        bytes_moved = 3.0 * unique_rows * row_bytes
        if device == "cpu":
            seconds = self.cluster.cpu.gather_seconds(
                bytes_moved,
                self.workload.num_tables,
                3.0 * unique_rows * self._cpu_row_amortization(batch_size),
            )
            return seconds * self.cpu_contention()
        return self.cluster.gpu.gather_seconds(
            bytes_moved, self.workload.num_tables, 3.0 * unique_rows
        )

    def optimizer_dense(self) -> float:
        """SGD on MLP parameters (streaming, on GPU)."""
        return (
            self.cluster.gpu.stream_seconds(3.0 * self.workload.dense_param_bytes)
            + self.workload.num_mlp_layers * self.cluster.gpu.op_overhead
        )

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------

    def activation_transfer(self, batch_size: int) -> float:
        """Pooled activations CPU->GPU (or grads back), per direction.

        Each GPU receives its shard over its own PCIe link in parallel,
        so wall time is one per-GPU transfer of ``transfer_events``
        messages.
        """
        total_bytes = batch_size * self.workload.pooled_bytes_per_sample
        per_gpu = total_bytes / self.cluster.total_gpus
        return self.cluster.pcie.transfer_seconds(
            per_gpu, num_transfers=self.workload.transfer_events
        )

    def allreduce_dense(self) -> float:
        """All-reduce of the MLP gradients across GPUs."""
        return self.cluster.allreduce_seconds(self.workload.dense_param_bytes)

    def allreduce_hot(self, per_gpu_batch: int) -> float:
        """Fused all-reduce of MLP + hot-embedding gradients (FAE hot step)."""
        unique_rows = (
            per_gpu_batch
            * self.workload.lookup_rows_per_sample
            * self.workload.unique_row_factor
        )
        row_bytes = (
            self.workload.lookup_bytes_per_sample / self.workload.lookup_rows_per_sample
        )
        payload = self.workload.dense_param_bytes + unique_rows * row_bytes
        return self.cluster.allreduce_seconds(payload)

    def all_to_all(self, batch_size: int) -> float:
        """All-to-all exchange of pooled embeddings (sharded-table mode).

        With tables sharded across GPUs, each GPU computes the pooled
        vectors for the table shards it owns, for *every* sample, then
        exchanges shards so each GPU holds all vectors for its own
        samples: ``(k-1)/k`` of the activation volume crosses NVLink in
        ``k-1`` messages per GPU.
        """
        k = self.cluster.total_gpus
        if k == 1:
            return 0.0
        total_bytes = batch_size * self.workload.pooled_bytes_per_sample
        return self.cluster.nvlink.transfer_seconds(
            total_bytes * (k - 1) / k, num_transfers=k - 1
        )

    def hot_bag_sync(self) -> float:
        """One hot<->cold transition: replica writeback + refresh over PCIe.

        The writeback ships one replica's hot rows to the host; the
        refresh broadcasts updated rows to every GPU (parallel links, so
        one transfer time each way).
        """
        return 2.0 * self.cluster.pcie.transfer_seconds(self.workload.hot_bytes, num_transfers=1)
