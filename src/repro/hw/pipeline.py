"""Discrete-event pipeline simulator: overlap-aware training timelines.

The closed-form :class:`~repro.hw.simulator.TrainingSimulator` sums phase
durations serially — the worst case.  Real training overlaps work across
mini-batches: while batch *i* runs its MLPs on the GPUs, the CPU can
already gather batch *i+1*'s embeddings (the paper's Fig 3 dataflow has
exactly this producer/consumer structure).  This module builds the
per-batch task DAG on explicit resources (CPU, GPU, PCIe, NVLink) and
schedules it with a list scheduler, yielding the *pipelined* makespan and
per-resource utilization.

The headline use is an ablation of the cost model itself
(``benchmarks/test_abl_pipeline.py``): how much does overlap shrink the
baseline and FAE epochs, and does the FAE advantage survive?  (It does —
the baseline's critical resource is the CPU either way.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.cluster import Cluster
from repro.hw.costmodel import CostModel
from repro.hw.workload import WorkloadCharacter

__all__ = ["Task", "Resource", "PipelineSchedule", "PipelinedSimulator"]


@dataclass
class Resource:
    """A serially-occupied execution resource."""

    name: str
    available_at: float = 0.0
    busy_seconds: float = 0.0

    def reserve(self, earliest_start: float, duration: float) -> tuple[float, float]:
        """Occupy the resource for ``duration`` from the earliest slot."""
        start = max(self.available_at, earliest_start)
        end = start + duration
        self.available_at = end
        self.busy_seconds += duration
        return start, end


@dataclass
class Task:
    """One unit of work bound to a resource.

    Attributes:
        name: diagnostic id ("b3/mlp_forward").
        resource: the resource the task occupies.
        duration: seconds of occupancy.
        deps: tasks that must finish first.
    """

    name: str
    resource: str
    duration: float
    deps: list["Task"] = field(default_factory=list)
    start: float | None = None
    end: float | None = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"{self.name}: negative duration")


@dataclass
class PipelineSchedule:
    """A scheduled task set.

    Attributes:
        makespan: end time of the last task.
        utilization: resource name -> busy fraction of the makespan.
        tasks: the scheduled tasks (with start/end filled in).
    """

    makespan: float
    utilization: dict[str, float]
    tasks: list[Task]

    def critical_resource(self) -> str:
        return max(self.utilization, key=self.utilization.get)

    def to_chrome_trace(self) -> list[dict]:
        """Export as Chrome tracing events (``chrome://tracing`` format).

        Each task becomes a complete ("X") event on its resource's row;
        dump with ``json.dump({"traceEvents": schedule.to_chrome_trace()},
        fh)`` and load the file in chrome://tracing or Perfetto.
        """
        events = []
        resource_rows = {name: i for i, name in enumerate(sorted(self.utilization))}
        for task in self.tasks:
            if task.start is None or task.end is None:
                continue
            events.append(
                {
                    "name": task.name,
                    "cat": task.resource,
                    "ph": "X",
                    "ts": task.start * 1e6,  # microseconds
                    "dur": (task.end - task.start) * 1e6,
                    "pid": 0,
                    "tid": resource_rows[task.resource],
                }
            )
        return events


def schedule(tasks: list[Task], resources: dict[str, Resource]) -> PipelineSchedule:
    """List-schedule ``tasks`` in dependency order on their resources.

    Tasks must be topologically ordered (each task after its deps), which
    the builders below guarantee by construction.

    Raises:
        KeyError: if a task names an unknown resource.
        ValueError: if a dependency has not been scheduled yet.
    """
    for task in tasks:
        for dep in task.deps:
            if dep.end is None:
                raise ValueError(f"{task.name}: dependency {dep.name} not yet scheduled")
        earliest = max((dep.end for dep in task.deps), default=0.0)
        resource = resources[task.resource]
        task.start, task.end = resource.reserve(earliest, task.duration)

    makespan = max((t.end for t in tasks), default=0.0)
    utilization = {
        name: (r.busy_seconds / makespan if makespan else 0.0)
        for name, r in resources.items()
    }
    return PipelineSchedule(makespan=makespan, utilization=utilization, tasks=tasks)


class PipelinedSimulator:
    """Overlap-aware epoch simulation for baseline and FAE modes.

    Args:
        cluster: hardware configuration.
        workload: workload character.
        lookahead: how many mini-batches may be in flight concurrently
            (framework prefetch depth; 2 = classic double buffering).
    """

    def __init__(self, cluster: Cluster, workload: WorkloadCharacter, lookahead: int = 2) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.cluster = cluster
        self.workload = workload
        self.lookahead = lookahead
        self.cost = CostModel(cluster, workload)

    def _resources(self) -> dict[str, Resource]:
        return {
            "cpu": Resource("cpu"),
            "gpu": Resource("gpu"),
            "pcie": Resource("pcie"),
            "nvlink": Resource("nvlink"),
        }

    def _baseline_tasks(self, index: int, prev_stage_tail: dict[str, Task | None]) -> list[Task]:
        """Task DAG of one hybrid mini-batch (paper Fig 3)."""
        w = self.workload
        k = self.cluster.total_gpus
        batch = w.base_batch_size * k
        per_node = w.base_batch_size * self.cluster.num_gpus
        per_gpu = w.base_batch_size
        c = self.cost

        def dep_chain(task_deps):
            return [t for t in task_deps if t is not None]

        emb_fwd = Task(f"b{index}/emb_fwd", "cpu", c.embedding_forward(per_node, "cpu"),
                       dep_chain([prev_stage_tail["lookahead"]]))
        xfer_fwd = Task(f"b{index}/xfer_fwd", "pcie", c.activation_transfer(batch), [emb_fwd])
        mlp_fwd = Task(f"b{index}/mlp_fwd", "gpu",
                       self.workload.dispatch_seconds + c.mlp_forward(per_gpu), [xfer_fwd])
        mlp_bwd = Task(f"b{index}/mlp_bwd", "gpu", c.mlp_backward(per_gpu), [mlp_fwd])
        xfer_bwd = Task(f"b{index}/xfer_bwd", "pcie", c.activation_transfer(batch), [mlp_bwd])
        emb_bwd = Task(f"b{index}/emb_bwd", "cpu", c.embedding_backward(per_node, "cpu"), [xfer_bwd])
        opt_cpu = Task(f"b{index}/opt_cpu", "cpu", c.optimizer_embedding(per_node, "cpu"), [emb_bwd])
        allreduce = Task(f"b{index}/allreduce", "nvlink", c.allreduce_dense(), [mlp_bwd])
        opt_gpu = Task(f"b{index}/opt_gpu", "gpu", c.optimizer_dense(), [allreduce])
        tasks = [emb_fwd, xfer_fwd, mlp_fwd, mlp_bwd, xfer_bwd, emb_bwd, opt_cpu, allreduce, opt_gpu]
        # The next batch's weight reads depend on this batch's updates;
        # with `lookahead` batches in flight, batch i gates batch
        # i+lookahead (prefetch depth).
        prev_stage_tail["lookahead"] = opt_cpu if index % self.lookahead == self.lookahead - 1 else prev_stage_tail["lookahead"]
        return tasks

    def _hot_tasks(self, index: int) -> list[Task]:
        """Task DAG of one pure-hot FAE batch (all on GPU)."""
        w = self.workload
        per_gpu = w.base_batch_size
        c = self.cost
        emb_fwd = Task(f"h{index}/emb_fwd", "gpu",
                       w.dispatch_seconds + c.embedding_forward(per_gpu, "gpu"), [])
        mlp_fwd = Task(f"h{index}/mlp_fwd", "gpu", c.mlp_forward(per_gpu), [emb_fwd])
        mlp_bwd = Task(f"h{index}/mlp_bwd", "gpu", c.mlp_backward(per_gpu), [mlp_fwd])
        emb_bwd = Task(f"h{index}/emb_bwd", "gpu", c.embedding_backward(per_gpu, "gpu"), [mlp_bwd])
        allreduce = Task(f"h{index}/allreduce", "nvlink", c.allreduce_hot(per_gpu), [emb_bwd])
        opt = Task(f"h{index}/opt", "gpu",
                   c.optimizer_dense() + c.optimizer_embedding(per_gpu, "gpu"), [allreduce])
        return [emb_fwd, mlp_fwd, mlp_bwd, emb_bwd, allreduce, opt]

    def baseline_epoch(self, max_batches: int | None = None) -> PipelineSchedule:
        """Pipelined schedule of a baseline epoch (or its first batches)."""
        num = self.workload.batches_per_epoch(self.cluster.total_gpus)
        if max_batches is not None:
            num = min(num, max_batches)
        resources = self._resources()
        tail: dict[str, Task | None] = {"lookahead": None}
        tasks: list[Task] = []
        for index in range(num):
            tasks.extend(self._baseline_tasks(index, tail))
        return schedule(tasks, resources)

    def fae_epoch(self, max_batches: int | None = None) -> PipelineSchedule:
        """Pipelined schedule of an FAE epoch (hot and cold interleaved)."""
        num = self.workload.batches_per_epoch(self.cluster.total_gpus)
        if max_batches is not None:
            num = min(num, max_batches)
        num_hot = round(num * self.workload.hot_fraction)
        resources = self._resources()
        tasks: list[Task] = []
        tail: dict[str, Task | None] = {"lookahead": None}
        for index in range(num):
            if index < num - num_hot:
                tasks.extend(self._baseline_tasks(index, tail))
            else:
                tasks.extend(self._hot_tasks(index))
        sched = schedule(tasks, resources)
        sync = self.cost.hot_bag_sync()  # one transition in this layout
        return PipelineSchedule(
            makespan=sched.makespan + sync,
            utilization=sched.utilization,
            tasks=sched.tasks,
        )

    def overlap_factor(self, mode: str = "baseline", max_batches: int = 64) -> float:
        """Serial time / pipelined makespan for the first ``max_batches``.

        1.0 means no overlap was available; the theoretical ceiling is the
        serial time divided by the busiest resource's demand.
        """
        from repro.hw.simulator import TrainingSimulator

        serial_sim = TrainingSimulator(self.cluster, self.workload)
        if mode == "baseline":
            serial = serial_sim.baseline_batch().total * max_batches
            pipelined = self.baseline_epoch(max_batches=max_batches).makespan
        elif mode == "fae":
            per_hot = serial_sim.hot_batch().total
            per_cold = serial_sim.baseline_batch().total
            num_hot = round(max_batches * self.workload.hot_fraction)
            serial = per_hot * num_hot + per_cold * (max_batches - num_hot)
            pipelined = self.fae_epoch(max_batches=max_batches).makespan
        else:
            raise ValueError(f"unknown mode {mode!r}")
        return serial / pipelined if pipelined else 1.0
