"""Training-timeline simulator: baseline vs FAE vs NvOPT epochs.

Composes :class:`~repro.hw.costmodel.CostModel` op prices into
per-mini-batch timelines and per-epoch totals with a named phase
breakdown (the paper's Fig 14 categories):

- ``baseline`` — the Fig 3 hybrid: embeddings forward/backward and the
  embedding optimizer on the CPU, MLPs on the GPUs, pooled activations
  and gradients crossing PCIe every batch.
- ``fae`` — hot mini-batches run entirely on the GPUs (embedding compute,
  optimizer, and a fused NVLink all-reduce); cold mini-batches fall back
  to the baseline path; hot<->cold transitions pay a hot-bag sync.
- ``nvopt`` — the NVIDIA-optimized comparator (SS V): embeddings cached on
  the GPU with mixed-precision compute, but batches stay mixed, so every
  batch pays a PCIe round-trip for its cold lookups.

Weak scaling follows the paper: the global batch is ``base x k`` on ``k``
GPUs, so per-epoch batch count shrinks by ``k`` while CPU-side phase cost
per batch grows with the global batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.cluster import Cluster
from repro.hw.costmodel import CostModel
from repro.hw.workload import WorkloadCharacter

__all__ = [
    "PhaseBreakdown",
    "EpochTimeline",
    "TrainingSimulator",
    "TRANSFER_PHASES",
    "DDP_DISPATCH_SLOPE",
]

#: Per-extra-GPU inflation of host dispatch time.  Distributed data
#: parallelism adds per-batch process-group coordination (gradient-hook
#: bookkeeping, bucket flushes, barrier latencies) that grows with world
#: size; this is why the paper's FAE times flatten from 2 to 4 GPUs
#: (Table IV) even though per-epoch batch counts halve.
DDP_DISPATCH_SLOPE = 1.2

#: Per-row stall of a unified-memory page fault (NvOPT cold lookups):
#: fault trap + 64 KB migration + replay, ~60 us on PCIe 3.0.
UVM_PAGE_FAULT_SECONDS = 60e-6

#: Phases counted as CPU-GPU communication in Table V.
TRANSFER_PHASES = ("transfer_fwd", "transfer_bwd", "embedding_sync", "cold_page_in")

#: Phases during which the GPU is executing kernels.
GPU_COMPUTE_PHASES = (
    "mlp_forward",
    "mlp_backward",
    "emb_forward_gpu",
    "emb_backward_gpu",
    "optimizer_gpu",
)

#: Phases during which the GPU waits on the host (CPU embedding work).
GPU_WAIT_PHASES = ("emb_forward_cpu", "emb_backward_cpu", "optimizer_cpu")


@dataclass
class PhaseBreakdown:
    """Named phase durations, in seconds."""

    phases: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration for phase {phase!r}")
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def merge(self, other: "PhaseBreakdown", weight: float = 1.0) -> None:
        for phase, seconds in other.phases.items():
            self.add(phase, seconds * weight)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def fraction(self, phase: str) -> float:
        total = self.total
        return self.phases.get(phase, 0.0) / total if total else 0.0

    def group_total(self, phases: tuple[str, ...]) -> float:
        return sum(self.phases.get(p, 0.0) for p in phases)

    def scaled(self, factor: float) -> "PhaseBreakdown":
        return PhaseBreakdown({p: s * factor for p, s in self.phases.items()})


@dataclass(frozen=True)
class EpochTimeline:
    """One simulated training epoch.

    Attributes:
        mode: "baseline", "fae", or "nvopt".
        num_gpus: GPUs used.
        breakdown: total per-phase seconds for the epoch.
        num_batches: mini-batches executed.
        num_hot_batches: of which pure-hot (FAE only).
        transitions: hot<->cold swaps paid (FAE only).
    """

    mode: str
    num_gpus: int
    breakdown: PhaseBreakdown
    num_batches: int
    num_hot_batches: int = 0
    transitions: int = 0

    @property
    def seconds(self) -> float:
        return self.breakdown.total

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0

    def communication_seconds(self) -> float:
        """CPU-GPU transfer time (Table V's metric)."""
        return self.breakdown.group_total(TRANSFER_PHASES)


class TrainingSimulator:
    """Simulates epochs of recommendation training on a cluster.

    Args:
        cluster: hardware configuration (GPU count matters).
        workload: workload character.
        transitions_per_epoch: hot<->cold swaps the Shuffle Scheduler
            performs per epoch; the paper's default R(50) yields 3
            (cold, hot, cold, hot segments).
    """

    def __init__(
        self,
        cluster: Cluster,
        workload: WorkloadCharacter,
        transitions_per_epoch: int = 3,
    ) -> None:
        if transitions_per_epoch < 0:
            raise ValueError("transitions_per_epoch must be non-negative")
        self.cluster = cluster
        self.workload = workload
        self.transitions_per_epoch = transitions_per_epoch
        self.cost = CostModel(cluster, workload)

    def _dispatch_seconds(self) -> float:
        """Host dispatch per batch, inflated by DDP coordination."""
        k = self.cluster.total_gpus
        return self.workload.dispatch_seconds * (1.0 + DDP_DISPATCH_SLOPE * (k - 1))

    # ------------------------------------------------------------------
    # Per-batch timelines
    # ------------------------------------------------------------------

    def baseline_batch(self) -> PhaseBreakdown:
        """One hybrid CPU-GPU mini-batch (global batch = base x total GPUs).

        CPU-side phases are charged per node: each server's host handles
        only its own GPUs' shard of the global batch, in parallel with
        the other nodes.
        """
        batch = self.workload.base_batch_size * self.cluster.total_gpus
        per_node = self.workload.base_batch_size * self.cluster.num_gpus
        per_gpu = self.workload.base_batch_size
        b = PhaseBreakdown()
        b.add("dispatch", self._dispatch_seconds())
        b.add("emb_forward_cpu", self.cost.embedding_forward(per_node, "cpu"))
        b.add("transfer_fwd", self.cost.activation_transfer(batch))
        b.add("mlp_forward", self.cost.mlp_forward(per_gpu))
        b.add("mlp_backward", self.cost.mlp_backward(per_gpu))
        b.add("transfer_bwd", self.cost.activation_transfer(batch))
        b.add("emb_backward_cpu", self.cost.embedding_backward(per_node, "cpu"))
        b.add("optimizer_cpu", self.cost.optimizer_embedding(per_node, "cpu"))
        b.add("optimizer_gpu", self.cost.optimizer_dense())
        b.add("allreduce", self.cost.allreduce_dense())
        return b

    def hot_batch(self) -> PhaseBreakdown:
        """One pure-hot FAE mini-batch: everything on the GPUs."""
        k = self.cluster.num_gpus
        per_gpu = self.workload.base_batch_size
        b = PhaseBreakdown()
        b.add("dispatch", self._dispatch_seconds())
        b.add("emb_forward_gpu", self.cost.embedding_forward(per_gpu, "gpu"))
        b.add("mlp_forward", self.cost.mlp_forward(per_gpu))
        b.add("mlp_backward", self.cost.mlp_backward(per_gpu))
        b.add("emb_backward_gpu", self.cost.embedding_backward(per_gpu, "gpu"))
        b.add("allreduce", self.cost.allreduce_hot(per_gpu))
        b.add("optimizer_gpu", self.cost.optimizer_dense())
        b.add("optimizer_gpu", self.cost.optimizer_embedding(per_gpu, "gpu"))
        return b

    def sharded_feasible(self) -> bool:
        """Whether the model-parallel mode fits: shard + activations <= HBM."""
        k = self.cluster.total_gpus
        shard = self.workload.total_embedding_bytes / k
        headroom = 0.85 * self.cluster.gpu.mem_capacity  # activations/optimizer state
        return shard <= headroom

    def sharded_batch(self) -> PhaseBreakdown:
        """One model-parallel mini-batch: tables sharded across GPUs.

        Raises:
            ValueError: when the shard does not fit GPU memory.
        """
        if not self.sharded_feasible():
            k = self.cluster.total_gpus
            need = self.workload.total_embedding_bytes / 2**30
            raise ValueError(
                f"sharded mode infeasible: {need:.1f} GiB of tables across "
                f"{k} GPU(s) exceeds device memory"
            )
        k = self.cluster.total_gpus
        batch = self.workload.base_batch_size * k
        per_gpu = self.workload.base_batch_size
        b = PhaseBreakdown()
        b.add("dispatch", self._dispatch_seconds())
        # Each GPU gathers its owned tables' rows for the WHOLE global
        # batch (model parallelism does not shard the batch for lookups).
        b.add("emb_forward_gpu", self.cost.embedding_forward(batch, "gpu"))
        b.add("all_to_all", self.cost.all_to_all(batch))
        b.add("mlp_forward", self.cost.mlp_forward(per_gpu))
        b.add("mlp_backward", self.cost.mlp_backward(per_gpu))
        b.add("all_to_all", self.cost.all_to_all(batch))
        b.add("emb_backward_gpu", self.cost.embedding_backward(batch, "gpu"))
        b.add("optimizer_gpu", self.cost.optimizer_dense())
        b.add("optimizer_gpu", self.cost.optimizer_embedding(batch, "gpu"))
        b.add("allreduce", self.cost.allreduce_dense())
        return b

    def nvopt_batch(self) -> PhaseBreakdown:
        """One NvOPT mini-batch: GPU-cached embeddings, mixed batches.

        Mixed precision speeds the GEMMs ~1.3x end-to-end, and hot
        lookups hit HBM; but without FAE's pure batching, every batch
        faults its cold rows in through unified memory over PCIe.
        """
        k = self.cluster.num_gpus
        per_gpu = self.workload.base_batch_size
        w = self.workload
        per_lookup_coverage = (
            w.hot_fraction ** (1.0 / w.lookup_rows_per_sample) if w.hot_fraction > 0 else 0.0
        )
        cold_rows = per_gpu * w.lookup_rows_per_sample * (1.0 - per_lookup_coverage)
        row_bytes = w.lookup_bytes_per_sample / w.lookup_rows_per_sample

        b = PhaseBreakdown()
        b.add("dispatch", self._dispatch_seconds())
        b.add("emb_forward_gpu", self.cost.embedding_forward(per_gpu, "gpu"))
        # Cold lookups fault through unified memory: a ~25 us stall per
        # missed row, plus the (fp16-halved) page payload over PCIe.
        b.add(
            "cold_page_in",
            cold_rows * UVM_PAGE_FAULT_SECONDS
            + self.cluster.pcie.transfer_seconds(cold_rows * row_bytes / 2, num_transfers=2),
        )
        b.add("mlp_forward", self.cost.mlp_forward(per_gpu) / 1.3)
        b.add("mlp_backward", self.cost.mlp_backward(per_gpu) / 1.3)
        b.add("emb_backward_gpu", self.cost.embedding_backward(per_gpu, "gpu"))
        b.add("allreduce", self.cost.allreduce_hot(per_gpu))
        b.add("optimizer_gpu", self.cost.optimizer_dense())
        b.add("optimizer_gpu", self.cost.optimizer_embedding(per_gpu, "gpu"))
        return b

    # ------------------------------------------------------------------
    # Epoch / run simulation
    # ------------------------------------------------------------------

    def epoch(self, mode: str = "baseline") -> EpochTimeline:
        """Simulate one epoch in the given execution mode."""
        k = self.cluster.total_gpus
        num_batches = self.workload.batches_per_epoch(k)

        if mode == "baseline":
            breakdown = self.baseline_batch().scaled(num_batches)
            return EpochTimeline("baseline", k, breakdown, num_batches)

        if mode == "nvopt":
            breakdown = self.nvopt_batch().scaled(num_batches)
            return EpochTimeline("nvopt", k, breakdown, num_batches)

        if mode == "sharded":
            breakdown = self.sharded_batch().scaled(num_batches)
            return EpochTimeline("sharded", k, breakdown, num_batches)

        if mode == "fae":
            num_hot = round(num_batches * self.workload.hot_fraction)
            num_cold = num_batches - num_hot
            breakdown = PhaseBreakdown()
            breakdown.merge(self.hot_batch(), weight=num_hot)
            breakdown.merge(self.baseline_batch(), weight=num_cold)
            breakdown.add(
                "embedding_sync", self.transitions_per_epoch * self.cost.hot_bag_sync()
            )
            return EpochTimeline(
                "fae",
                k,
                breakdown,
                num_batches,
                num_hot_batches=num_hot,
                transitions=self.transitions_per_epoch,
            )

        raise ValueError(f"unknown mode {mode!r}; expected baseline|fae|nvopt|sharded")

    def training_minutes(self, mode: str = "baseline", epochs: int = 10) -> float:
        """Total training time in minutes (Table IV reports 10 epochs)."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        return self.epoch(mode).minutes * epochs

    def communication_minutes(self, mode: str = "baseline", epochs: int = 10) -> float:
        """CPU-GPU communication minutes (Table V)."""
        return self.epoch(mode).communication_seconds() / 60.0 * epochs

    def speedup(self) -> float:
        """FAE speedup over the baseline at this cluster size."""
        return self.epoch("baseline").seconds / self.epoch("fae").seconds
