"""Hardware substrate: an analytic cost model of the paper's testbed.

The paper evaluates on a 24-core Xeon Silver 4116 host with four Tesla
V100 GPUs on PCIe 3.0 x16, interconnected with NVLink 2.0 (Table II).
None of that hardware is available here, so this package models it: a
roofline-style operator cost model (:mod:`~repro.hw.costmodel`) over
device/link specs (:mod:`~repro.hw.spec`), composed into per-mini-batch
training timelines by :mod:`~repro.hw.simulator`, with phase-weighted
power accounting in :mod:`~repro.hw.power`.

The simulator reproduces the *shape* of the paper's performance results
— who wins, by what factor, where the breakdown time goes — not the
authors' absolute minutes; EXPERIMENTS.md reports both side by side.
"""

from repro.hw.spec import (
    DeviceSpec,
    LinkSpec,
    NVLINK2,
    PCIE3_X16,
    TESLA_V100,
    XEON_4116,
)
from repro.hw.cluster import Cluster, ETHERNET_100G, INFINIBAND_HDR
from repro.hw.costmodel import CostModel
from repro.hw.workload import WorkloadCharacter, characterize
from repro.hw.simulator import (
    EpochTimeline,
    PhaseBreakdown,
    TrainingSimulator,
)
from repro.hw.power import PowerModel
from repro.hw.pipeline import PipelinedSimulator, PipelineSchedule
from repro.hw.roofline import RooflinePoint, analyze_workload, roofline_point

__all__ = [
    "Cluster",
    "CostModel",
    "DeviceSpec",
    "ETHERNET_100G",
    "EpochTimeline",
    "INFINIBAND_HDR",
    "LinkSpec",
    "NVLINK2",
    "PCIE3_X16",
    "PhaseBreakdown",
    "PipelineSchedule",
    "PipelinedSimulator",
    "PowerModel",
    "RooflinePoint",
    "TESLA_V100",
    "TrainingSimulator",
    "WorkloadCharacter",
    "XEON_4116",
    "analyze_workload",
    "roofline_point",
    "characterize",
]
