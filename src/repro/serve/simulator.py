"""Request-level serving latency simulation.

Compares two inference deployments on the calibrated cost model:

- ``cpu-embedding`` — the serving analogue of the training baseline:
  every batch fetches embeddings on the host and ships activations over
  PCIe before the GPU ranks.
- ``hot-resident`` — hot bags pinned in HBM: hot requests are served
  entirely on-GPU; cold requests fall back to the host path.

The simulator draws Poisson arrivals, forms batches under a
max-batch/max-wait policy (standard dynamic batching), services each
batch with cost-model times, and reports latency percentiles — the
serving framing of the paper's skew insight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.cluster import Cluster
from repro.hw.costmodel import CostModel
from repro.hw.workload import WorkloadCharacter

__all__ = ["LatencyStats", "ServingSimulator"]


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution of one simulated serving run.

    Attributes:
        p50/p95/p99: latency percentiles, seconds.
        mean: mean latency, seconds.
        throughput: served requests per second of simulated time.
        num_requests: sample size.
    """

    p50: float
    p95: float
    p99: float
    mean: float
    throughput: float
    num_requests: int


class ServingSimulator:
    """Dynamic-batching inference latency model.

    Args:
        cluster: hardware configuration (single node typical for serving).
        workload: workload character (hot fraction, lookup volumes).
        max_batch: largest batch the scorer accepts.
        max_wait: longest a request waits for batchmates, seconds.
    """

    def __init__(
        self,
        cluster: Cluster,
        workload: WorkloadCharacter,
        max_batch: int = 64,
        max_wait: float = 2e-3,
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.cluster = cluster
        self.workload = workload
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.cost = CostModel(cluster, workload)

    # ------------------------------------------------------------------
    # Batch service times (forward-only: no backward, no optimizer)
    # ------------------------------------------------------------------

    def cpu_embedding_batch_seconds(self, batch_size: int) -> float:
        """Host-embedding inference: CPU gather + PCIe + GPU MLP."""
        return (
            self.cost.embedding_forward(batch_size, "cpu")
            + self.cost.activation_transfer(batch_size)
            + self.cost.mlp_forward(batch_size)
        )

    def hot_resident_batch_seconds(self, batch_size: int) -> float:
        """All-GPU inference for a pure-hot batch."""
        return self.cost.embedding_forward(batch_size, "gpu") + self.cost.mlp_forward(
            batch_size
        )

    # ------------------------------------------------------------------
    # Request-level simulation
    # ------------------------------------------------------------------

    def simulate(
        self,
        mode: str,
        arrival_rate: float,
        num_requests: int = 5000,
        seed: int = 0,
    ) -> LatencyStats:
        """Simulate ``num_requests`` Poisson arrivals.

        Args:
            mode: ``"cpu-embedding"`` or ``"hot-resident"``.
            arrival_rate: requests per second.
            num_requests: sample size.
            seed: randomness for arrivals and request temperature.

        Returns:
            Latency statistics over all requests.

        Raises:
            ValueError: on unknown mode or non-positive rate.
        """
        if mode not in ("cpu-embedding", "hot-resident"):
            raise ValueError(f"unknown mode {mode!r}")
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        rng = np.random.default_rng(seed)
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_requests))

        if mode == "cpu-embedding":
            latencies = self._run_queue(arrivals, self.cpu_embedding_batch_seconds)
        else:
            # Hot-resident deployments route by temperature: hot requests
            # batch on the GPU path, cold requests on the host path, as
            # independent queues (the serving analogue of FAE's pure
            # hot/cold mini-batches).
            is_hot = rng.random(num_requests) < self.workload.hot_fraction
            latencies = np.empty(num_requests, dtype=np.float64)
            if is_hot.any():
                latencies[is_hot] = self._run_queue(
                    arrivals[is_hot], self.hot_resident_batch_seconds
                )
            if (~is_hot).any():
                latencies[~is_hot] = self._run_queue(
                    arrivals[~is_hot], self.cpu_embedding_batch_seconds
                )

        makespan = float(arrivals[-1] + latencies[-1] - arrivals[0]) or 1e-12
        return LatencyStats(
            p50=float(np.percentile(latencies, 50)),
            p95=float(np.percentile(latencies, 95)),
            p99=float(np.percentile(latencies, 99)),
            mean=float(latencies.mean()),
            throughput=num_requests / makespan,
            num_requests=num_requests,
        )

    def _run_queue(self, arrivals: np.ndarray, batch_seconds) -> np.ndarray:
        """Single-server dynamic-batching queue; returns per-request latency.

        A batch is formed when the server is free: it takes every request
        that has arrived by ``max(server_free, head_arrival + max_wait)``
        — i.e. backlogged requests batch together immediately — capped at
        ``max_batch``.
        """
        n = len(arrivals)
        latencies = np.empty(n, dtype=np.float64)
        server_free_at = 0.0
        index = 0
        while index < n:
            head = arrivals[index]
            ready = max(server_free_at, head + self.max_wait)
            end = index + 1
            while end < n and end - index < self.max_batch and arrivals[end] <= ready:
                end += 1
            start = max(server_free_at, arrivals[end - 1], head)
            finish = start + batch_seconds(end - index)
            server_free_at = finish
            latencies[index:end] = finish - arrivals[index:end]
            index = end
        return latencies

    def saturation_rate(self, mode: str) -> float:
        """Arrival rate (req/s) at which the server saturates.

        Computed from full-batch service throughput: beyond this rate the
        queue grows without bound and percentiles diverge.
        """
        if mode == "hot-resident":
            hot = self.workload.hot_fraction
            hot_t = self.hot_resident_batch_seconds(self.max_batch)
            cold_t = self.cpu_embedding_batch_seconds(self.max_batch)
            per_batch = hot * hot_t + (1 - hot) * cold_t
        else:
            per_batch = self.cpu_embedding_batch_seconds(self.max_batch)
        return self.max_batch / per_batch
