"""Zipf traffic replay: a seeded SLO load harness for the serving engine.

The serving story (deadlines, fallbacks, circuit breaker) is only
credible with tail-latency numbers under *realistic* load: Zipf-skewed
keys (the paper's whole premise), bursty arrivals, and fault windows.
This module drives a real :class:`~repro.serve.engine.InferenceEngine`
with a seeded request stream and distills the run into an SLO report —
P50/P95/P99 latency, throughput, degraded and shed rates — built from
the engine's own registry instruments and breaker counters.

**Determinism.** In the default ``simulated`` mode the engine is
constructed with a :class:`VirtualClock`: every clock read returns the
current virtual time and advances it by a per-request service cost drawn
from the seeded RNG (inflated inside injected slow-replica windows).
Arrival gaps advance the same clock.  Deadline checks, fallback
degradation, breaker trips, shed decisions, and every latency sample
therefore depend only on the seed and config — the same seed produces a
byte-identical report JSON, which is what lets tests pin breaker
behavior and lets two machines compare reports at all.  ``wall`` mode
swaps in ``time.perf_counter`` for honest-hardware numbers at the price
of run-to-run noise.

The engine code path exercised is the production one — real model
forward, real bounds checks, real breaker — only the clock is virtual.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.data import dataset_by_name
from repro.data.schema import DatasetSchema
from repro.data.zipf import ZipfSampler
from repro.models import build_model, workload_by_name
from repro.obs import get_registry
from repro.resilience.guards import CircuitBreaker, LoadShedError
from repro.serve.engine import InferenceEngine

__all__ = [
    "ReplayConfig",
    "VirtualClock",
    "format_slo_report",
    "run_slo_replay",
]

SLO_SCHEMA_VERSION = 1

_WORKLOAD_FOR_DATASET = {
    "criteo-kaggle": "RMC2",
    "criteo-terabyte": "RMC3",
    "taobao": "RMC1",
}


class VirtualClock:
    """Deterministic monotonic clock: each read advances time by ``step``.

    The engine reads the clock a fixed number of times per scored chunk
    (latency start/end, deadline checks), so setting ``step`` to the
    per-read service cost turns the read sequence itself into the
    service-time model: elapsed time grows with work performed, deadline
    checks trip exactly when the accumulated cost exceeds the budget,
    and none of it depends on the host's scheduler.
    """

    __slots__ = ("t", "step")

    def __init__(self, start: float = 0.0) -> None:
        self.t = start
        self.step = 0.0

    def __call__(self) -> float:
        now = self.t
        self.t += self.step
        return now

    def advance(self, seconds: float) -> None:
        """Jump forward (arrival gaps, think time)."""
        self.t += seconds


@dataclass(frozen=True)
class ReplayConfig:
    """Everything that determines a replay run (and its report).

    Attributes:
        requests: total requests to issue.
        candidates: candidate-set size per request.
        top_k: ranking depth.
        seed: master seed for arrivals, costs, features, and keys.
        dataset: workload schema family.
        scale: dataset scale (tables stay small enough to build fast).
        base_rate: steady-state arrival rate, requests/second.
        burst_factor: arrival-rate multiplier inside a burst.
        burst_every: burst period, in requests.
        burst_length: burst duration, in requests.
        hot_exponent: Zipf exponent of the candidate-key popularity.
        deadline_s: per-request ranking deadline (None disables).
        mode: ``"simulated"`` (virtual clock, byte-deterministic) or
            ``"wall"`` (real clock, honest but noisy).
        chunk_cost_s: simulated service cost per engine clock read.
        cost_jitter: relative uniform jitter on the per-request cost.
        slow_start / slow_stop: request-index window of an injected
            slow-replica fault (None disables).
        slow_factor: service-cost multiplier inside the slow window.
        breaker_window / breaker_threshold / breaker_min_requests /
        breaker_cooldown: circuit-breaker parameters (0 window disables
            the breaker entirely).
    """

    requests: int = 512
    candidates: int = 512
    top_k: int = 10
    seed: int = 7
    dataset: str = "criteo-kaggle"
    scale: str = "tiny"
    base_rate: float = 200.0
    burst_factor: float = 4.0
    burst_every: int = 100
    burst_length: int = 25
    hot_exponent: float = 1.05
    deadline_s: float | None = 0.025
    mode: str = "simulated"
    chunk_cost_s: float = 2e-4
    cost_jitter: float = 0.25
    slow_start: int | None = None
    slow_stop: int | None = None
    slow_factor: float = 100.0
    breaker_window: int = 32
    breaker_threshold: float = 0.5
    breaker_min_requests: int = 8
    breaker_cooldown: int = 16

    def __post_init__(self) -> None:
        if self.requests <= 0 or self.candidates <= 0:
            raise ValueError("requests and candidates must be positive")
        if self.mode not in ("simulated", "wall"):
            raise ValueError(f"mode must be 'simulated' or 'wall', got {self.mode!r}")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")

    def in_burst(self, request_index: int) -> bool:
        if self.burst_every <= 0:
            return False
        return (request_index % self.burst_every) < self.burst_length

    def in_slow_window(self, request_index: int) -> bool:
        if self.slow_start is None or self.slow_stop is None:
            return False
        return self.slow_start <= request_index < self.slow_stop


_REPLAY_INSTRUMENTS = (
    "serve.rank.latency",
    "serve.request.latency",
    "serve.requests",
    "serve.requests.shed",
    "serve.deadline.exceeded",
    "serve.fallback.candidates",
    "guards.breaker.trips",
    "guards.breaker.shed",
)


def run_slo_replay(config: ReplayConfig, schema: DatasetSchema | None = None) -> dict:
    """Run one seeded replay and return the JSON-ready SLO report.

    Builds a fresh model + engine + breaker so the run depends only on
    the config.  The serving instruments it reads are reset first (they
    are process-global; a replay is a measurement run, not a production
    counter stream).
    """
    registry = get_registry()
    for name in _REPLAY_INSTRUMENTS:
        if name.endswith("latency"):
            registry.histogram(name).reset()
        else:
            registry.counter(name).reset()

    schema = schema or dataset_by_name(config.dataset, config.scale)
    model = build_model(
        workload_by_name(_WORKLOAD_FOR_DATASET[config.dataset]),
        schema=schema,
        seed=config.seed,
    )
    breaker = (
        CircuitBreaker(
            window=config.breaker_window,
            failure_threshold=config.breaker_threshold,
            min_requests=config.breaker_min_requests,
            cooldown=config.breaker_cooldown,
        )
        if config.breaker_window > 0
        else None
    )
    clock = VirtualClock() if config.mode == "simulated" else time.perf_counter
    engine = InferenceEngine(
        model,
        deadline_s=config.deadline_s,
        breaker=breaker,
        clock=clock,
    )

    rng = np.random.default_rng(config.seed)
    # The candidate table is the largest (most skew-sensitive) table;
    # context tables each get their schema-declared skew.
    candidate_table = max(schema.tables, key=lambda t: (t.num_rows, t.name)).name
    candidate_sampler = ZipfSampler(
        num_items=next(t.num_rows for t in schema.tables if t.name == candidate_table),
        exponent=config.hot_exponent,
        seed=config.seed + 1,
    )
    context_samplers = {
        t.name: (ZipfSampler(t.num_rows, t.zipf_exponent, seed=config.seed + 2 + i), t.multiplicity)
        for i, t in enumerate(schema.tables)
    }

    completed = 0
    degraded = 0
    shed = 0
    wall_start = time.perf_counter()
    virtual_start = clock.t if isinstance(clock, VirtualClock) else 0.0

    for r in range(config.requests):
        rate = config.base_rate * (config.burst_factor if config.in_burst(r) else 1.0)
        gap = float(rng.exponential(1.0 / rate))
        cost = config.chunk_cost_s * (1.0 + config.cost_jitter * float(rng.random()))
        if config.in_slow_window(r):
            cost *= config.slow_factor
        if isinstance(clock, VirtualClock):
            clock.advance(gap)
            clock.step = cost

        dense = rng.standard_normal(schema.num_dense).astype(np.float32)
        context = {
            name: sampler.sample(multiplicity)
            for name, (sampler, multiplicity) in context_samplers.items()
        }
        candidate_ids = candidate_sampler.sample(config.candidates)

        try:
            result = engine.rank_candidates(
                dense, context, candidate_table, candidate_ids, top_k=config.top_k
            )
        except LoadShedError:
            shed += 1
            continue
        completed += 1
        if result.degraded:
            degraded += 1

    if isinstance(clock, VirtualClock):
        clock.step = 0.0
        elapsed = clock.t - virtual_start
    else:
        elapsed = time.perf_counter() - wall_start

    latency = registry.histogram("serve.rank.latency")
    total = config.requests
    report = {
        "schema_version": SLO_SCHEMA_VERSION,
        "kind": "slo_report",
        "mode": config.mode,
        "seed": config.seed,
        "config": asdict(config),
        "requests": {
            "total": total,
            "completed": completed,
            "degraded": degraded,
            "shed": shed,
        },
        "rates": {
            "degraded": degraded / total,
            "shed": shed / total,
            "error": 0.0 if total == 0 else (total - completed - shed) / total,
        },
        "latency_s": (
            {
                "p50": latency.percentile(50),
                "p90": latency.percentile(90),
                "p95": latency.percentile(95),
                "p99": latency.percentile(99),
                "mean": latency.total / latency.count,
                "max": latency.percentile(100),
            }
            if latency.count
            else {}
        ),
        "throughput_rps": total / elapsed if elapsed > 0 else 0.0,
        "elapsed_s": elapsed,
        "deadline_exceeded": int(registry.counter("serve.deadline.exceeded").value),
        "fallback_candidates": int(registry.counter("serve.fallback.candidates").value),
        "breaker": None if breaker is None else breaker.health(),
    }
    return report


def format_slo_report(report: dict) -> str:
    """Human-readable digest of one SLO report."""
    lat = report.get("latency_s") or {}
    rates = report["rates"]
    requests = report["requests"]
    lines = [
        f"slo report ({report['mode']}, seed {report['seed']}): "
        f"{requests['total']} requests in {report['elapsed_s']:.3f}s "
        f"({report['throughput_rps']:.0f} req/s)",
        (
            f"  latency  p50 {1e3 * lat.get('p50', 0):7.2f} ms   "
            f"p95 {1e3 * lat.get('p95', 0):7.2f} ms   "
            f"p99 {1e3 * lat.get('p99', 0):7.2f} ms   "
            f"max {1e3 * lat.get('max', 0):7.2f} ms"
            if lat
            else "  latency  (no completed requests)"
        ),
        f"  outcomes completed {requests['completed']}  "
        f"degraded {requests['degraded']} ({100 * rates['degraded']:.1f}%)  "
        f"shed {requests['shed']} ({100 * rates['shed']:.1f}%)",
    ]
    breaker = report.get("breaker")
    if breaker is not None:
        lines.append(
            f"  breaker  state {breaker['state']}  trips {breaker['trips']}  "
            f"shed {breaker['shed_requests']}  "
            f"failure rate {breaker['failure_rate']:.2f}"
        )
    return "\n".join(lines)
