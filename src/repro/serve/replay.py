"""Zipf traffic replay: a seeded SLO load harness for the serving engine.

The serving story (deadlines, fallbacks, circuit breaker) is only
credible with tail-latency numbers under *realistic* load: Zipf-skewed
keys (the paper's whole premise), bursty arrivals, and fault windows.
This module drives a real :class:`~repro.serve.engine.InferenceEngine`
with a seeded request stream and distills the run into an SLO report —
P50/P95/P99 latency, throughput, degraded and shed rates — built from
the engine's own registry instruments and breaker counters.

**Determinism.** In the default ``simulated`` mode the engine is
constructed with a :class:`VirtualClock`: every clock read returns the
current virtual time and advances it by a per-request service cost drawn
from the seeded RNG (inflated inside injected slow-replica windows).
Arrival gaps advance the same clock.  Deadline checks, fallback
degradation, breaker trips, shed decisions, and every latency sample
therefore depend only on the seed and config — the same seed produces a
byte-identical report JSON, which is what lets tests pin breaker
behavior and lets two machines compare reports at all.  ``wall`` mode
swaps in ``time.perf_counter`` for honest-hardware numbers at the price
of run-to-run noise.

The engine code path exercised is the production one — real model
forward, real bounds checks, real breaker — only the clock is virtual.

**Cluster replay.**  :func:`run_cluster_replay` drives the same seeded
traffic through a :class:`~repro.serve.cluster.ServingCluster` of N
replicated engines (each with its own virtual clock), applies a
:class:`~repro.resilience.faults.FaultPlan`'s replica fault schedule
(``kill_replica`` / ``slow_replica`` / ``flap_replica``), optionally
begins a mid-run generation reload, and reports failover, hedging,
backpressure, and generation accounting on top of the SLO numbers —
byte-identical per seed, which is what lets CI ``cmp`` two chaos runs.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.hotcache import EmbeddingHotCache, HotCacheConfig
from repro.data import dataset_by_name
from repro.data.schema import DatasetSchema
from repro.data.zipf import ZipfSampler
from repro.models import build_model, workload_by_name
from repro.obs import get_registry
from repro.resilience.faults import FaultPlan
from repro.resilience.guards import CircuitBreaker, LoadShedError
from repro.serve.cluster import ClusterBusyError, ServingCluster
from repro.serve.engine import InferenceEngine

__all__ = [
    "ClusterReplayConfig",
    "ReplayConfig",
    "VirtualClock",
    "format_cluster_report",
    "format_slo_report",
    "run_cluster_replay",
    "run_slo_replay",
]

SLO_SCHEMA_VERSION = 1
CLUSTER_SLO_SCHEMA_VERSION = 1

_WORKLOAD_FOR_DATASET = {
    "criteo-kaggle": "RMC2",
    "criteo-terabyte": "RMC3",
    "taobao": "RMC1",
}


class VirtualClock:
    """Deterministic monotonic clock: each read advances time by ``step``.

    The engine reads the clock a fixed number of times per scored chunk
    (latency start/end, deadline checks), so setting ``step`` to the
    per-read service cost turns the read sequence itself into the
    service-time model: elapsed time grows with work performed, deadline
    checks trip exactly when the accumulated cost exceeds the budget,
    and none of it depends on the host's scheduler.
    """

    __slots__ = ("t", "step")

    def __init__(self, start: float = 0.0) -> None:
        self.t = start
        self.step = 0.0

    def __call__(self) -> float:
        now = self.t
        self.t += self.step
        return now

    def advance(self, seconds: float) -> None:
        """Jump forward (arrival gaps, think time)."""
        self.t += seconds


@dataclass(frozen=True)
class ReplayConfig:
    """Everything that determines a replay run (and its report).

    Attributes:
        requests: total requests to issue.
        candidates: candidate-set size per request.
        top_k: ranking depth.
        seed: master seed for arrivals, costs, features, and keys.
        dataset: workload schema family.
        scale: dataset scale (tables stay small enough to build fast).
        base_rate: steady-state arrival rate, requests/second.
        burst_factor: arrival-rate multiplier inside a burst.
        burst_every: burst period, in requests.
        burst_length: burst duration, in requests.
        hot_exponent: Zipf exponent of the candidate-key popularity.
        deadline_s: per-request ranking deadline (None disables).
        mode: ``"simulated"`` (virtual clock, byte-deterministic) or
            ``"wall"`` (real clock, honest but noisy).
        chunk_cost_s: simulated service cost per engine clock read.
        cost_jitter: relative uniform jitter on the per-request cost.
        slow_start / slow_stop: request-index window of an injected
            slow-replica fault (None disables).
        slow_factor: service-cost multiplier inside the slow window.
        breaker_window / breaker_threshold / breaker_min_requests /
        breaker_cooldown: circuit-breaker parameters (0 window disables
            the breaker entirely).
    """

    requests: int = 512
    candidates: int = 512
    top_k: int = 10
    seed: int = 7
    dataset: str = "criteo-kaggle"
    scale: str = "tiny"
    base_rate: float = 200.0
    burst_factor: float = 4.0
    burst_every: int = 100
    burst_length: int = 25
    hot_exponent: float = 1.05
    deadline_s: float | None = 0.025
    mode: str = "simulated"
    chunk_cost_s: float = 2e-4
    cost_jitter: float = 0.25
    slow_start: int | None = None
    slow_stop: int | None = None
    slow_factor: float = 100.0
    breaker_window: int = 32
    breaker_threshold: float = 0.5
    breaker_min_requests: int = 8
    breaker_cooldown: int = 16

    def __post_init__(self) -> None:
        if self.requests <= 0 or self.candidates <= 0:
            raise ValueError("requests and candidates must be positive")
        if self.mode not in ("simulated", "wall"):
            raise ValueError(f"mode must be 'simulated' or 'wall', got {self.mode!r}")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")

    def in_burst(self, request_index: int) -> bool:
        if self.burst_every <= 0:
            return False
        return (request_index % self.burst_every) < self.burst_length

    def in_slow_window(self, request_index: int) -> bool:
        if self.slow_start is None or self.slow_stop is None:
            return False
        return self.slow_start <= request_index < self.slow_stop


_REPLAY_HISTOGRAMS = (
    "serve.rank.latency",
    "serve.request.latency",
    "serve.rejected.latency",
)
_REPLAY_COUNTERS = (
    "serve.requests",
    "serve.batches",
    "serve.requests.shed",
    "serve.deadline.exceeded",
    "serve.fallback.candidates",
    "guards.breaker.trips",
    "guards.breaker.shed",
)
_CLUSTER_HISTOGRAMS = _REPLAY_HISTOGRAMS + (
    "serve.cluster.request.latency",
    "serve.cluster.queue.wait",
)
_CLUSTER_COUNTERS = _REPLAY_COUNTERS + (
    "serve.cluster.queue.rejected",
    "serve.cluster.failover",
    "serve.cluster.probe.revived",
    "serve.hedge.issued",
    "serve.hedge.wins",
    "serve.hedge.cancelled",
    "serve.cluster.reload.installs",
    "serve.cluster.generation.mixed",
    "faults.replica_kill.injected",
    "faults.replica_slow.injected",
    "faults.replica_flap.injected",
    "hotcache.hits",
    "hotcache.misses",
    "hotcache.promotions",
    "hotcache.demotions",
    "hotcache.evictions",
    "hotcache.rebalances",
)
_CLUSTER_GAUGES = (
    "serve.cluster.queue.depth",
    "serve.cluster.unhealthy",
    "hotcache.rows",
    "hotcache.bytes",
    "hotcache.hit_rate",
)


def _reset_instruments(
    histograms: tuple[str, ...],
    counters: tuple[str, ...],
    gauges: tuple[str, ...] = (),
) -> None:
    """Zero the replay's process-global instruments before a run."""
    registry = get_registry()
    for name in histograms:
        registry.histogram(name).reset()
    for name in counters:
        registry.counter(name).reset()
    for name in gauges:
        registry.gauge(name).reset()


def _histogram_stats(histogram) -> dict:
    """JSON-ready percentile digest of one histogram ({} when empty)."""
    if histogram.count == 0:
        return {}
    return {
        "count": histogram.count,
        "p50": histogram.percentile(50),
        "p90": histogram.percentile(90),
        "p95": histogram.percentile(95),
        "p99": histogram.percentile(99),
        "mean": histogram.total / histogram.count,
        "max": histogram.percentile(100),
    }


def run_slo_replay(config: ReplayConfig, schema: DatasetSchema | None = None) -> dict:
    """Run one seeded replay and return the JSON-ready SLO report.

    Builds a fresh model + engine + breaker so the run depends only on
    the config.  The serving instruments it reads are reset first (they
    are process-global; a replay is a measurement run, not a production
    counter stream).
    """
    registry = get_registry()
    _reset_instruments(_REPLAY_HISTOGRAMS, _REPLAY_COUNTERS)

    schema = schema or dataset_by_name(config.dataset, config.scale)
    model = build_model(
        workload_by_name(_WORKLOAD_FOR_DATASET[config.dataset]),
        schema=schema,
        seed=config.seed,
    )
    breaker = (
        CircuitBreaker(
            window=config.breaker_window,
            failure_threshold=config.breaker_threshold,
            min_requests=config.breaker_min_requests,
            cooldown=config.breaker_cooldown,
        )
        if config.breaker_window > 0
        else None
    )
    clock = VirtualClock() if config.mode == "simulated" else time.perf_counter
    engine = InferenceEngine(
        model,
        deadline_s=config.deadline_s,
        breaker=breaker,
        clock=clock,
    )

    rng = np.random.default_rng(config.seed)
    # The candidate table is the largest (most skew-sensitive) table;
    # context tables each get their schema-declared skew.
    candidate_table = max(schema.tables, key=lambda t: (t.num_rows, t.name)).name
    candidate_sampler = ZipfSampler(
        num_items=next(t.num_rows for t in schema.tables if t.name == candidate_table),
        exponent=config.hot_exponent,
        seed=config.seed + 1,
    )
    context_samplers = {
        t.name: (ZipfSampler(t.num_rows, t.zipf_exponent, seed=config.seed + 2 + i), t.multiplicity)
        for i, t in enumerate(schema.tables)
    }

    completed = 0
    degraded = 0
    shed = 0
    wall_start = time.perf_counter()
    virtual_start = clock.t if isinstance(clock, VirtualClock) else 0.0

    for r in range(config.requests):
        rate = config.base_rate * (config.burst_factor if config.in_burst(r) else 1.0)
        gap = float(rng.exponential(1.0 / rate))
        cost = config.chunk_cost_s * (1.0 + config.cost_jitter * float(rng.random()))
        if config.in_slow_window(r):
            cost *= config.slow_factor
        if isinstance(clock, VirtualClock):
            clock.advance(gap)
            clock.step = cost

        dense = rng.standard_normal(schema.num_dense).astype(np.float32)
        context = {
            name: sampler.sample(multiplicity)
            for name, (sampler, multiplicity) in context_samplers.items()
        }
        candidate_ids = candidate_sampler.sample(config.candidates)

        try:
            result = engine.rank_candidates(
                dense, context, candidate_table, candidate_ids, top_k=config.top_k
            )
        except LoadShedError:
            shed += 1
            continue
        completed += 1
        if result.degraded:
            degraded += 1

    if isinstance(clock, VirtualClock):
        clock.step = 0.0
        elapsed = clock.t - virtual_start
    else:
        elapsed = time.perf_counter() - wall_start

    latency = registry.histogram("serve.rank.latency")
    total = config.requests
    report = {
        "schema_version": SLO_SCHEMA_VERSION,
        "kind": "slo_report",
        "mode": config.mode,
        "seed": config.seed,
        "config": asdict(config),
        "requests": {
            "total": total,
            "completed": completed,
            "degraded": degraded,
            "shed": shed,
        },
        "rates": {
            "degraded": degraded / total,
            "shed": shed / total,
            "error": 0.0 if total == 0 else (total - completed - shed) / total,
        },
        "latency_s": _histogram_stats(latency),
        "rejected_latency_s": _histogram_stats(
            registry.histogram("serve.rejected.latency")
        ),
        "throughput_rps": total / elapsed if elapsed > 0 else 0.0,
        "elapsed_s": elapsed,
        "deadline_exceeded": int(registry.counter("serve.deadline.exceeded").value),
        "fallback_candidates": int(registry.counter("serve.fallback.candidates").value),
        "breaker": None if breaker is None else breaker.health(),
    }
    return report


@dataclass(frozen=True)
class ClusterReplayConfig(ReplayConfig):
    """A :class:`ReplayConfig` plus the replicated-tier knobs.

    Attributes:
        replicas: pool size (each replica is a full engine + breaker on
            its own virtual clock).
        queue_capacity: cluster admission backlog bound; beyond it
            requests are rejected with retry-after.
        hedge_after_s: hedge budget — requests whose response would take
            longer are re-issued on a second replica (None disables).
        reload_at: request index at which a new serving generation
            (a rebuilt parameter set) starts rolling through the pool,
            or None.
        faults: compact :meth:`~repro.resilience.faults.FaultPlan.parse`
            spec applied per request (``kill_replica`` / ``slow_replica``
            / ``flap_replica``), or None.
        cache_budget_bytes: GPU byte budget for an online
            :class:`~repro.core.hotcache.EmbeddingHotCache` shared by all
            replicas (hot lookups resolve through live cache membership
            and its hit/miss counters land in the SLO report); 0 serves
            from the engines' static hot masks as before.

    The single-engine ``slow_start`` / ``slow_stop`` window is unused
    here — slow replicas come from the fault plan instead, which says
    *which* replica straggles.
    """

    replicas: int = 3
    queue_capacity: int = 64
    hedge_after_s: float | None = None
    reload_at: int | None = None
    faults: str | None = None
    cache_budget_bytes: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError("hedge_after_s must be positive (or None)")
        if self.reload_at is not None and self.reload_at < 0:
            raise ValueError("reload_at must be >= 0")
        if self.mode != "simulated":
            raise ValueError(
                "cluster replay requires mode='simulated' — replica "
                "scheduling is a discrete-event model over per-replica "
                "virtual clocks"
            )
        if self.faults is not None:
            FaultPlan.parse(self.faults)  # fail fast on a bad spec
        if self.cache_budget_bytes < 0:
            raise ValueError("cache_budget_bytes must be >= 0")


def run_cluster_replay(
    config: ClusterReplayConfig, schema: DatasetSchema | None = None
) -> dict:
    """Run one seeded replay against a replicated cluster; return the report.

    Same seeded traffic as :func:`run_slo_replay` (the RNG draw order is
    independent of request outcomes, so fault schedules never perturb
    the workload itself), routed through a
    :class:`~repro.serve.cluster.ServingCluster` with the configured
    fault plan, hedging, and mid-run reload.  The report is a pure
    function of the config — byte-identical run to run.
    """
    registry = get_registry()
    _reset_instruments(_CLUSTER_HISTOGRAMS, _CLUSTER_COUNTERS, _CLUSTER_GAUGES)

    schema = schema or dataset_by_name(config.dataset, config.scale)
    workload = workload_by_name(_WORKLOAD_FOR_DATASET[config.dataset])
    model = build_model(workload, schema=schema, seed=config.seed)
    plan = FaultPlan.parse(config.faults) if config.faults else None

    def make_breaker() -> CircuitBreaker | None:
        if config.breaker_window <= 0:
            return None
        return CircuitBreaker(
            window=config.breaker_window,
            failure_threshold=config.breaker_threshold,
            min_requests=config.breaker_min_requests,
            cooldown=config.breaker_cooldown,
        )

    # One online hot cache shared by the whole pool: replicas serve the
    # same traffic, so membership (and its counters) is cluster-level
    # state.  It cold-starts empty and fills from the replayed requests.
    hot_cache = None
    if config.cache_budget_bytes > 0:
        hot_cache = EmbeddingHotCache.from_schema(
            schema,
            HotCacheConfig(
                budget_bytes=config.cache_budget_bytes,
                rebalance_every=max(1, config.requests // 8),
                seed=config.seed,
            ),
            large_table_min_bytes=1024,
        )

    engines = [
        InferenceEngine(
            model,
            deadline_s=config.deadline_s,
            breaker=make_breaker(),
            clock=VirtualClock(),
            hot_cache=hot_cache,
        )
        for _ in range(config.replicas)
    ]
    cluster = ServingCluster(
        engines,
        queue_capacity=config.queue_capacity,
        hedge_after_s=config.hedge_after_s,
    )
    # The next generation's parameters: a retrain, rebuilt from a
    # derived seed so the swap is a real parameter change.
    reload_model = (
        build_model(workload, schema=schema, seed=config.seed + 9001)
        if config.reload_at is not None
        else None
    )

    rng = np.random.default_rng(config.seed)
    candidate_table = max(schema.tables, key=lambda t: (t.num_rows, t.name)).name
    candidate_sampler = ZipfSampler(
        num_items=next(t.num_rows for t in schema.tables if t.name == candidate_table),
        exponent=config.hot_exponent,
        seed=config.seed + 1,
    )
    context_samplers = {
        t.name: (ZipfSampler(t.num_rows, t.zipf_exponent, seed=config.seed + 2 + i), t.multiplicity)
        for i, t in enumerate(schema.tables)
    }

    now = 0.0
    admitted = completed = degraded = rejected = shed = 0
    hedged_requests = failed_over_requests = 0
    generation_counts: dict[str, int] = {}
    reload_generation: int | None = None

    for r in range(config.requests):
        if plan is not None:
            for i in range(config.replicas):
                alive = plan.replica_alive(i, r)
                if alive != cluster.slots[i].alive:
                    (cluster.revive_replica if alive else cluster.kill_replica)(i)
                cluster.set_slow_factor(i, plan.replica_slow_multiplier(i, r))
        if config.reload_at is not None and r == config.reload_at:
            reload_generation = cluster.begin_reload(reload_model)

        rate = config.base_rate * (config.burst_factor if config.in_burst(r) else 1.0)
        now += float(rng.exponential(1.0 / rate))
        cost = config.chunk_cost_s * (1.0 + config.cost_jitter * float(rng.random()))
        dense = rng.standard_normal(schema.num_dense).astype(np.float32)
        context = {
            name: sampler.sample(multiplicity)
            for name, (sampler, multiplicity) in context_samplers.items()
        }
        candidate_ids = candidate_sampler.sample(config.candidates)

        try:
            response = cluster.submit(
                now, cost, dense, context, candidate_table, candidate_ids,
                top_k=config.top_k,
            )
        except ClusterBusyError:
            rejected += 1
            continue
        except LoadShedError:
            admitted += 1
            shed += 1
            continue
        admitted += 1
        completed += 1
        if response.result.degraded:
            degraded += 1
        if response.hedged:
            hedged_requests += 1
        if response.failovers:
            failed_over_requests += 1
        key = str(response.generation)
        generation_counts[key] = generation_counts.get(key, 0) + 1

    elapsed = now
    total = config.requests

    def count(name: str) -> int:
        return int(registry.counter(name).value)

    return {
        "schema_version": CLUSTER_SLO_SCHEMA_VERSION,
        "kind": "cluster_slo_report",
        "mode": config.mode,
        "seed": config.seed,
        "replicas": config.replicas,
        "config": asdict(config),
        "requests": {
            "total": total,
            "admitted": admitted,
            "completed": completed,
            "degraded": degraded,
            "rejected": rejected,
            "shed": shed,
            "hedged": hedged_requests,
            "failed_over": failed_over_requests,
        },
        "rates": {
            "rejected": rejected / total,
            "shed": shed / total,
            "degraded": degraded / total,
            "error": (admitted - completed - shed) / total,
        },
        "latency_s": _histogram_stats(
            registry.histogram("serve.cluster.request.latency")
        ),
        "queue": {
            "capacity": config.queue_capacity,
            "rejected": count("serve.cluster.queue.rejected"),
            "wait_s": _histogram_stats(
                registry.histogram("serve.cluster.queue.wait")
            ),
        },
        "rejected_latency_s": _histogram_stats(
            registry.histogram("serve.rejected.latency")
        ),
        "failovers": count("serve.cluster.failover"),
        "probe_revived": count("serve.cluster.probe.revived"),
        "hedge": {
            "after_s": config.hedge_after_s,
            "issued": count("serve.hedge.issued"),
            "wins": count("serve.hedge.wins"),
            "cancelled": count("serve.hedge.cancelled"),
        },
        "reload": {
            "requested_at": config.reload_at,
            "generation": reload_generation,
            "installs": count("serve.cluster.reload.installs"),
            "complete": not cluster.reload_active,
            "generations_served": {
                key: generation_counts[key] for key in sorted(generation_counts)
            },
            "mixed_generation_responses": count("serve.cluster.generation.mixed"),
        },
        "faults_injected": {
            "replica_kill": count("faults.replica_kill.injected"),
            "replica_slow": count("faults.replica_slow.injected"),
            "replica_flap": count("faults.replica_flap.injected"),
        },
        "deadline_exceeded": count("serve.deadline.exceeded"),
        "fallback_candidates": count("serve.fallback.candidates"),
        "cluster": cluster.health(),
        "throughput_rps": total / elapsed if elapsed > 0 else 0.0,
        "elapsed_s": elapsed,
    }


def format_cluster_report(report: dict) -> str:
    """Human-readable digest of one cluster SLO report."""
    lat = report.get("latency_s") or {}
    requests = report["requests"]
    rates = report["rates"]
    hedge = report["hedge"]
    reload_info = report["reload"]
    lines = [
        f"cluster slo report (seed {report['seed']}, "
        f"{report['replicas']} replicas): "
        f"{requests['total']} requests in {report['elapsed_s']:.3f}s "
        f"({report['throughput_rps']:.0f} req/s)",
        (
            f"  latency  p50 {1e3 * lat.get('p50', 0):7.2f} ms   "
            f"p95 {1e3 * lat.get('p95', 0):7.2f} ms   "
            f"p99 {1e3 * lat.get('p99', 0):7.2f} ms   "
            f"max {1e3 * lat.get('max', 0):7.2f} ms"
            if lat
            else "  latency  (no completed requests)"
        ),
        f"  outcomes completed {requests['completed']}/{requests['admitted']} admitted  "
        f"degraded {requests['degraded']} ({100 * rates['degraded']:.1f}%)  "
        f"rejected {requests['rejected']} ({100 * rates['rejected']:.1f}%)  "
        f"shed {requests['shed']} ({100 * rates['shed']:.1f}%)",
        f"  ha       failovers {report['failovers']}  "
        f"hedges {hedge['issued']} (wins {hedge['wins']}, "
        f"cancelled {hedge['cancelled']})  "
        f"probe revivals {report['probe_revived']}",
    ]
    if reload_info["requested_at"] is not None:
        generations = ", ".join(
            f"gen {gen}: {count}"
            for gen, count in reload_info["generations_served"].items()
        )
        lines.append(
            f"  reload   gen {reload_info['generation']} at request "
            f"{reload_info['requested_at']}: installs {reload_info['installs']}, "
            f"{'complete' if reload_info['complete'] else 'IN PROGRESS'}, "
            f"mixed-generation responses "
            f"{reload_info['mixed_generation_responses']}  [{generations}]"
        )
    return "\n".join(lines)


def format_slo_report(report: dict) -> str:
    """Human-readable digest of one SLO report."""
    lat = report.get("latency_s") or {}
    rates = report["rates"]
    requests = report["requests"]
    lines = [
        f"slo report ({report['mode']}, seed {report['seed']}): "
        f"{requests['total']} requests in {report['elapsed_s']:.3f}s "
        f"({report['throughput_rps']:.0f} req/s)",
        (
            f"  latency  p50 {1e3 * lat.get('p50', 0):7.2f} ms   "
            f"p95 {1e3 * lat.get('p95', 0):7.2f} ms   "
            f"p99 {1e3 * lat.get('p99', 0):7.2f} ms   "
            f"max {1e3 * lat.get('max', 0):7.2f} ms"
            if lat
            else "  latency  (no completed requests)"
        ),
        f"  outcomes completed {requests['completed']}  "
        f"degraded {requests['degraded']} ({100 * rates['degraded']:.1f}%)  "
        f"shed {requests['shed']} ({100 * rates['shed']:.1f}%)",
    ]
    breaker = report.get("breaker")
    if breaker is not None:
        lines.append(
            f"  breaker  state {breaker['state']}  trips {breaker['trips']}  "
            f"shed {breaker['shed_requests']}  "
            f"failure rate {breaker['failure_rate']:.2f}"
        )
    return "\n".join(lines)
