"""Serving-side companion: inference with hot-resident embeddings.

The paper accelerates *training*, but the same skew powers serving: a
recommendation service scoring candidates for live requests hits the
same hot rows, so keeping the hot bags GPU-resident removes the
CPU-embedding fetch from most requests' critical path (the theme of the
inference-side related work the paper cites: TensorDIMM, DeepRecSys,
Centaur).

- :class:`~repro.serve.engine.InferenceEngine` — forward-only batched
  scoring and top-k candidate ranking over a trained model, with
  hot/cold request classification against an FAE plan's bags and an
  atomic :meth:`~repro.serve.engine.InferenceEngine.install` swap for
  generation reloads.
- :class:`~repro.serve.cluster.ServingCluster` — the highly-available
  tier: N replicated engines behind bounded-queue admission
  (backpressure with retry-after), health-probe routing with failover,
  hedged requests for tail latency, and zero-downtime
  generation-stamped hot-set/model reload.
- :class:`~repro.serve.simulator.ServingSimulator` — request-level
  latency simulation (Poisson arrivals, dynamic batching) comparing
  CPU-embedding serving against hot-resident serving on the calibrated
  cost model.
- :mod:`repro.serve.replay` — the Zipf traffic-replay SLO harness
  (``repro serve-bench``): a seeded, bursty, hot-key-skewed load
  generator driving a real engine — or, with ``--replicas``, the full
  replicated cluster under seeded replica faults, hedging, and mid-run
  reload — byte-deterministic per seed via injected
  :class:`~repro.serve.replay.VirtualClock`s, reporting P50/P95/P99
  latency, throughput, degraded/rejected/shed rates, failovers, hedge
  wins, and generation accounting.

Admission control (candidate-id bounds validation, circuit-breaker load
shedding) lives on the engine; the breaker itself is
:class:`~repro.resilience.guards.CircuitBreaker`, re-exported here with
:class:`~repro.resilience.guards.LoadShedError` for convenience.
"""

from repro.resilience.guards import CircuitBreaker, LoadShedError
from repro.serve.cluster import (
    ClusterBusyError,
    ClusterResponse,
    NoReplicaError,
    ReplicaSlot,
    ServingCluster,
)
from repro.serve.engine import InferenceEngine, RankedItems
from repro.serve.replay import (
    ClusterReplayConfig,
    ReplayConfig,
    VirtualClock,
    format_cluster_report,
    format_slo_report,
    run_cluster_replay,
    run_slo_replay,
)
from repro.serve.simulator import LatencyStats, ServingSimulator

__all__ = [
    "CircuitBreaker",
    "ClusterBusyError",
    "ClusterReplayConfig",
    "ClusterResponse",
    "InferenceEngine",
    "LatencyStats",
    "LoadShedError",
    "NoReplicaError",
    "RankedItems",
    "ReplayConfig",
    "ReplicaSlot",
    "ServingCluster",
    "ServingSimulator",
    "VirtualClock",
    "format_cluster_report",
    "format_slo_report",
    "run_cluster_replay",
    "run_slo_replay",
]
