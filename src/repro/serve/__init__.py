"""Serving-side companion: inference with hot-resident embeddings.

The paper accelerates *training*, but the same skew powers serving: a
recommendation service scoring candidates for live requests hits the
same hot rows, so keeping the hot bags GPU-resident removes the
CPU-embedding fetch from most requests' critical path (the theme of the
inference-side related work the paper cites: TensorDIMM, DeepRecSys,
Centaur).

- :class:`~repro.serve.engine.InferenceEngine` — forward-only batched
  scoring and top-k candidate ranking over a trained model, with
  hot/cold request classification against an FAE plan's bags.
- :class:`~repro.serve.simulator.ServingSimulator` — request-level
  latency simulation (Poisson arrivals, dynamic batching) comparing
  CPU-embedding serving against hot-resident serving on the calibrated
  cost model.
- :mod:`repro.serve.replay` — the Zipf traffic-replay SLO harness
  (``repro serve-bench``): a seeded, bursty, hot-key-skewed load
  generator driving a real engine, byte-deterministic per seed via an
  injected :class:`~repro.serve.replay.VirtualClock`, reporting
  P50/P95/P99 latency, throughput, and degraded/shed rates.

Admission control (candidate-id bounds validation, circuit-breaker load
shedding) lives on the engine; the breaker itself is
:class:`~repro.resilience.guards.CircuitBreaker`, re-exported here with
:class:`~repro.resilience.guards.LoadShedError` for convenience.
"""

from repro.resilience.guards import CircuitBreaker, LoadShedError
from repro.serve.engine import InferenceEngine, RankedItems
from repro.serve.replay import (
    ReplayConfig,
    VirtualClock,
    format_slo_report,
    run_slo_replay,
)
from repro.serve.simulator import LatencyStats, ServingSimulator

__all__ = [
    "CircuitBreaker",
    "InferenceEngine",
    "LatencyStats",
    "LoadShedError",
    "RankedItems",
    "ReplayConfig",
    "ServingSimulator",
    "VirtualClock",
    "format_slo_report",
    "run_slo_replay",
]
