"""Highly-available serving tier: a replica pool over inference engines.

One :class:`~repro.serve.engine.InferenceEngine` is a single point of
failure: a replica death or a hot-set swap takes the whole tier down,
and one straggling replica owns the tail latency.  The FAE premise makes
replication cheap — the hot bags are small enough to sit on every GPU —
so the production answer is a pool: :class:`ServingCluster` fronts N
replicated engines with the four defenses a real serving tier needs.

**Backpressure.**  Admission is bounded: the cluster tracks the in-flight
backlog (requests whose completion lies in the future) and rejects new
work with :class:`ClusterBusyError` — carrying a ``retry_after_s`` hint,
the serving equivalent of HTTP 429 — once the backlog reaches
``queue_capacity``.  Depth, waits, and rejections are surfaced as
``serve.cluster.queue.*`` instruments, and rejected requests record
their (immediate) time-to-rejection in ``serve.rejected.latency`` so
dropped traffic cannot silently flatter the latency report.

**Health-probe routing and failover.**  Requests go to the least-loaded
replica the prober believes healthy.  A replica whose circuit breaker is
open is routed around until it recovers.  Death is discovered the hard
way — a dispatch to a dead replica fails, the request *fails over* to
the next healthy replica (``serve.cluster.failover``), and the prober
marks the replica down — exactly the one-failed-request lag a real load
balancer with a finite probe interval pays.  Recovery is probe-driven:
a revived (e.g. flapping) replica is re-admitted on the next probe
(``serve.cluster.probe.revived``).

**Hedged requests.**  Tail latency is dominated by the occasional slow
replica.  With ``hedge_after_s`` set, a request whose response would not
arrive within the hedge budget is re-issued on a second replica starting
at ``arrival + hedge_after_s``; the first completion wins and the loser
is cancelled (its replica freed at the winner's completion time).
``serve.hedge.issued`` / ``serve.hedge.wins`` / ``serve.hedge.cancelled``
count the mechanism.

**Zero-downtime generation reload.**  :meth:`ServingCluster.begin_reload`
installs a new model / hot set *replica-by-replica at request
boundaries*: one replica at a time is taken out of rotation, drains its
in-flight work, gets the new generation via
:meth:`~repro.serve.engine.InferenceEngine.install`, and rejoins before
the next replica starts.  Every response is stamped with the generation
that served it; because installs only happen between requests on a
drained replica, no response is ever served from a half-swapped state
(``serve.cluster.generation.mixed`` is a defensive counter that must
stay zero).

**Determinism.**  The cluster is a discrete-event front end over real
engines: each replica's engine owns a
:class:`~repro.serve.replay.VirtualClock`, dispatch sets the clock to
the service start time (``max(arrival, replica busy-until)``) and the
per-read step to the request's service cost, and the engine's own clock
reads become the service-time model.  Queueing, failover, hedging, and
reload scheduling are all pure functions of the submitted sequence, so a
seeded replay (:func:`repro.serve.replay.run_cluster_replay`) produces a
byte-identical SLO report per seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.obs import get_registry
from repro.resilience.guards import LoadShedError
from repro.serve.engine import InferenceEngine, RankedItems

__all__ = [
    "ClusterBusyError",
    "ClusterResponse",
    "NoReplicaError",
    "ReloadBundle",
    "ReplicaSlot",
    "ServingCluster",
]


class ClusterBusyError(RuntimeError):
    """Admission queue full — reject with a retry-after hint.

    Attributes:
        depth: backlog depth at rejection.
        capacity: the configured queue capacity.
        retry_after_s: when the earliest in-flight request completes —
            the soonest a retry could possibly be admitted.
    """

    def __init__(self, depth: int, capacity: int, retry_after_s: float) -> None:
        super().__init__(
            f"admission queue full ({depth}/{capacity} in flight); "
            f"retry after {retry_after_s:.4f}s"
        )
        self.depth = depth
        self.capacity = capacity
        self.retry_after_s = retry_after_s


class NoReplicaError(RuntimeError):
    """Every replica is dead or draining — the tier cannot serve."""


@dataclass(frozen=True)
class ReloadBundle:
    """A new serving generation: model, optional hot bags, generation stamp."""

    model: object
    hot_bags: dict | None
    generation: int


@dataclass
class ReplicaSlot:
    """One pooled engine plus the cluster's view of it.

    Attributes:
        engine: the wrapped inference engine.
        replica_id: stable pool index.
        generation: serving generation currently installed.
        alive: ground truth — whether dispatches succeed.
        healthy: the prober's belief; routing uses this, not ``alive``
            (death is learned from a failed request, recovery from a
            probe).
        draining: out of rotation for a pending generation install.
        busy_until: virtual time at which the replica's current work
            completes; dispatch starts at ``max(now, busy_until)``.
        slow_factor: service-cost multiplier (straggler injection).
        served: requests this replica completed (hedges included).
    """

    engine: InferenceEngine
    replica_id: int
    generation: int = 0
    alive: bool = True
    healthy: bool = True
    draining: bool = False
    busy_until: float = 0.0
    slow_factor: float = 1.0
    served: int = 0

    def snapshot(self) -> dict:
        """JSON-ready per-replica state for the cluster health report."""
        breaker = self.engine.breaker
        return {
            "replica": self.replica_id,
            "generation": self.generation,
            "alive": self.alive,
            "healthy": self.healthy,
            "draining": self.draining,
            "busy_until": self.busy_until,
            "served": self.served,
            "breaker": None if breaker is None else breaker.health(),
        }


@dataclass(frozen=True)
class ClusterResponse:
    """One completed cluster request.

    Attributes:
        result: the winning replica's ranking.
        replica: which replica's response was returned.
        generation: the serving generation that produced ``result``
            (stamped per response; never mixed).
        latency_s: arrival → returned-response time (queue wait +
            service, hedging included).
        queue_wait_s: time spent waiting for the winning replica.
        hedged: a hedge request was issued.
        hedge_won: the hedge (not the primary) produced the response.
        failovers: dead/shedding replicas tried before one accepted.
    """

    result: RankedItems
    replica: int
    generation: int
    latency_s: float
    queue_wait_s: float
    hedged: bool = False
    hedge_won: bool = False
    failovers: int = 0


@dataclass(frozen=True)
class _Attempt:
    """Internal: one dispatch on one replica."""

    result: RankedItems
    slot: ReplicaSlot
    start: float
    completion: float
    generation: int


class ServingCluster:
    """Replica pool with failover, hedging, backpressure, and reload.

    Args:
        engines: the replicated engines.  Each must have an injectable
            clock exposing ``t`` and ``step`` (a
            :class:`~repro.serve.replay.VirtualClock`): the cluster is a
            deterministic discrete-event model and drives every
            replica's service time through its clock.
        queue_capacity: max in-flight backlog before admission rejects
            with :class:`ClusterBusyError`.
        hedge_after_s: response-time budget after which a request is
            hedged on a second replica, or None to disable hedging.
    """

    def __init__(
        self,
        engines: list[InferenceEngine],
        *,
        queue_capacity: int = 64,
        hedge_after_s: float | None = None,
    ) -> None:
        if not engines:
            raise ValueError("need at least one replica engine")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if hedge_after_s is not None and hedge_after_s <= 0:
            raise ValueError("hedge_after_s must be positive (or None)")
        for engine in engines:
            clock = engine.clock
            if not hasattr(clock, "t") or not hasattr(clock, "step"):
                raise TypeError(
                    "cluster replicas need an injectable virtual clock "
                    "(VirtualClock) — wall-clock engines cannot be "
                    "deterministically scheduled"
                )
        self.slots = [
            ReplicaSlot(engine=engine, replica_id=i) for i, engine in enumerate(engines)
        ]
        self.queue_capacity = queue_capacity
        self.hedge_after_s = hedge_after_s
        self._completions: list[float] = []
        self._reload_bundle: ReloadBundle | None = None
        self._reload_pending: deque[int] = deque()
        self._next_generation = 1

        registry = get_registry()
        self._queue_depth = registry.gauge("serve.cluster.queue.depth")
        self._queue_wait = registry.histogram("serve.cluster.queue.wait")
        self._queue_rejected = registry.counter("serve.cluster.queue.rejected")
        self._rejected_latency = registry.histogram("serve.rejected.latency")
        self._request_latency = registry.histogram("serve.cluster.request.latency")
        self._failover = registry.counter("serve.cluster.failover")
        self._unhealthy = registry.gauge("serve.cluster.unhealthy")
        self._probe_revived = registry.counter("serve.cluster.probe.revived")
        self._hedge_issued = registry.counter("serve.hedge.issued")
        self._hedge_wins = registry.counter("serve.hedge.wins")
        self._hedge_cancelled = registry.counter("serve.hedge.cancelled")
        self._reload_installs = registry.counter("serve.cluster.reload.installs")
        self._generation_mixed = registry.counter("serve.cluster.generation.mixed")

    # ------------------------------------------------------------------
    # Fault hooks (driven by the replay's FaultPlan schedule)
    # ------------------------------------------------------------------

    def kill_replica(self, replica: int) -> None:
        """Ground-truth death; the prober learns via a failed dispatch."""
        self.slots[replica].alive = False

    def revive_replica(self, replica: int) -> None:
        """Ground-truth recovery; the next probe re-admits the replica."""
        self.slots[replica].alive = True

    def set_slow_factor(self, replica: int, factor: float) -> None:
        """Multiply the replica's service cost (straggler injection)."""
        if factor <= 0:
            raise ValueError("slow factor must be positive")
        self.slots[replica].slow_factor = factor

    # ------------------------------------------------------------------
    # Health probing and routing
    # ------------------------------------------------------------------

    def _probe(self) -> None:
        """Sync the prober's beliefs with what a cheap probe can see.

        A probe detects *recovery* directly (a liveness ping answers) and
        sees an open breaker in the replica's health snapshot; it cannot
        pre-announce a death that hasn't failed a request yet — that
        asymmetry is what makes failover observable.
        """
        unhealthy = 0
        for slot in self.slots:
            breaker = slot.engine.breaker
            breaker_open = breaker is not None and breaker.state == "open"
            if slot.alive and not slot.healthy and not breaker_open:
                slot.healthy = True
                self._probe_revived.inc()
            if breaker_open:
                slot.healthy = False
            if not slot.healthy:
                unhealthy += 1
        self._unhealthy.set(unhealthy)

    def _route(self, exclude: set[int]) -> ReplicaSlot | None:
        """Least-loaded believed-healthy replica, ties broken by id.

        Falls back to believed-unhealthy replicas when nothing healthy
        remains (serving degraded beats serving nothing); returns None
        only when every replica is excluded or draining.
        """
        candidates = [
            s for s in self.slots if not s.draining and s.replica_id not in exclude
        ]
        healthy = [s for s in candidates if s.healthy]
        pool = healthy or candidates
        if not pool:
            return None
        return min(pool, key=lambda s: (s.busy_until, s.replica_id))

    # ------------------------------------------------------------------
    # Generation reload
    # ------------------------------------------------------------------

    def begin_reload(self, model, hot_bags: dict | None = None) -> int:
        """Queue a new serving generation; replicas swap one at a time.

        Returns the generation number the bundle will serve as.  The
        actual installs happen at subsequent request boundaries
        (:meth:`submit` calls), each on a fully drained replica.
        Beginning a new reload while one is pending fast-forwards the
        pending replicas to the newest bundle (the old target generation
        is skipped, never half-applied).
        """
        generation = self._next_generation
        self._next_generation += 1
        self._reload_bundle = ReloadBundle(
            model=model, hot_bags=hot_bags, generation=generation
        )
        self._reload_pending = deque(
            sorted(s.replica_id for s in self.slots if s.generation != generation)
        )
        return generation

    @property
    def reload_active(self) -> bool:
        """Whether any replica still awaits the pending generation."""
        return bool(self._reload_pending)

    def reload_state(self) -> dict:
        """JSON-ready reload progress snapshot."""
        return {
            "active": self.reload_active,
            "target_generation": (
                None if self._reload_bundle is None else self._reload_bundle.generation
            ),
            "pending_replicas": sorted(self._reload_pending),
            "generations": [s.generation for s in self.slots],
        }

    def _advance_reload(self, now: float) -> None:
        """Install the pending generation on drained replicas.

        Called at each request boundary.  The head-of-queue replica is
        marked draining (no new work); once its in-flight work has
        completed (``busy_until <= now``) the new generation is
        installed and it rejoins rotation, and the next replica starts
        draining.  A dead replica is installed immediately — it serves
        nothing, and must come back (if revived) at the new generation.
        """
        while self._reload_pending:
            slot = self.slots[self._reload_pending[0]]
            slot.draining = True
            if slot.alive and slot.busy_until > now:
                return  # still draining; keep serving on the others
            bundle = self._reload_bundle
            slot.engine.install(bundle.model, bundle.hot_bags)
            slot.generation = bundle.generation
            slot.draining = False
            self._reload_installs.inc()
            self._reload_pending.popleft()

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------

    def queue_depth(self, now: float) -> int:
        """In-flight backlog: admitted requests completing after ``now``."""
        self._completions = [t for t in self._completions if t > now]
        return len(self._completions)

    def _dispatch(
        self,
        slot: ReplicaSlot,
        earliest_start: float,
        cost_s: float,
        dense: np.ndarray,
        sparse_context: dict[str, np.ndarray],
        candidate_table: str,
        candidate_ids: np.ndarray,
        top_k: int,
    ) -> _Attempt:
        """Run the request on one replica's engine at its virtual time."""
        start = max(earliest_start, slot.busy_until)
        clock = slot.engine.clock
        clock.t = start
        clock.step = cost_s * slot.slow_factor
        generation = slot.generation
        try:
            result = slot.engine.rank_candidates(
                dense, sparse_context, candidate_table, candidate_ids, top_k=top_k
            )
        finally:
            clock.step = 0.0
        completion = clock.t
        if slot.generation != generation:
            # Installs only happen between requests, so this cannot fire;
            # the counter exists to make the claim falsifiable.
            self._generation_mixed.inc()
        slot.busy_until = completion
        slot.served += 1
        return _Attempt(
            result=result,
            slot=slot,
            start=start,
            completion=completion,
            generation=generation,
        )

    def submit(
        self,
        now: float,
        cost_s: float,
        dense: np.ndarray,
        sparse_context: dict[str, np.ndarray],
        candidate_table: str,
        candidate_ids: np.ndarray,
        top_k: int = 10,
    ) -> ClusterResponse:
        """Admit, route, (maybe) hedge, and serve one request.

        Args:
            now: the request's arrival time on the cluster's virtual
                timeline (monotonically non-decreasing across calls).
            cost_s: per-clock-read service cost of this request — the
                replay's service-time model; replica slow factors
                multiply it.
            dense / sparse_context / candidate_table / candidate_ids /
            top_k: the ranking request, passed through to
                :meth:`~repro.serve.engine.InferenceEngine.rank_candidates`.

        Raises:
            ClusterBusyError: backlog at capacity (with retry-after).
            LoadShedError: every available replica's breaker shed it.
            NoReplicaError: no replica could accept the request at all.
        """
        self._probe()
        self._advance_reload(now)

        depth = self.queue_depth(now)
        self._queue_depth.set(depth)
        if depth >= self.queue_capacity:
            self._queue_rejected.inc()
            # Rejection is immediate — but it must still appear in the
            # latency accounting of refused traffic.
            self._rejected_latency.observe(0.0)
            raise ClusterBusyError(
                depth, self.queue_capacity, min(self._completions) - now
            )

        failovers = 0
        tried: set[int] = set()
        all_shed = False
        attempt: _Attempt | None = None
        while attempt is None:
            slot = self._route(tried)
            if slot is None:
                if all_shed:
                    raise LoadShedError(
                        "every serving replica is shedding load; retry later"
                    )
                raise NoReplicaError("no live replica available")
            if not slot.alive:
                # The failed dispatch is how the prober learns of death.
                slot.healthy = False
                tried.add(slot.replica_id)
                failovers += 1
                self._failover.inc()
                continue
            try:
                attempt = self._dispatch(
                    slot, now, cost_s, dense, sparse_context,
                    candidate_table, candidate_ids, top_k,
                )
            except LoadShedError:
                # Breaker open on this replica: route around it.
                slot.healthy = False
                all_shed = True
                tried.add(slot.replica_id)
                failovers += 1
                self._failover.inc()

        hedged = False
        hedge_won = False
        if (
            self.hedge_after_s is not None
            and attempt.completion - now > self.hedge_after_s
        ):
            hedge_slot = self._route(tried | {attempt.slot.replica_id})
            if hedge_slot is not None and hedge_slot.alive:
                hedged = True
                self._hedge_issued.inc()
                try:
                    hedge_attempt = self._dispatch(
                        hedge_slot, now + self.hedge_after_s, cost_s, dense,
                        sparse_context, candidate_table, candidate_ids, top_k,
                    )
                except LoadShedError:
                    hedge_attempt = None
                if hedge_attempt is not None:
                    # First completion wins; the loser is cancelled, its
                    # replica freed at the winner's completion time.
                    if hedge_attempt.completion < attempt.completion:
                        hedge_won = True
                        self._hedge_wins.inc()
                        attempt.slot.busy_until = min(
                            attempt.slot.busy_until, hedge_attempt.completion
                        )
                        attempt = hedge_attempt
                    else:
                        hedge_slot.busy_until = min(
                            hedge_slot.busy_until, attempt.completion
                        )
                    self._hedge_cancelled.inc()

        self._completions.append(attempt.completion)
        queue_wait = attempt.start - now
        latency = attempt.completion - now
        self._queue_wait.observe(queue_wait)
        self._request_latency.observe(latency)
        return ClusterResponse(
            result=attempt.result,
            replica=attempt.slot.replica_id,
            generation=attempt.generation,
            latency_s=latency,
            queue_wait_s=queue_wait,
            hedged=hedged,
            hedge_won=hedge_won,
            failovers=failovers,
        )

    def health(self) -> dict:
        """JSON-ready cluster snapshot: per-replica states plus reload.

        ``cache`` carries the hot-cache stats when the pool serves
        through an :class:`~repro.core.hotcache.EmbeddingHotCache`
        (replicas share one cache, so the first equipped engine speaks
        for the tier), or None when serving a frozen hot set.
        """
        cache = None
        for slot in self.slots:
            if slot.engine.hot_cache is not None:
                cache = slot.engine.hot_cache.stats()
                break
        return {
            "replicas": [slot.snapshot() for slot in self.slots],
            "reload": self.reload_state(),
            "cache": cache,
        }
