"""Forward-only inference over trained recommender models.

The engine wraps a :class:`~repro.models.base.RecModel` for batched
scoring and candidate ranking.  When given the hot bags of an FAE plan it
also classifies each request as *hot* (all its lookups are GPU-resident)
or *cold* — the quantity the serving simulator prices.

Serving hardening: ranking accepts a per-request *deadline*.  Candidates
are scored in chunks with the elapsed time checked between chunks; when
the deadline trips, the remaining candidates fall back to a cheap
embedding-only score (mean hidden activation of the candidate row,
squashed through a sigmoid) instead of the full model forward, so the
request completes degraded rather than late.  Fallback use is recorded
under ``serve.deadline.exceeded`` / ``serve.fallback.candidates`` and
flagged on the returned :class:`RankedItems`.

Admission control: candidate ids are bounds-checked against the
candidate table before any scoring (a single wild id would otherwise
index out of the embedding matrix deep inside the forward pass), and an
optional :class:`~repro.resilience.guards.CircuitBreaker` sheds load
when the recent degraded-request rate crosses its threshold —
:meth:`InferenceEngine.rank_candidates` raises
:class:`~repro.resilience.guards.LoadShedError` while the breaker is
open, and :meth:`InferenceEngine.health` reports the breaker state plus
request counters for external monitoring.  Logical requests
(``serve.requests``) and chunked forward calls (``serve.batches``) are
counted separately, and shed requests record their time-to-rejection in
``serve.rejected.latency`` so dropped traffic stays visible in latency
accounting.

:meth:`InferenceEngine.install` atomically swaps the served model and
hot bags between requests — the primitive the replicated serving tier
(:mod:`repro.serve.cluster`) builds zero-downtime generation reloads on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.classifier import HotEmbeddingBagSpec
from repro.core.hotcache import EmbeddingHotCache
from repro.data.loader import MiniBatch, batch_from_log
from repro.models.base import RecModel
from repro.nn.activations import sigmoid
from repro.obs import get_registry, span
from repro.resilience.guards import CircuitBreaker, LoadShedError

__all__ = ["InferenceEngine", "RankedItems"]


@dataclass(frozen=True)
class RankedItems:
    """Top-k ranking result for one request.

    Attributes:
        item_ids: candidate ids ordered best-first.
        scores: matching click probabilities.
        degraded: True when the deadline tripped and some candidates were
            scored by the cheap fallback path instead of the full model.
    """

    item_ids: np.ndarray
    scores: np.ndarray
    degraded: bool = False


class InferenceEngine:
    """Batched scoring and ranking over a trained model.

    Args:
        model: a trained recommender (forward-only use).
        hot_bags: optional FAE hot-bag specs for request classification.
        batch_size: maximum scoring batch.
        deadline_s: default per-request ranking deadline in seconds, or
            None for no deadline.
        breaker: optional circuit breaker; when its rolling degraded-rate
            trips, :meth:`rank_candidates` sheds requests with
            :class:`~repro.resilience.guards.LoadShedError` instead of
            queueing more work behind an overloaded model.
        clock: monotonic-seconds source used for latency measurement and
            deadline checks (``time.perf_counter`` by default).  The SLO
            replay harness injects a virtual clock here so a seeded load
            test measures byte-identical latencies run after run.
        hot_cache: optional
            :class:`~repro.core.hotcache.EmbeddingHotCache`.  When set,
            every ranking request's candidate lookups feed the cache
            (hit/miss counters), a full observation window triggers an
            in-place rebalance between requests, and hot-request
            classification follows the cache's *live* membership instead
            of a frozen bag set.
    """

    def __init__(
        self,
        model: RecModel,
        hot_bags: dict[str, HotEmbeddingBagSpec] | None = None,
        batch_size: int = 2048,
        deadline_s: float | None = None,
        breaker: CircuitBreaker | None = None,
        clock: Callable[[], float] | None = None,
        hot_cache: EmbeddingHotCache | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        self.model = model
        self.batch_size = batch_size
        self.deadline_s = deadline_s
        self.breaker = breaker
        self.clock = clock or time.perf_counter
        self.hot_cache = hot_cache
        self._cache_mask_version: int | None = None
        self._hot_masks = (
            {name: bag.hot_mask() for name, bag in hot_bags.items()} if hot_bags else None
        )
        if hot_cache is not None and hot_bags is None:
            self._refresh_cache_masks()
        registry = get_registry()
        self._latency = registry.histogram("serve.request.latency")
        self._rank_latency = registry.histogram("serve.rank.latency")
        self._rejected_latency = registry.histogram("serve.rejected.latency")
        self._requests = registry.counter("serve.requests")
        self._batches = registry.counter("serve.batches")
        self._shed = registry.counter("serve.requests.shed")
        self._deadline_exceeded = registry.counter("serve.deadline.exceeded")
        self._fallback_candidates = registry.counter("serve.fallback.candidates")

    def predict_proba(self, log, indices: np.ndarray | None = None) -> np.ndarray:
        """Click probabilities for rows of a click log (one logical request)."""
        indices = np.arange(len(log)) if indices is None else np.asarray(indices)
        probs = np.empty(len(indices), dtype=np.float64)
        self._requests.inc()
        with span("serve.predict", rows=len(indices)):
            for start in range(0, len(indices), self.batch_size):
                chunk = indices[start : start + self.batch_size]
                probs[start : start + len(chunk)] = self.predict_batch(
                    batch_from_log(log, chunk)
                )
        return probs

    def predict_batch(self, batch: MiniBatch) -> np.ndarray:
        """Click probabilities for an already-built mini-batch.

        Counts one ``serve.batches`` forward call — *not* a logical
        request: one ranking request fans out into many chunked forward
        calls, and conflating the two used to inflate
        ``health()["requests"]`` by the chunk count.
        """
        start = self.clock()
        logits = self.model.forward(batch)
        probs = sigmoid(np.asarray(logits, dtype=np.float64))
        self._latency.observe(self.clock() - start)
        self._batches.inc()
        return probs

    def rank_candidates(
        self,
        dense: np.ndarray,
        sparse_context: dict[str, np.ndarray],
        candidate_table: str,
        candidate_ids: np.ndarray,
        top_k: int = 10,
        deadline_s: float | None = None,
    ) -> RankedItems:
        """Score one request against ``candidate_ids`` and return the top-k.

        The request's context features are broadcast across candidates;
        ``candidate_table``'s ids are replaced per candidate — the
        standard candidate-ranking layout of a retrieval+ranking stack.

        Args:
            dense: ``(num_dense,)`` request features.
            sparse_context: table name -> ``(multiplicity,)`` context ids
                (must include every table, incl. the candidate table,
                whose value is overwritten per candidate).
            candidate_table: which table the candidates index.
            candidate_ids: ``(C,)`` candidate row ids.
            top_k: how many to return.
            deadline_s: per-request deadline; falls back to the engine
                default when None.  Candidates not scored before the
                deadline get the cheap fallback score and the result is
                marked ``degraded``.

        Raises:
            KeyError: if the candidate table is unknown.
            ValueError: if any candidate id is outside the table.
            LoadShedError: if the circuit breaker is open.
        """
        admission_start = self.clock()
        if self.breaker is not None and not self.breaker.allow():
            self._shed.inc()
            # Shed requests still took caller-visible time to reject;
            # without this sample they vanish from latency accounting
            # and P99 can look good by dropping traffic.
            self._rejected_latency.observe(self.clock() - admission_start)
            raise LoadShedError(
                f"serving circuit breaker is {self.breaker.state} "
                f"(recent failure rate {self.breaker.failure_rate():.2f}); "
                "request shed — retry after the cooldown"
            )
        self._requests.inc()
        if candidate_table not in self.model.tables:
            raise KeyError(f"unknown candidate table {candidate_table!r}")
        candidate_ids = self._check_candidate_ids(candidate_table, candidate_ids)
        count = len(candidate_ids)
        if count == 0:
            raise ValueError("need at least one candidate")
        if deadline_s is None:
            deadline_s = self.deadline_s
        if self.hot_cache is not None:
            # Serving traffic feeds the same cache the trainers consult;
            # a full window turns over *between* requests, so no request
            # ever observes a half-rebalanced hot set.
            self.hot_cache.observe({candidate_table: candidate_ids})
            if self.hot_cache.should_rebalance():
                self.hot_cache.rebalance()

        rank_start = self.clock()
        with span("serve.rank", candidates=count, top_k=top_k):
            result = self._rank(
                dense, sparse_context, candidate_table, candidate_ids, top_k, deadline_s
            )
        self._rank_latency.observe(self.clock() - rank_start)
        if self.breaker is not None:
            # A degraded (deadline-tripped) response counts as a failure:
            # a sustained run of them means the engine cannot keep up and
            # should shed rather than degrade every caller.
            self.breaker.record(success=not result.degraded)
        return result

    def _check_candidate_ids(
        self, candidate_table: str, candidate_ids: np.ndarray
    ) -> np.ndarray:
        """Bounds-check candidate ids against the candidate table.

        Raises:
            ValueError: naming the table, the offending id, and the valid
                range — a wild id would otherwise fault deep inside the
                embedding gather where the cause is unrecoverable.
        """
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        num_rows = self.model.tables[candidate_table].num_rows
        bad = (candidate_ids < 0) | (candidate_ids >= num_rows)
        if bad.any():
            offender = int(candidate_ids[bad][0])
            raise ValueError(
                f"candidate id {offender} is out of range for table "
                f"{candidate_table!r} (valid ids are [0, {num_rows}))"
            )
        return candidate_ids

    def _fallback_scores(self, candidate_table: str, candidate_ids: np.ndarray) -> np.ndarray:
        """Cheap deadline-fallback score: squashed mean of the candidate row.

        No MLP, no feature interaction — one embedding read per
        candidate.  Far less accurate than the full model, but orders of
        magnitude cheaper, which is the point of a deadline fallback.
        ``candidate_ids`` were already bounds-checked on admission in
        :meth:`rank_candidates`; re-validating here would burn time at
        exactly the moment the engine is behind deadline.
        """
        rows = self.model.tables[candidate_table].subset(candidate_ids)
        return sigmoid(rows.mean(axis=1).astype(np.float64))

    def _rank(
        self,
        dense: np.ndarray,
        sparse_context: dict[str, np.ndarray],
        candidate_table: str,
        candidate_ids: np.ndarray,
        top_k: int,
        deadline_s: float | None,
    ) -> RankedItems:
        count = len(candidate_ids)
        dense_row = np.asarray(dense, dtype=np.float32)
        context = {
            name: np.asarray(ids, dtype=np.int64)[None, :]
            for name, ids in sparse_context.items()
        }
        mult = context[candidate_table].shape[1]

        # Small chunks under a deadline so the elapsed check fires often
        # enough to matter; full batches otherwise.
        chunk_size = self.batch_size if deadline_s is None else min(self.batch_size, 256)
        start_time = self.clock()
        scores = np.empty(count, dtype=np.float64)
        degraded = False
        for start in range(0, count, chunk_size):
            if deadline_s is not None and self.clock() - start_time > deadline_s:
                remaining = candidate_ids[start:]
                scores[start:] = self._fallback_scores(candidate_table, remaining)
                self._deadline_exceeded.inc()
                self._fallback_candidates.inc(len(remaining))
                degraded = True
                break
            chunk_ids = candidate_ids[start : start + chunk_size]
            chunk = len(chunk_ids)
            sparse_block = {name: np.tile(ids, (chunk, 1)) for name, ids in context.items()}
            sparse_block[candidate_table] = np.tile(chunk_ids[:, None], (1, mult))
            batch = MiniBatch(
                dense=np.tile(dense_row, (chunk, 1)),
                sparse=sparse_block,
                labels=np.zeros(chunk, dtype=np.float32),
                indices=np.arange(chunk, dtype=np.int64),
            )
            scores[start : start + chunk] = self.predict_batch(batch)
        order = np.argsort(scores)[::-1][:top_k]
        return RankedItems(
            item_ids=candidate_ids[order], scores=scores[order], degraded=degraded
        )

    def install(
        self,
        model: RecModel,
        hot_bags: dict[str, HotEmbeddingBagSpec] | None = None,
    ) -> None:
        """Atomically swap the served model (and hot-bag hot set).

        The swap is two attribute rebinds between requests — no request
        ever sees a half-installed state, which is what lets the
        replicated cluster reload a new FAE plan or parameter set
        replica-by-replica with zero downtime.  ``hot_bags=None``
        disables hot-request classification for the new generation
        (install a plan's bags to keep it).  Counters and the breaker
        survive the swap: they describe the replica, not the generation.
        """
        hot_masks = (
            {name: bag.hot_mask() for name, bag in hot_bags.items()} if hot_bags else None
        )
        self.model = model
        self._hot_masks = hot_masks

    def health(self) -> dict:
        """JSON-ready serving health snapshot.

        Combines the engine's request counters with the breaker state (a
        ``breaker`` key, or None when admission control is disabled) —
        the payload a load balancer's health probe would poll.
        ``requests`` counts logical requests (one per ranking or
        prediction call); ``batches`` counts model forward calls, which
        a chunked ranking multiplies.
        """
        return {
            "requests": self._requests.value,
            "batches": self._batches.value,
            "shed": self._shed.value,
            "deadline_exceeded": self._deadline_exceeded.value,
            "fallback_candidates": self._fallback_candidates.value,
            "breaker": None if self.breaker is None else self.breaker.health(),
            "cache": None if self.hot_cache is None else self.hot_cache.stats(),
        }

    def _refresh_cache_masks(self) -> None:
        """Rebuild hot masks from the cache's current membership."""
        self._hot_masks = {
            name: bag.hot_mask() for name, bag in self.hot_cache.bags().items()
        }
        self._cache_mask_version = self.hot_cache.version

    def hot_request_mask(self, log, indices: np.ndarray | None = None) -> np.ndarray:
        """Which requests touch only hot rows (GPU-servable end to end).

        With a hot cache installed, the masks track the cache's live
        membership (lazily rebuilt when its version changes).

        Raises:
            RuntimeError: if the engine was built without hot bags.
        """
        if (
            self.hot_cache is not None
            and self._cache_mask_version != self.hot_cache.version
        ):
            self._refresh_cache_masks()
        if self._hot_masks is None:
            raise RuntimeError("engine was constructed without hot bags")
        indices = np.arange(len(log)) if indices is None else np.asarray(indices)
        hot = np.ones(len(indices), dtype=bool)
        for name, ids in log.sparse.items():
            mask = self._hot_masks[name]
            hot &= mask[ids[indices]].all(axis=1)
        return hot
