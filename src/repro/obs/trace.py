"""Tracing spans: nestable, thread-safe wall-time measurement.

The tracer answers the question every perf PR starts with — *where does
the time go?* — for a pipeline whose cost structure is the paper's whole
argument (profiling latency in Figs 8-11, transition costs in Table V,
the breakdown in Fig 14).  Usage::

    from repro.obs import span

    with span("calibrate.optimize", tables=4) as sp:
        ...
        sp.set(iterations=12)

Spans nest: a span opened while another is active on the same thread
records that span as its parent, so the exporter can rebuild the call
tree (``calibrate`` -> ``calibrate.sample`` -> ...).  Each thread keeps
its own stack; the finished-record list is guarded by a lock, so
concurrent threads can trace freely.

Tracing is **disabled by default**.  When disabled, :func:`span` returns
a shared no-op object — no allocation, no clock reads, no locking — so
instrumented hot paths cost nothing.  Enable globally with
:func:`enable_tracing` (or the ``REPRO_TRACE=1`` environment variable),
or temporarily with the :func:`tracing` context manager.

:func:`timed` is the always-on sibling: it measures wall time whether or
not tracing is enabled (two clock reads) and *additionally* records a
span when it is.  The legacy ``last_elapsed_seconds``-style attributes
across :mod:`repro.core` are thin aliases over its ``.seconds``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanRecord",
    "Timer",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "span",
    "timed",
    "tracing",
    "tracing_enabled",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes:
        name: dotted span name (``"calibrate.sample"``).
        span_id: unique id within the tracer.
        parent_id: enclosing span's id, or None for a root span.
        depth: nesting depth (0 for roots).
        start: ``time.perf_counter()`` at entry.
        end: ``time.perf_counter()`` at exit.
        attributes: caller-supplied key/values (bytes moved, rows, ...).
    """

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    start: float
    end: float
    attributes: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready representation (one JSONL record)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": self.attributes,
        }


class Span:
    """A live span; use as a context manager.

    Exception-safe: the span is recorded (with an ``error`` attribute)
    even when the body raises, and the exception propagates.
    """

    __slots__ = ("tracer", "name", "attributes", "span_id", "parent_id", "depth", "_start")

    def __init__(self, tracer: Tracer, name: str, attributes: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0
        self._start = 0.0

    def set(self, **attrs) -> Span:
        """Attach attributes to the span; returns self for chaining."""
        self.attributes.update(attrs)
        return self

    def __enter__(self) -> Span:
        self.tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        if exc is not None:
            self.attributes["error"] = repr(exc)
        self.tracer._pop(self, end)
        return False


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> _NoopSpan:
        return self

    def __enter__(self) -> _NoopSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans; one global instance serves the library.

    Args:
        enabled: whether :meth:`span` records anything.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._next_id = 1
        self._local = threading.local()

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, **attributes) -> Span | _NoopSpan:
        """Open a span (no-op object when the tracer is disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, attributes)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_obj: Span) -> None:
        stack = self._stack()
        with self._lock:
            span_obj.span_id = self._next_id
            self._next_id += 1
        if stack:
            span_obj.parent_id = stack[-1].span_id
            span_obj.depth = len(stack)
        stack.append(span_obj)

    def _pop(self, span_obj: Span, end: float) -> None:
        stack = self._stack()
        # Pop back to (and including) this span even if inner spans were
        # leaked by a non-context-manager misuse.
        while stack:
            top = stack.pop()
            if top is span_obj:
                break
        record = SpanRecord(
            name=span_obj.name,
            span_id=span_obj.span_id,
            parent_id=span_obj.parent_id,
            depth=span_obj.depth,
            start=span_obj._start,
            end=end,
            attributes=span_obj.attributes,
        )
        with self._lock:
            self._records.append(record)

    # -- inspection -----------------------------------------------------

    def records(self) -> list[SpanRecord]:
        """Snapshot of all finished spans (oldest first)."""
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        """Drop every recorded span (id counter keeps increasing)."""
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


_TRACER = Tracer(enabled=os.environ.get("REPRO_TRACE", "") not in ("", "0"))


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER.enabled


def enable_tracing() -> None:
    """Turn span recording on for the global tracer."""
    _TRACER.enabled = True


def disable_tracing() -> None:
    """Turn span recording off (instrumentation reverts to no-ops)."""
    _TRACER.enabled = False


class tracing:
    """Context manager scoping tracing on (or off) — handy in tests."""

    def __init__(self, enabled: bool = True) -> None:
        self._target = enabled
        self._previous = False

    def __enter__(self) -> Tracer:
        self._previous = _TRACER.enabled
        _TRACER.enabled = self._target
        return _TRACER

    def __exit__(self, exc_type, exc, tb) -> bool:
        _TRACER.enabled = self._previous
        return False


def span(name: str, **attributes) -> Span | _NoopSpan:
    """Open a span on the global tracer (no-op while tracing is off)."""
    if not _TRACER.enabled:
        return _NOOP_SPAN
    return Span(_TRACER, name, attributes)


class Timer:
    """Always-on stopwatch that doubles as a span when tracing is on.

    Attributes:
        seconds: wall time of the body; valid after the ``with`` exits.
    """

    __slots__ = ("name", "_attributes", "_span", "_start", "seconds")

    def __init__(self, name: str, **attributes) -> None:
        self.name = name
        self._attributes = attributes
        self._span: Span | _NoopSpan = _NOOP_SPAN
        self._start = 0.0
        self.seconds = 0.0

    def set(self, **attrs) -> Timer:
        """Forward attributes to the underlying span (if recording)."""
        self._span.set(**attrs)
        return self

    def __enter__(self) -> Timer:
        self._span = span(self.name, **self._attributes)
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._start
        self._span.__exit__(exc_type, exc, tb)
        return False


def timed(name: str, **attributes) -> Timer:
    """Measure wall time unconditionally; record a span when tracing."""
    return Timer(name, **attributes)
