"""Metrics registry: named counters, gauges, and histograms.

Counters accumulate monotonically (``fae.sync.bytes``), gauges hold the
latest value of a level (``scheduler.rate``), histograms collect samples
and summarize them with percentiles (``serve.request.latency``).  All
three are created on first use through a :class:`MetricsRegistry`::

    from repro.obs import get_registry

    registry = get_registry()
    registry.counter("fae.sync.events").inc()
    registry.gauge("scheduler.rate").set(50)
    registry.histogram("serve.request.latency").observe(0.0042)

Unlike tracing (ambient, off by default), metrics are explicit: only
code that calls the registry pays for it, so the registry is always
live.  ``snapshot()`` returns a JSON-ready view of every instrument;
``reset()`` zeroes them (tests and per-run deltas use both).  All
instruments are thread-safe.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]


class Counter:
    """A monotonically increasing sum.

    Attributes:
        name: registry name.
    """

    __slots__ = ("name", "_lock", "_value", "_count")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._count = 0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self._value += amount
            self._count += 1

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def increments(self) -> int:
        """How many times :meth:`inc` was called."""
        with self._lock:
            return self._count

    def summary(self) -> dict:
        with self._lock:
            return {"kind": "counter", "value": self._value, "increments": self._count}

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._count = 0


class Gauge:
    """The most recent value of some level (rate, fraction, depth)."""

    __slots__ = ("name", "_lock", "_value", "_set_count")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._set_count = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._set_count += 1

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (gauges may go down)."""
        with self._lock:
            self._value += delta
            self._set_count += 1

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def summary(self) -> dict:
        with self._lock:
            return {"kind": "gauge", "value": self._value, "updates": self._set_count}

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._set_count = 0


class Histogram:
    """Sample collector with percentile summaries.

    Retains at most ``max_samples`` observations.  Past the cap, new
    observations overwrite the buffer cyclically (a ring keyed on the
    running count), so the retained set is approximately the **most
    recent** ``max_samples`` observations — *not* a uniform reservoir
    over the whole stream.  Interior percentiles therefore reflect the
    trailing window once the cap is exceeded (fine for steady-state
    latency distributions, biased for drifting ones), while ``count`` /
    ``sum`` / ``min`` / ``max`` stay exact over the full stream, and
    ``percentile(0)`` / ``percentile(100)`` always return the exact
    stream min/max.
    """

    __slots__ = ("name", "max_samples", "_lock", "_samples", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, max_samples: int = 65536) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.name = name
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                # Deterministic stride replacement keeps a spread of the
                # stream without unbounded growth.
                self._samples[self._count % self.max_samples] = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile over retained samples.

        Edge cases (pinned by tests): an empty histogram raises
        ``ValueError``; ``p=0`` and ``p=100`` return the *exact* stream
        min/max (tracked independently of the retention buffer, so they
        are immune to the ring-buffer bias documented on the class); a
        single retained sample is returned for every ``p``.

        Args:
            p: percentile in [0, 100].
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self._count == 0:
                raise ValueError(f"histogram {self.name} has no samples")
            if p == 0:
                return self._min
            if p == 100:
                return self._max
            samples = sorted(self._samples)
        if len(samples) == 1:
            return samples[0]
        rank = p / 100 * (len(samples) - 1)
        low = int(rank)
        high = min(low + 1, len(samples) - 1)
        fraction = rank - low
        return samples[low] * (1 - fraction) + samples[high] * fraction

    def summary(self) -> dict:
        with self._lock:
            if self._count == 0:
                return {"kind": "histogram", "count": 0}
            base = {
                "kind": "histogram",
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
            }
        return base | {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")


class MetricsRegistry:
    """Creates and holds named instruments; names are unique per kind."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, factory, kind):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory(name)
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, max_samples: int = 65536) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get(name, lambda n: Histogram(n, max_samples), Histogram)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready summaries of every instrument, by name."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instruments[name].summary() for name in sorted(instruments)}

    def reset(self) -> None:
        """Zero every instrument (names stay registered)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()

    def clear(self) -> None:
        """Forget every instrument entirely."""
        with self._lock:
            self._instruments.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY
