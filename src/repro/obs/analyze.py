"""Trace analysis: self-time attribution, hotspots, and the critical path.

The tracer (:mod:`repro.obs.trace`) answers *what ran*; this module
answers *where the time actually went*.  It ingests exported span
records — either live :class:`~repro.obs.trace.SpanRecord` objects or
the dicts round-tripped through ``trace.jsonl`` — and computes:

- **self time** per span instance: its duration minus the summed
  durations of its *direct* children.  Because spans nest properly
  (a child's interval lies inside its parent's), self times are a
  partition of the wall clock: summed over every instance they equal
  the summed duration of the root spans, to floating-point noise.
  ``repro trace analyze`` asserts this conservation and reports the
  coverage so a broken trace is visible immediately.
- **call-tree aggregation** by name path (``calibrate`` →
  ``calibrate.estimate``), with total / self / count / min / max per
  path, deterministically ordered by (-total, path) so output diffs
  are stable across runs.
- **hotspots**: the top-N paths by aggregated self time — the table a
  perf PR quotes before and after.
- **critical path**: starting from the longest root instance, the
  chain of heaviest children down to a leaf; the sequence of frames
  that bounds the end-to-end wall time.

Everything is exact arithmetic over the recorded intervals; no
sampling, no clock reads of its own.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "TraceAnalysis",
    "analyze_file",
    "analyze_records",
    "render_analysis",
]

ANALYSIS_SCHEMA_VERSION = 1


@dataclass
class PathStat:
    """Aggregated statistics for one name path in the call tree."""

    path: tuple[str, ...]
    total: float = 0.0
    self_time: float = 0.0
    count: int = 0
    min: float = float("inf")
    max: float = float("-inf")

    @property
    def name(self) -> str:
        return self.path[-1]

    def to_dict(self) -> dict:
        return {
            "path": "/".join(self.path),
            "name": self.name,
            "depth": len(self.path) - 1,
            "total_s": self.total,
            "self_s": self.self_time,
            "count": self.count,
            "min_s": self.min,
            "max_s": self.max,
        }


@dataclass
class TraceAnalysis:
    """The full analysis of one trace.

    Attributes:
        spans: number of span instances analyzed.
        roots_total: summed duration of all root spans (the wall time
            the trace accounts for; one term per thread's roots).
        self_total: summed self time over every instance.  Equal to
            ``roots_total`` up to floating-point noise on any properly
            nested trace — the conservation property ``repro trace
            analyze`` checks.
        aggregates: per-path statistics, ordered by (-total, path).
        critical_path: instance chain from the longest root down its
            heaviest children; each hop carries name/duration/self.
    """

    spans: int
    roots_total: float
    self_total: float
    aggregates: list[PathStat]
    critical_path: list[dict] = field(default_factory=list)

    def coverage(self) -> float:
        """self_total / roots_total (1.0 on a well-nested trace)."""
        if self.roots_total <= 0:
            return 1.0
        return self.self_total / self.roots_total

    def hotspots(self, top: int = 10) -> list[PathStat]:
        """Top paths by aggregated self time (deterministic order)."""
        ranked = sorted(self.aggregates, key=lambda s: (-s.self_time, s.path))
        return ranked[: max(0, top)]

    def to_dict(self, top: int = 10) -> dict:
        """JSON-ready analysis document (schema-versioned)."""
        return {
            "schema_version": ANALYSIS_SCHEMA_VERSION,
            "kind": "trace_analysis",
            "spans": self.spans,
            "roots_total_s": self.roots_total,
            "self_total_s": self.self_total,
            "coverage": self.coverage(),
            "tree": [stat.to_dict() for stat in self.aggregates],
            "hotspots": [stat.to_dict() for stat in self.hotspots(top)],
            "critical_path": list(self.critical_path),
        }


def _as_dicts(records) -> list[dict]:
    """Accept SpanRecord objects or already-exported dicts."""
    out = []
    for record in records:
        if hasattr(record, "to_dict"):
            record = record.to_dict()
        if record.get("type", "span") == "span":
            out.append(record)
    return out


def analyze_records(records) -> TraceAnalysis:
    """Analyze span records (SpanRecords or exported dicts).

    Raises:
        ValueError: if the trace contains no spans.
    """
    spans = _as_dicts(records)
    if not spans:
        raise ValueError("trace contains no spans — was tracing enabled?")

    by_id = {s["span_id"]: s for s in spans}
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)

    # Per-instance self time: duration minus direct children.  Left
    # unclamped so the conservation identity holds exactly; negative
    # values (clock jitter) are clamped only at display time.
    def duration(s: dict) -> float:
        return s.get("duration", s["end"] - s["start"])

    self_times = {
        s["span_id"]: duration(s)
        - sum(duration(c) for c in children.get(s["span_id"], ()))
        for s in spans
    }

    # Aggregate by name path from the root.
    path_cache: dict[int, tuple[str, ...]] = {}

    def path_of(s: dict) -> tuple[str, ...]:
        sid = s["span_id"]
        cached = path_cache.get(sid)
        if cached is not None:
            return cached
        parent = s.get("parent_id")
        if parent is not None and parent in by_id:
            result = path_of(by_id[parent]) + (s["name"],)
        else:
            result = (s["name"],)
        path_cache[sid] = result
        return result

    stats: dict[tuple[str, ...], PathStat] = {}
    for s in spans:
        stat = stats.setdefault(path_of(s), PathStat(path_of(s)))
        d = duration(s)
        stat.total += d
        stat.self_time += self_times[s["span_id"]]
        stat.count += 1
        stat.min = min(stat.min, d)
        stat.max = max(stat.max, d)

    aggregates = sorted(stats.values(), key=lambda st: (-st.total, st.path))

    # Critical path: the longest root, then its heaviest child, down to
    # a leaf.  Ties break on (start, name) so the walk is deterministic.
    critical: list[dict] = []
    if roots:
        node = max(roots, key=lambda s: (duration(s), -s["start"]))
        while node is not None:
            critical.append(
                {
                    "name": node["name"],
                    "total_s": duration(node),
                    "self_s": self_times[node["span_id"]],
                }
            )
            kids = children.get(node["span_id"])
            node = (
                max(kids, key=lambda s: (duration(s), -s["start"], s["name"]))
                if kids
                else None
            )

    return TraceAnalysis(
        spans=len(spans),
        roots_total=sum(duration(r) for r in roots),
        self_total=sum(self_times.values()),
        aggregates=aggregates,
        critical_path=critical,
    )


def analyze_file(path: str | Path) -> TraceAnalysis:
    """Analyze an exported ``trace.jsonl`` (metric records are ignored)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return analyze_records(records)


def render_analysis(analysis: TraceAnalysis, top: int = 10) -> str:
    """Human-readable analysis: tree, hotspot table, critical path."""
    lines = [
        f"trace: {analysis.spans} spans, root wall time "
        f"{analysis.roots_total:.4f}s, self-time coverage "
        f"{100 * analysis.coverage():.1f}%"
    ]

    name_width = max(
        [24] + [2 * (len(st.path) - 1) + len(st.name) for st in analysis.aggregates]
    ) + 2
    lines.append("")
    lines.append(
        f"{'span':<{name_width}} {'total':>10}  {'self':>10}  {'self%':>6}  {'calls':>7}"
    )
    denominator = analysis.roots_total or 1.0

    # Hierarchical walk: siblings by (-total, name), children nested
    # under their parent so indentation reads as the call tree.
    by_parent: dict[tuple[str, ...], list[PathStat]] = {}
    for stat in analysis.aggregates:
        by_parent.setdefault(stat.path[:-1], []).append(stat)

    def emit(parent: tuple[str, ...]) -> None:
        for stat in sorted(
            by_parent.get(parent, ()), key=lambda st: (-st.total, st.name)
        ):
            label = "  " * (len(stat.path) - 1) + stat.name
            self_display = max(0.0, stat.self_time)
            lines.append(
                f"{label:<{name_width}} {stat.total:9.4f}s  {self_display:9.4f}s  "
                f"{100 * self_display / denominator:5.1f}%  {stat.count:7d}"
            )
            emit(stat.path)

    emit(())

    hotspots = analysis.hotspots(top)
    if hotspots:
        lines.append("")
        lines.append(f"hotspots (top {len(hotspots)} by self time):")
        for rank, stat in enumerate(hotspots, start=1):
            self_display = max(0.0, stat.self_time)
            lines.append(
                f"  {rank:2d}. {'/'.join(stat.path):<40} self {self_display:9.4f}s "
                f"({100 * self_display / denominator:5.1f}%)  calls {stat.count}"
            )

    if analysis.critical_path:
        lines.append("")
        lines.append("critical path (heaviest chain from the longest root):")
        for hop in analysis.critical_path:
            lines.append(
                f"  {hop['name']:<40} total {hop['total_s']:9.4f}s  "
                f"self {max(0.0, hop['self_s']):9.4f}s"
            )
    return "\n".join(lines)
