"""`repro bench`: the canonical perf suite and its regression gate.

Every perf PR needs a number, and the number needs a place to live.
This module runs a canonical three-section suite and freezes the result
into a schema-versioned ``BENCH_<date>.json`` snapshot:

- **preprocess** — synthetic-log FAE preprocessing throughput
  (rows/second) with peak-RSS context from the resource sampler;
- **train** — FAE trainer step-time distribution (the
  ``train.step.latency`` histogram both trainers feed) plus the
  hot<->cold sync overhead share, attributed from a live trace via the
  analyzer (total ``replicate.sync`` span time over root wall time);
- **serve** — inference-engine batch-scoring latency percentiles and
  row throughput, measured on the wall clock;
- **cache** — popularity-shift margins of the online hot cache over the
  frozen hot set (post-shift hit rate and hit margin are the gated
  metrics; accuracy/loss margins ride along for trend spotting).

``compare_bench`` diffs two snapshots over a fixed metric list, each
tagged with its good direction (throughput up, latency down), and flags
any metric that got worse by more than the threshold — the CLI exits
non-zero on a flagged regression unless ``--warn-only``.  CI runs the
quick suite on every push and compares against the committed seed
baseline (warn-only: absolute numbers differ across hosts; the gate is
for same-host use, the warn stream for trend spotting).

Sections reset the instruments they measure (tracer, step/latency
histograms): a bench invocation is a measurement run, not a production
counter stream.  All snapshot writes are atomic and land under one
``--out-dir`` — nothing scatters into the working tree.
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.obs.analyze import analyze_records
from repro.obs.metrics import get_registry
from repro.obs.sampler import ResourceSampler
from repro.obs.trace import get_tracer, timed, tracing
from repro.resilience.atomic import atomic_write_text

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchConfig",
    "compare_bench",
    "format_compare",
    "format_snapshot",
    "run_bench",
]

BENCH_SCHEMA_VERSION = 1

_WORKLOAD_FOR_DATASET = {
    "criteo-kaggle": "RMC2",
    "criteo-terabyte": "RMC3",
    "taobao": "RMC1",
}


@dataclass(frozen=True)
class BenchConfig:
    """Sizes for one bench run; ``quick()`` is the CI-speed preset."""

    quick: bool = False
    seed: int = 7
    dataset: str = "criteo-kaggle"
    scale: str = "small"
    preprocess_samples: int = 60_000
    train_samples: int = 12_000
    train_epochs: int = 1
    batch_size: int = 256
    serve_batches: int = 400
    serve_batch_size: int = 512
    budget_bytes: int = 256 * 1024
    large_table_min_bytes: int = 1024
    cache_samples_per_day: int = 1500
    cache_days: int = 6
    cache_shift_day: int = 2

    @classmethod
    def quick_preset(cls, seed: int = 7) -> BenchConfig:
        """Small enough for a CI smoke (~seconds), same code paths."""
        return cls(
            quick=True,
            seed=seed,
            scale="tiny",
            preprocess_samples=8_000,
            train_samples=2_500,
            serve_batches=100,
            serve_batch_size=256,
            cache_samples_per_day=600,
            cache_days=3,
            cache_shift_day=1,
        )

    @classmethod
    def full_preset(cls, seed: int = 7) -> BenchConfig:
        return cls(seed=seed)


# -- sections -----------------------------------------------------------


def _fae_config(config: BenchConfig):
    from repro.core import FAEConfig

    return FAEConfig(
        gpu_memory_budget=config.budget_bytes,
        large_table_min_bytes=config.large_table_min_bytes,
        chunk_size=64,
        seed=config.seed,
    )


def _make_log(config: BenchConfig, samples: int):
    from repro.data import SyntheticClickLog, SyntheticConfig, dataset_by_name

    schema = dataset_by_name(config.dataset, config.scale)
    return SyntheticClickLog(
        schema, SyntheticConfig(num_samples=samples, seed=config.seed)
    )


def bench_preprocess(config: BenchConfig) -> dict:
    """FAE preprocess throughput over a synthetic log."""
    from repro.core import fae_preprocess

    log = _make_log(config, config.preprocess_samples)
    with ResourceSampler() as sampler:
        with timed("bench.preprocess") as timer:
            plan = fae_preprocess(log, _fae_config(config), batch_size=config.batch_size)
    resources = sampler.summary()
    return {
        "samples": len(log),
        "seconds": timer.seconds,
        "rows_per_sec": len(log) / timer.seconds if timer.seconds > 0 else 0.0,
        "hot_input_fraction": plan.dataset.hot_input_fraction,
        "rss_peak_bytes": resources["rss_peak_bytes"],
    }


def bench_train(config: BenchConfig) -> dict:
    """FAE trainer step time + sync overhead share (trace-attributed)."""
    from repro.core import fae_preprocess
    from repro.data import train_test_split
    from repro.models import build_model, workload_by_name
    from repro.train import FAETrainer

    registry = get_registry()
    step_hist = registry.histogram("train.step.latency")
    step_hist.reset()
    sync_events = registry.counter("fae.sync.events")
    sync_events_start = sync_events.value

    log = _make_log(config, config.train_samples)
    train_log, test_log = train_test_split(log, 0.15, seed=config.seed)
    plan = fae_preprocess(train_log, _fae_config(config), batch_size=config.batch_size)
    model = build_model(
        workload_by_name(_WORKLOAD_FOR_DATASET[config.dataset]),
        schema=log.schema,
        seed=config.seed + 1,
    )

    with tracing(enabled=True) as tracer:
        tracer.reset()
        with timed("bench.train") as timer:
            FAETrainer(model, plan, lr=0.15).train(
                train_log, test_log, epochs=config.train_epochs
            )
        records = tracer.records()
        tracer.reset()

    analysis = analyze_records(records)
    sync_total = sum(
        stat.total for stat in analysis.aggregates if stat.name == "replicate.sync"
    )
    steps = step_hist.count
    return {
        "samples": len(train_log),
        "epochs": config.train_epochs,
        "seconds": timer.seconds,
        "steps": steps,
        "step_mean_s": step_hist.total / steps if steps else 0.0,
        "step_p50_s": step_hist.percentile(50) if steps else 0.0,
        "step_p99_s": step_hist.percentile(99) if steps else 0.0,
        "sync_events": int(sync_events.value - sync_events_start),
        "sync_seconds": sync_total,
        "sync_share": sync_total / analysis.roots_total if analysis.roots_total else 0.0,
    }


def bench_serve(config: BenchConfig) -> dict:
    """Engine batch-scoring latency percentiles on the wall clock."""
    from repro.data.loader import batch_from_log
    from repro.models import build_model, workload_by_name
    from repro.serve import InferenceEngine

    registry = get_registry()
    latency = registry.histogram("serve.request.latency")
    latency.reset()

    log = _make_log(config, max(config.serve_batch_size * 4, 4_096))
    model = build_model(
        workload_by_name(_WORKLOAD_FOR_DATASET[config.dataset]),
        schema=log.schema,
        seed=config.seed + 1,
    )
    engine = InferenceEngine(model, batch_size=config.serve_batch_size)
    rng = np.random.default_rng(config.seed)
    batches = [
        batch_from_log(
            log, rng.integers(0, len(log), size=config.serve_batch_size)
        )
        for _ in range(min(8, config.serve_batches))
    ]
    with timed("bench.serve") as timer:
        for i in range(config.serve_batches):
            engine.predict_batch(batches[i % len(batches)])
    rows = config.serve_batches * config.serve_batch_size
    return {
        "batches": config.serve_batches,
        "batch_size": config.serve_batch_size,
        "seconds": timer.seconds,
        "rows_per_sec": rows / timer.seconds if timer.seconds > 0 else 0.0,
        "p50_s": latency.percentile(50),
        "p95_s": latency.percentile(95),
        "p99_s": latency.percentile(99),
    }


def bench_cache(config: BenchConfig) -> dict:
    """Popularity-shift margins: online hot cache vs frozen hot set.

    Always runs the canonical tiny-scale scenario (the shape the cache
    was tuned on) with sizes from the config; ``hit_margin`` and
    ``cached_hit_rate`` are the gated metrics — they are a structural
    consequence of cache turnover and stable across seeds, while the
    accuracy/loss margins (also reported) need the pinned default seed
    and the full day count to rise above evaluation noise.
    """
    from repro.train.popshift import PopShiftConfig, run_popularity_shift

    report = run_popularity_shift(
        PopShiftConfig(
            dataset=config.dataset,
            scale="tiny",
            samples_per_day=config.cache_samples_per_day,
            num_days=config.cache_days,
            shift_day=config.cache_shift_day,
            seed=config.seed,
            budget_bytes=32 * 1024,
        )
    )
    post = report["post_shift"]
    counters = report["counters"]
    return {
        "days": config.cache_days,
        "samples_per_day": config.cache_samples_per_day,
        "static_hit_rate": post["static_hit_rate"],
        "cached_hit_rate": post["cached_hit_rate"],
        "hit_margin": post["hit_margin"],
        "accuracy_margin": post["accuracy_margin"],
        "loss_margin": post["loss_margin"],
        "promotions": counters["hotcache.promotions"],
        "demotions": counters["hotcache.demotions"],
        "refresh_bytes": counters["fae.refresh.bytes"],
    }


# -- snapshot -----------------------------------------------------------


def run_bench(
    config: BenchConfig, out_dir: str | Path, sections: tuple[str, ...] = ()
) -> tuple[dict, Path]:
    """Run the suite and write ``BENCH_<date>.json`` under ``out_dir``.

    Args:
        config: suite sizes (use :meth:`BenchConfig.quick_preset` in CI).
        out_dir: single destination directory for every bench artifact.
        sections: subset to run (all three when empty).

    Returns:
        The snapshot dict and the path it was written to.
    """
    runners = {
        "preprocess": bench_preprocess,
        "train": bench_train,
        "serve": bench_serve,
        "cache": bench_cache,
    }
    chosen = sections or tuple(runners)
    unknown = set(chosen) - set(runners)
    if unknown:
        raise ValueError(f"unknown bench sections: {sorted(unknown)}")

    now = datetime.now(timezone.utc)
    snapshot = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "created_utc": now.isoformat(timespec="seconds"),
        "quick": config.quick,
        "seed": config.seed,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": asdict(config),
        "sections": {name: runners[name](config) for name in chosen},
    }
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{now.strftime('%Y-%m-%d')}.json"
    atomic_write_text(path, json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return snapshot, path


def format_snapshot(snapshot: dict) -> str:
    """Human-readable digest of a bench snapshot."""
    lines = [
        f"bench snapshot (schema v{snapshot['schema_version']}, "
        f"seed {snapshot['seed']}, quick={snapshot['quick']}):"
    ]
    sections = snapshot["sections"]
    if "preprocess" in sections:
        s = sections["preprocess"]
        lines.append(
            f"  preprocess: {s['samples']} rows in {s['seconds']:.3f}s "
            f"({s['rows_per_sec']:.0f} rows/s, peak rss "
            f"{s['rss_peak_bytes'] / 2**20:.1f} MiB)"
        )
    if "train" in sections:
        s = sections["train"]
        lines.append(
            f"  train:      {s['steps']} steps, mean {1e3 * s['step_mean_s']:.3f} ms "
            f"(p99 {1e3 * s['step_p99_s']:.3f} ms), sync share "
            f"{100 * s['sync_share']:.1f}% over {s['sync_events']} syncs"
        )
    if "serve" in sections:
        s = sections["serve"]
        lines.append(
            f"  serve:      {s['batches']}x{s['batch_size']} rows, "
            f"p50 {1e3 * s['p50_s']:.3f} ms  p95 {1e3 * s['p95_s']:.3f} ms  "
            f"p99 {1e3 * s['p99_s']:.3f} ms ({s['rows_per_sec']:.0f} rows/s)"
        )
    if "cache" in sections:
        s = sections["cache"]
        lines.append(
            f"  cache:      post-shift hit {s['cached_hit_rate']:.3f} vs "
            f"static {s['static_hit_rate']:.3f} (margin {s['hit_margin']:+.3f}), "
            f"acc margin {s['accuracy_margin']:+.4f}, "
            f"{s['promotions']}/{s['demotions']} promoted/demoted"
        )
    return "\n".join(lines)


# -- baseline compare ---------------------------------------------------

# Metric paths into snapshot["sections"], tagged with the good direction.
COMPARE_METRICS: tuple[tuple[str, str], ...] = (
    ("preprocess.rows_per_sec", "higher"),
    ("train.step_mean_s", "lower"),
    ("train.step_p99_s", "lower"),
    ("train.sync_share", "lower"),
    ("serve.p50_s", "lower"),
    ("serve.p99_s", "lower"),
    ("serve.rows_per_sec", "higher"),
    ("cache.cached_hit_rate", "higher"),
    ("cache.hit_margin", "higher"),
)


def _lookup(sections: dict, dotted: str):
    node = sections
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def compare_bench(current: dict, baseline: dict, threshold: float = 0.25) -> dict:
    """Diff two snapshots; flag metrics worse than ``threshold``.

    "Worse" is direction-aware: a throughput metric regresses when it
    drops by more than the threshold fraction, a latency metric when it
    rises by more.  Metrics missing on either side produce a ``missing``
    entry, never a regression (new benches must not fail old baselines).

    Raises:
        ValueError: on a snapshot schema-version mismatch.
    """
    for name, snap in (("current", current), ("baseline", baseline)):
        version = snap.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise ValueError(
                f"{name} snapshot has schema_version {version!r}, "
                f"expected {BENCH_SCHEMA_VERSION}"
            )
    entries = []
    regressions = []
    for metric, direction in COMPARE_METRICS:
        cur = _lookup(current.get("sections", {}), metric)
        base = _lookup(baseline.get("sections", {}), metric)
        if cur is None or base is None or base == 0:
            entries.append({"metric": metric, "status": "missing"})
            continue
        delta = (cur - base) / abs(base)
        worsening = -delta if direction == "higher" else delta
        status = "regression" if worsening > threshold else "ok"
        entries.append(
            {
                "metric": metric,
                "status": status,
                "direction": direction,
                "current": cur,
                "baseline": base,
                "delta": delta,
            }
        )
        if status == "regression":
            regressions.append(metric)
    return {"threshold": threshold, "entries": entries, "regressions": regressions}


def format_compare(result: dict) -> str:
    """Human-readable compare table."""
    lines = [f"baseline compare (threshold {100 * result['threshold']:.0f}%):"]
    for entry in result["entries"]:
        if entry["status"] == "missing":
            lines.append(f"  {entry['metric']:<28} (missing — skipped)")
            continue
        arrow = "+" if entry["delta"] >= 0 else ""
        flag = "  << REGRESSION" if entry["status"] == "regression" else ""
        lines.append(
            f"  {entry['metric']:<28} {entry['current']:12.6g} vs "
            f"{entry['baseline']:12.6g}  ({arrow}{100 * entry['delta']:.1f}%, "
            f"{entry['direction']} is better){flag}"
        )
    if result["regressions"]:
        lines.append(
            f"  {len(result['regressions'])} regression(s): "
            + ", ".join(result["regressions"])
        )
    else:
        lines.append("  no regressions")
    return "\n".join(lines)
