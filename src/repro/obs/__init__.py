"""Observability: tracing spans, metrics, and run artifacts.

Zero-dependency telemetry for the FAE pipeline — the measurement
substrate every perf PR regresses against:

- :mod:`repro.obs.trace` — nestable, thread-safe wall-time spans
  (``with span("calibrate.optimize"): ...``), off by default and free
  when off; :func:`timed` always measures and backs the legacy
  ``last_elapsed_seconds``-style attributes.
- :mod:`repro.obs.metrics` — named counters, gauges, and histograms
  (``fae.sync.bytes``, ``scheduler.rate``, ``serve.request.latency``)
  with snapshot/reset semantics and percentile summaries.
- :mod:`repro.obs.export` — JSONL trace/metric dumps, the human-readable
  span summary tree, and per-run artifact directories.

Enable tracing with :func:`enable_tracing`, ``REPRO_TRACE=1``, the
``--trace`` CLI flag, or the ``repro trace`` subcommand.
"""

from repro.obs.export import (
    export_jsonl,
    export_run,
    load_jsonl,
    metric_records,
    summary_tree,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    Span,
    SpanRecord,
    Timer,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    timed,
    tracing,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "Timer",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "export_jsonl",
    "export_run",
    "get_registry",
    "get_tracer",
    "load_jsonl",
    "metric_records",
    "span",
    "summary_tree",
    "timed",
    "tracing",
    "tracing_enabled",
]
