"""Observability: tracing spans, metrics, and run artifacts.

Zero-dependency telemetry for the FAE pipeline — the measurement
substrate every perf PR regresses against:

- :mod:`repro.obs.trace` — nestable, thread-safe wall-time spans
  (``with span("calibrate.optimize"): ...``), off by default and free
  when off; :func:`timed` always measures and backs the legacy
  ``last_elapsed_seconds``-style attributes.
- :mod:`repro.obs.metrics` — named counters, gauges, and histograms
  (``fae.sync.bytes``, ``scheduler.rate``, ``serve.request.latency``)
  with snapshot/reset semantics and percentile summaries.
- :mod:`repro.obs.export` — JSONL trace/metric dumps, the human-readable
  span summary tree, and per-run artifact directories.
- :mod:`repro.obs.analyze` — trace profiling: per-span self time,
  call-tree aggregation, hotspot tables, and critical-path extraction
  over exported span JSONL (``repro trace analyze``).
- :mod:`repro.obs.sampler` — background RSS/CPU sampling into registry
  gauges with a peak/mean summary, wired into preprocess/train/bench
  runs.
- :mod:`repro.obs.bench` — the ``repro bench`` canonical perf suite:
  schema-versioned ``BENCH_<date>.json`` snapshots and the baseline
  regression gate.  (Imported lazily by the CLI, not re-exported here:
  it depends on ``repro.core``/``train``/``serve``, which themselves
  import this package.)

Enable tracing with :func:`enable_tracing`, ``REPRO_TRACE=1``, the
``--trace`` CLI flag, or the ``repro trace`` subcommand.
"""

from repro.obs.analyze import (
    TraceAnalysis,
    analyze_file,
    analyze_records,
    render_analysis,
)
from repro.obs.export import (
    export_jsonl,
    export_run,
    load_jsonl,
    metric_records,
    summary_tree,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.sampler import ResourceSampler, read_rss_bytes
from repro.obs.trace import (
    Span,
    SpanRecord,
    Timer,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    timed,
    tracing,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ResourceSampler",
    "Span",
    "SpanRecord",
    "Timer",
    "TraceAnalysis",
    "Tracer",
    "analyze_file",
    "analyze_records",
    "disable_tracing",
    "enable_tracing",
    "export_jsonl",
    "export_run",
    "get_registry",
    "get_tracer",
    "load_jsonl",
    "metric_records",
    "read_rss_bytes",
    "render_analysis",
    "span",
    "summary_tree",
    "timed",
    "tracing",
    "tracing_enabled",
]
