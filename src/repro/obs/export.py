"""Exporters: JSONL dumps, the span summary tree, and run artifacts.

Three consumers, three formats:

- :func:`export_jsonl` — one JSON record per finished span and one per
  metric snapshot, machine-parseable (benchmarks regress against this);
- :func:`summary_tree` — the human-readable breakdown printed by
  ``repro trace``: span tree with total / self time and call counts,
  followed by a metrics section;
- :func:`export_run` — a run directory holding ``trace.jsonl``,
  ``metrics.jsonl`` and ``summary.txt`` for archival.

:func:`load_jsonl` round-trips either JSONL file back into dicts.

All artifact writes are atomic (temp file + ``os.replace`` via
:mod:`repro.resilience.atomic`), so a crash mid-export never leaves a
truncated artifact under the final name.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import SpanRecord, Tracer, get_tracer
from repro.resilience.atomic import atomic_write, atomic_write_text

__all__ = [
    "export_jsonl",
    "export_run",
    "load_jsonl",
    "metric_records",
    "summary_tree",
]


def metric_records(registry: MetricsRegistry | None = None) -> list[dict]:
    """One JSON-ready record per instrument in the registry."""
    registry = registry or get_registry()
    return [
        {"type": "metric", "name": name} | summary
        for name, summary in registry.snapshot().items()
    ]


def export_jsonl(
    path: str | Path,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> Path:
    """Write spans then metric snapshots as JSON Lines to ``path``."""
    tracer = tracer or get_tracer()
    path = Path(path)
    with atomic_write(path) as tmp:
        with tmp.open("w", encoding="utf-8") as handle:
            for record in tracer.records():
                handle.write(json.dumps(record.to_dict()) + "\n")
            for record in metric_records(registry):
                handle.write(json.dumps(record) + "\n")
    return path


def load_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL export back into a list of dicts."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class _Node:
    """Aggregation node for one span path in the summary tree."""

    __slots__ = ("name", "total", "child_time", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.child_time = 0.0
        self.count = 0
        self.children: dict[str, _Node] = {}

    @property
    def self_time(self) -> float:
        return max(0.0, self.total - self.child_time)


def _build_tree(records: list[SpanRecord]) -> _Node:
    """Aggregate spans by their name-path from the root."""
    by_id = {r.span_id: r for r in records}

    def path_of(record: SpanRecord) -> tuple[str, ...]:
        names: list[str] = []
        cursor: SpanRecord | None = record
        while cursor is not None:
            names.append(cursor.name)
            cursor = by_id.get(cursor.parent_id) if cursor.parent_id else None
        return tuple(reversed(names))

    root = _Node("")
    for record in records:
        node = root
        for name in path_of(record):
            node = node.children.setdefault(name, _Node(name))
        node.total += record.duration
        node.count += 1
        parent_record = by_id.get(record.parent_id) if record.parent_id else None
        if parent_record is not None:
            parent_node = root
            for name in path_of(parent_record):
                parent_node = parent_node.children.setdefault(name, _Node(name))
            parent_node.child_time += record.duration
    return root


def _render(
    node: _Node, lines: list[str], depth: int, name_width: int, wall: float
) -> None:
    # Deterministic order — total time descending, then name — so the
    # summary is diff-stable across runs with equal-cost siblings.
    for child in sorted(node.children.values(), key=lambda n: (-n.total, n.name)):
        label = "  " * depth + child.name
        lines.append(
            f"{label:<{name_width}} total {child.total:9.4f}s  "
            f"self {child.self_time:9.4f}s  "
            f"self% {100 * child.self_time / wall:5.1f}  count {child.count:5d}"
        )
        _render(child, lines, depth + 1, name_width, wall)


def summary_tree(
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    include_metrics: bool = True,
) -> str:
    """Human-readable span tree plus (optionally) a metrics section."""
    tracer = tracer or get_tracer()
    records = tracer.records()
    lines: list[str] = []
    if not records:
        lines.append("(no spans recorded — is tracing enabled?)")
    else:
        root = _build_tree(records)

        def widest(node: _Node, depth: int) -> int:
            width = 0
            for child in node.children.values():
                width = max(width, 2 * depth + len(child.name), widest(child, depth + 1))
            return width

        name_width = max(24, widest(root, 0) + 2)
        wall = sum(child.total for child in root.children.values()) or 1.0
        lines.append(
            f"{'span':<{name_width}} {'time':>15}  {'self':>14}  "
            f"{'self%':>11}  {'calls':>11}"
        )
        _render(root, lines, 0, name_width, wall)

    if include_metrics:
        snapshot = (registry or get_registry()).snapshot()
        if snapshot:
            lines.append("")
            lines.append("metrics:")
            for name, summary in snapshot.items():
                kind = summary.get("kind")
                if kind == "histogram":
                    if summary.get("count", 0) == 0:
                        lines.append(f"  {name}: (no samples)")
                    else:
                        lines.append(
                            f"  {name}: count {summary['count']}  mean {summary['mean']:.6g}  "
                            f"p50 {summary['p50']:.6g}  p99 {summary['p99']:.6g}"
                        )
                else:
                    lines.append(f"  {name}: {summary['value']:.6g}")
    return "\n".join(lines)


def export_run(
    run_dir: str | Path,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, Path]:
    """Write trace.jsonl, metrics.jsonl and summary.txt under ``run_dir``.

    Returns:
        Mapping of artifact kind to the path written.
    """
    tracer = tracer or get_tracer()
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)

    trace_path = run_dir / "trace.jsonl"
    with atomic_write(trace_path) as tmp:
        with tmp.open("w", encoding="utf-8") as handle:
            for record in tracer.records():
                handle.write(json.dumps(record.to_dict()) + "\n")

    metrics_path = run_dir / "metrics.jsonl"
    with atomic_write(metrics_path) as tmp:
        with tmp.open("w", encoding="utf-8") as handle:
            for record in metric_records(registry):
                handle.write(json.dumps(record) + "\n")

    summary_path = run_dir / "summary.txt"
    atomic_write_text(summary_path, summary_tree(tracer, registry) + "\n")

    return {"trace": trace_path, "metrics": metrics_path, "summary": summary_path}
