"""Resource sampler: background RSS/CPU sampling into registry gauges.

A perf number without its memory/CPU context is half a measurement —
the streaming preprocess work (DESIGN §8) is *about* bounding RSS, and
a latency win that doubles resident memory is not a win.  The sampler
runs a daemon thread that periodically reads the process's resident set
size and CPU utilization and publishes them as gauges:

- ``proc.rss.bytes`` — current resident set size;
- ``proc.rss.peak_bytes`` — high-water mark seen by the sampler;
- ``proc.cpu.percent`` — CPU utilization since the previous sample
  (user+system time delta over wall delta; >100 means multiple cores).

Use it as a context manager around a run::

    with ResourceSampler() as rs:
        ...work...
    print(rs.summary())   # {"rss_peak_bytes": ..., "cpu_mean_percent": ...}

The summary reports maxima/means over the whole window, which is what
``repro bench`` snapshots and ``repro preprocess``/``train`` print.
Reading ``/proc/self/statm`` costs microseconds; at the default 50 ms
interval the sampler's own footprint is noise.  On platforms without
procfs it falls back to ``resource.getrusage`` (whose ru_maxrss is a
peak, not a level — close enough for the summary's purpose).
"""

from __future__ import annotations

import os
import threading
import time

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["ResourceSampler", "read_rss_bytes"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> int:
    """Current resident set size in bytes (0 when unknowable)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        # ru_maxrss is kilobytes on Linux (bytes on macOS, where the
        # procfs path above is unavailable anyway).
        import sys

        scale = 1 if sys.platform == "darwin" else 1024
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale
    except Exception:
        return 0


class ResourceSampler:
    """Samples RSS and CPU on a daemon thread; summarizes on stop.

    Args:
        interval: seconds between samples.
        registry: metrics registry to publish gauges into (the global
            registry by default).
    """

    def __init__(
        self, interval: float = 0.05, registry: MetricsRegistry | None = None
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        registry = registry or get_registry()
        self._rss_gauge = registry.gauge("proc.rss.bytes")
        self._rss_peak_gauge = registry.gauge("proc.rss.peak_bytes")
        self._cpu_gauge = registry.gauge("proc.cpu.percent")
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._samples = 0
        self._rss_peak = 0
        self._rss_last = 0
        self._cpu_sum = 0.0
        self._cpu_peak = 0.0
        self._cpu_samples = 0
        self._last_cpu = 0.0
        self._last_wall = 0.0

    # -- sampling --------------------------------------------------------

    def _cpu_seconds(self) -> float:
        t = os.times()
        return t.user + t.system

    def sample_once(self) -> None:
        """Take one sample now (also called by the background thread)."""
        rss = read_rss_bytes()
        now_wall = time.perf_counter()
        now_cpu = self._cpu_seconds()
        with self._lock:
            self._samples += 1
            self._rss_last = rss
            self._rss_peak = max(self._rss_peak, rss)
            if self._last_wall > 0 and now_wall > self._last_wall:
                percent = 100.0 * (now_cpu - self._last_cpu) / (now_wall - self._last_wall)
                self._cpu_sum += percent
                self._cpu_peak = max(self._cpu_peak, percent)
                self._cpu_samples += 1
                self._cpu_gauge.set(percent)
            self._last_wall = now_wall
            self._last_cpu = now_cpu
        self._rss_gauge.set(rss)
        self._rss_peak_gauge.set(self._rss_peak)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:
                # A sampling failure (e.g. procfs vanishing mid-shutdown)
                # must not leave the thread looping on errors or wedge
                # join(); the summary simply covers fewer samples.
                break

    # -- lifecycle -------------------------------------------------------

    def start(self) -> ResourceSampler:
        """Start the daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self.sample_once()
            self._thread = threading.Thread(
                target=self._run, name="repro-resource-sampler", daemon=True
            )
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        """Whether the background thread is currently alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def stop(self) -> dict:
        """Stop sampling (idempotent) and return :meth:`summary`.

        Safe to call while unwinding an exception: the thread is always
        signalled and joined, and a failing final sample is swallowed so
        ``stop`` never masks the original error.
        """
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
            try:
                self.sample_once()  # final reading covers the tail of the run
            except Exception:
                pass
        return self.summary()

    def __enter__(self) -> ResourceSampler:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- reporting -------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready maxima/means over the sampled window."""
        with self._lock:
            return {
                "samples": self._samples,
                "rss_peak_bytes": self._rss_peak,
                "rss_last_bytes": self._rss_last,
                "cpu_mean_percent": (
                    self._cpu_sum / self._cpu_samples if self._cpu_samples else 0.0
                ),
                "cpu_peak_percent": self._cpu_peak,
            }

    def format_summary(self) -> str:
        """One-line human summary for CLI runs."""
        s = self.summary()
        return (
            f"resources: peak rss {s['rss_peak_bytes'] / 2**20:.1f} MiB, "
            f"cpu mean {s['cpu_mean_percent']:.0f}% "
            f"(peak {s['cpu_peak_percent']:.0f}%, {s['samples']} samples)"
        )
