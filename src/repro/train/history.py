"""Training histories: the curves behind Fig 12 and Table III."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HistoryPoint", "TrainingHistory"]


@dataclass(frozen=True)
class HistoryPoint:
    """One evaluation snapshot during training.

    Attributes:
        iteration: mini-batches processed so far.
        train_loss: running training loss at the snapshot.
        test_loss: evaluation loss.
        test_accuracy: evaluation accuracy.
        train_accuracy: accuracy over recent training batches.
        segment_kind: "hot"/"cold" for FAE runs, "mixed" for baseline.
    """

    iteration: int
    train_loss: float
    test_loss: float
    test_accuracy: float
    train_accuracy: float
    segment_kind: str = "mixed"


@dataclass
class TrainingHistory:
    """Accumulated snapshots of one training run."""

    points: list[HistoryPoint] = field(default_factory=list)

    def record(self, point: HistoryPoint) -> None:
        if self.points and point.iteration < self.points[-1].iteration:
            raise ValueError("history iterations must be non-decreasing")
        self.points.append(point)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def final(self) -> HistoryPoint:
        if not self.points:
            raise ValueError("history is empty")
        return self.points[-1]

    def best_test_accuracy(self) -> float:
        if not self.points:
            raise ValueError("history is empty")
        return max(p.test_accuracy for p in self.points)

    def series(self, attribute: str) -> tuple[np.ndarray, np.ndarray]:
        """(iterations, values) arrays for plotting a named attribute."""
        iters = np.array([p.iteration for p in self.points])
        values = np.array([getattr(p, attribute) for p in self.points])
        return iters, values

    def converged(self, window: int = 3, tolerance: float = 5e-3) -> bool:
        """True when the last ``window`` test losses move less than ``tolerance``."""
        if len(self.points) < window + 1:
            return False
        recent = [p.test_loss for p in self.points[-(window + 1):]]
        return max(recent) - min(recent) < tolerance
