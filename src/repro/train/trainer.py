"""Baseline and FAE trainers over the numpy models.

:class:`BaselineTrainer` is the paper's Fig 3 execution, functionally:
plain shuffled mini-batches, one optimizer over every parameter (device
placement is a performance concern simulated by :mod:`repro.hw`, not a
math concern — both executions apply identical updates).

:class:`FAETrainer` is the FAE runtime over a preprocessed
:class:`~repro.core.pipeline.FAEPlan`:

- pure-hot batches execute against per-GPU hot-bag replicas (ids remapped
  to bag-local rows), pure-cold batches against the CPU master tables;
- every hot<->cold transition synchronizes the hot rows (replica ->
  master or master -> replicas), exactly as the Embedding Replicator
  prescribes, and its cost is tallied for the hardware model;
- the Shuffle Scheduler plans segments and adapts its rate from the test
  loss measured after each segment (paper Eq. 7).

Because syncs run at *every* transition, the FAE execution is
mathematically a reordering of the baseline's mini-batches — which is why
the paper (and our Table III bench) sees matching final accuracy.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.hotcache import EmbeddingHotCache, repack_remaining
from repro.core.input_processor import FAEDataset
from repro.core.pipeline import FAEPlan
from repro.core.replicator import EmbeddingReplicator
from repro.core.scheduler import ShuffleScheduler
from repro.data.loader import BatchIterator, iter_fae_batches
from repro.data.synthetic import SyntheticClickLog
from repro.models.base import RecModel
from repro.nn.losses import BCEWithLogits
from repro.nn.optim import SGD
from repro.obs import get_registry, span, timed
from repro.resilience.checkpoint import (
    CheckpointManager,
    TrainerCheckpoint,
    capture_training_state,
    load_checkpoint,
    restore_training_state,
)
from repro.resilience.faults import FaultPlan, popular_local_row
from repro.resilience.guards import LossSpikeError, NumericGuard
from repro.resilience.journal import RefreshJournal
from repro.resilience.retry import RetryPolicy
from repro.train.history import HistoryPoint, TrainingHistory
from repro.train.metrics import binary_accuracy, evaluate_model

__all__ = ["TrainResult", "BaselineTrainer", "FAETrainer"]


@dataclass
class TrainResult:
    """Outcome of a training run.

    Attributes:
        history: evaluation snapshots over the run.
        final_train_accuracy: accuracy over the last training segment.
        final_test_accuracy: accuracy on the held-out log at the end.
        sync_events: hot-bag synchronizations performed during this run
            (FAE only; the delta of the ``fae.sync.events`` counter).
        sync_bytes: total bytes moved by those synchronizations (the
            delta of the ``fae.sync.bytes`` counter).
        schedule_rates: the scheduler's rate after each recorded segment
            (FAE only; shows Eq. 7 adapting).
        world_shrinks: permanent rank deaths absorbed by continuing on a
            smaller world (distributed chaos runs only).
        rejoins: dead ranks re-admitted at a segment boundary with state
            resynced from the CPU masters (elastic distributed runs).
        degraded: whether the run lost its hot replicas and finished on
            the cold/baseline path.
        rollbacks: loss-spike rollbacks performed by the numeric guard.
        skipped_batches: corrupt batches the guard dropped pre-forward.
        skipped_steps: optimizer steps discarded over non-finite grads.
    """

    history: TrainingHistory
    final_train_accuracy: float
    final_test_accuracy: float
    sync_events: int = 0
    sync_bytes: int = 0
    schedule_rates: list[int] = field(default_factory=list)
    world_shrinks: int = 0
    rejoins: int = 0
    degraded: bool = False
    rollbacks: int = 0
    skipped_batches: int = 0
    skipped_steps: int = 0


class BaselineTrainer:
    """Hybrid CPU-GPU training, functionally: shuffled SGD over all data.

    Args:
        model: the recommender model.
        lr: SGD learning rate.
        seed: batch-shuffle seed.
    """

    def __init__(self, model: RecModel, lr: float = 0.1, seed: int = 0) -> None:
        self.model = model
        self.lr = lr
        self.seed = seed

    def train(
        self,
        train_log: SyntheticClickLog,
        test_log: SyntheticClickLog,
        epochs: int = 1,
        batch_size: int = 256,
        eval_every: int = 50,
        eval_samples: int = 4096,
    ) -> TrainResult:
        """Train for ``epochs`` and record periodic evaluation snapshots."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        optimizer = SGD(self.model.parameters(), lr=self.lr)
        loss_fn = BCEWithLogits()
        history = TrainingHistory()

        iteration = 0
        recent_losses: list[float] = []
        recent_accuracy: list[float] = []
        iterator = BatchIterator(train_log, batch_size, shuffle=True, seed=self.seed)
        registry = get_registry()
        batches_counter = registry.counter("train.batches.mixed")
        step_hist = registry.histogram("train.step.latency")
        for _epoch in range(epochs):
            with span("train.epoch", mode="baseline", epoch=_epoch):
                for batch in iterator:
                    step_start = time.perf_counter()
                    logits = self.model.forward(batch)
                    loss = loss_fn.forward(logits, batch.labels)
                    self.model.backward(loss_fn.backward())
                    optimizer.step()
                    step_hist.observe(time.perf_counter() - step_start)
                    iteration += 1
                    batches_counter.inc()
                    recent_losses.append(loss)
                    recent_accuracy.append(binary_accuracy(logits, batch.labels))
                    if iteration % eval_every == 0:
                        with timed("train.eval"):
                            test_loss, test_acc = evaluate_model(
                                self.model, test_log, max_samples=eval_samples
                            )
                        history.record(
                            HistoryPoint(
                                iteration=iteration,
                                train_loss=float(np.mean(recent_losses)),
                                test_loss=test_loss,
                                test_accuracy=test_acc,
                                train_accuracy=float(np.mean(recent_accuracy)),
                                segment_kind="mixed",
                            )
                        )
                        recent_losses.clear()
                        recent_accuracy.clear()

        final_loss, final_acc = evaluate_model(self.model, test_log)
        _train_loss, train_acc = evaluate_model(
            self.model, train_log, max_samples=4 * eval_samples
        )
        history.record(
            HistoryPoint(
                iteration=iteration,
                train_loss=float(np.mean(recent_losses)) if recent_losses else final_loss,
                test_loss=final_loss,
                test_accuracy=final_acc,
                train_accuracy=train_acc,
                segment_kind="mixed",
            )
        )
        return TrainResult(
            history=history,
            final_train_accuracy=train_acc,
            final_test_accuracy=final_acc,
        )


class FAETrainer:
    """The FAE runtime: hot/cold segments, replicas, adaptive scheduling.

    Args:
        model: the recommender model (its tables are the CPU masters).
        plan: FAE preprocessing output for the training log.
        lr: SGD learning rate.
        num_replicas: GPU replica count for the hot bags.
        pooling: bag pooling mode; must match the model's bags.
        fault_plan: optional fault-injection schedule (loader hiccups,
            hot-replica eviction, and data corruption apply to this
            single-device trainer).
        retry: retry policy for transient injected faults.
        guards: optional :class:`~repro.resilience.guards.NumericGuard`;
            when set, corrupt batches are skipped, non-finite gradients
            discard the step, and a non-finite or spiking loss rolls the
            run back to the last good checkpoint with LR backoff.
        cache: optional :class:`~repro.core.hotcache.EmbeddingHotCache`.
            When set, every training batch's lookups feed the cache, and
            at segment boundaries a full observation window triggers a
            rebalance: the replicator ships the membership delta and the
            *remaining* batches are re-packed against the new hot set.
            The cache must have been populated from ``plan.bags``.
    """

    def __init__(
        self,
        model: RecModel,
        plan: FAEPlan,
        lr: float = 0.1,
        num_replicas: int = 1,
        pooling: str = "mean",
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        guards: NumericGuard | None = None,
        cache: EmbeddingHotCache | None = None,
    ) -> None:
        self.model = model
        self.plan = plan
        self.lr = lr
        self.fault_plan = fault_plan
        self.retry = retry
        self.guards = guards
        self.cache = cache
        # Optional drift detector whose check history rides along in
        # checkpoints (attach before calling train()).
        self.drift = None
        # Set by the CLI so GuardAbort can point at the quarantine ledger.
        self.guard_ledger_path: str | None = None
        self.replicator = EmbeddingReplicator(
            tables=model.tables,
            bag_specs=plan.bags,
            num_replicas=num_replicas,
            pooling=pooling,
        )
        self._master_bags = {
            name: model.get_bag(name) for name in model.tables
        }

    def _enter_hot(self) -> int:
        """Refresh replicas from the masters and swap hot bags in."""
        moved = self.replicator.sync_from_master()
        for name, bag in self.replicator.bags_for_replica(0).items():
            self.model.set_bag(name, bag)
        return moved

    def _enter_cold(self) -> int:
        """Write hot rows back to the masters and swap master bags in."""
        moved = self.replicator.sync_to_master()
        for name, bag in self._master_bags.items():
            self.model.set_bag(name, bag)
        return moved

    def _degrade_to_cold(self, scheduler: ShuffleScheduler) -> int:
        """Hot replicas evicted: salvage their rows, go cold for good."""
        with span("resilience.degrade", num_replicas=self.replicator.num_replicas):
            moved = self.replicator.sync_to_master()
            self.replicator.evict()
            scheduler.degrade()
            for name, bag in self._master_bags.items():
                self.model.set_bag(name, bag)
        return moved

    def _capture_checkpoint(
        self,
        step: int,
        epoch: int,
        cursors: dict[str, int],
        scheduler: ShuffleScheduler,
        last_loss: float,
        last_acc: float,
        dataset: FAEDataset | None = None,
        repacked: bool = False,
    ) -> TrainerCheckpoint:
        """Snapshot at a segment boundary (masters are authoritative).

        When a cache turnover has re-packed the batch streams, the
        repacked dataset geometry rides along (``dataset_state``) so
        resume rebuilds the exact pools the cursors refer to.
        """
        return TrainerCheckpoint(
            step=step,
            epoch=epoch,
            cursors=dict(cursors),
            scheduler_state=scheduler.state_dict(),
            params=capture_training_state(
                self.model.dense_parameters(), self.model.tables
            ),
            rng_state=self.fault_plan.state_dict() if self.fault_plan else None,
            degraded=scheduler.degraded,
            last_train_loss=last_loss,
            last_train_accuracy=last_acc,
            cache_state=self.cache.state_dict() if self.cache is not None else None,
            dataset_state=(
                dataset.state_dict() if repacked and dataset is not None else None
            ),
            drift_state=self.drift.state_dict() if self.drift is not None else None,
        )

    def _restore_cache_state(self, ckpt: TrainerCheckpoint) -> None:
        """Restore the online cache (and rebuild replicas to match).

        A pre-v2 checkpoint carries no cache state: warn and cold-start
        (the cache keeps the fresh membership it was constructed with —
        the same state :meth:`EmbeddingHotCache.from_schema` cold-starts
        from when no calibration exists).
        """
        if self.cache is None:
            return
        if ckpt.cache_state is None:
            warnings.warn(
                "checkpoint predates cache durability (no cache state): the "
                "online cache cold-starts from its initial membership instead "
                "of resuming exactly",
                stacklevel=2,
            )
            return
        self.cache.load_state_dict(ckpt.cache_state)
        # Replica bags were built from the constructor-time membership;
        # rebuild them (from the restored masters) to match the restored
        # membership.
        self.replicator = EmbeddingReplicator(
            tables=self.model.tables,
            bag_specs=self.cache.bags(),
            num_replicas=self.replicator.num_replicas,
            pooling=self.replicator.pooling,
        )

    def _restore_checkpoint(self, resume, scheduler: ShuffleScheduler) -> TrainerCheckpoint:
        """Restore parameters, scheduler, cache, and fault state."""
        ckpt = resume if isinstance(resume, TrainerCheckpoint) else load_checkpoint(resume)
        restore_training_state(self.model.dense_parameters(), self.model.tables, ckpt.params)
        scheduler.load_state_dict(ckpt.scheduler_state)
        self._restore_cache_state(ckpt)
        if self.drift is not None and ckpt.drift_state is not None:
            self.drift.load_state_dict(ckpt.drift_state)
        if ckpt.degraded:
            # The run had already lost its hot replicas; stay cold.
            self.replicator.evict()
        else:
            self.replicator.sync_from_master()
        if ckpt.rng_state is not None and self.fault_plan is not None:
            self.fault_plan.load_state_dict(ckpt.rng_state)
        return ckpt

    def _refresh_cache(
        self,
        train_log,
        dataset: FAEDataset,
        cursors: dict[str, int],
        scheduler: ShuffleScheduler,
        mode: str,
        journal: RefreshJournal | None,
        transition_counters: dict | None,
    ) -> tuple[FAEDataset, dict[str, int], str, bool]:
        """One journaled cache turnover (the refresh transaction).

        Phase order (each a :meth:`FaultPlan.maybe_crash_refresh` kill
        point): plan -> intent (journal write-ahead) -> apply (membership
        swap) -> replicas (delta shipped) -> repack (remaining batches) ->
        pools (scheduler swap) -> commit (journal).  A crash anywhere is
        recovered by re-planning from the pre-refresh checkpoint, which
        :meth:`RefreshJournal.verify_rollforward` checks against the
        journaled intent.

        Returns:
            ``(dataset, cursors, mode, repacked)``.
        """
        fault_plan = self.fault_plan
        refresh_index = self.cache.rebalances
        plan = self.cache.plan_rebalance()
        delta = plan.delta
        if fault_plan is not None:
            fault_plan.maybe_crash_refresh(refresh_index, "plan")
        if journal is not None:
            journal.verify_rollforward(tick=plan.tick, delta=delta)
            journal.begin(
                refresh_index=refresh_index,
                tick=plan.tick,
                generation=self.cache.version + (0 if delta.is_empty else 1),
                delta=delta,
            )
            if fault_plan is not None:
                fault_plan.maybe_crash_refresh(refresh_index, "intent")
        self.cache.apply_rebalance(plan)
        if fault_plan is not None:
            fault_plan.maybe_crash_refresh(refresh_index, "apply")
        repacked = False
        if not delta.is_empty:
            if mode == "hot":
                # Old hot bags are about to be rebuilt; fall back to the
                # (current) masters.
                for name, bag in self._master_bags.items():
                    self.model.set_bag(name, bag)
                mode = "cold"
                if transition_counters is not None:
                    transition_counters["cold"].inc()
            new_bags = self.cache.bags()
            self.replicator.apply_delta(new_bags, delta)
            if fault_plan is not None:
                fault_plan.maybe_crash_refresh(refresh_index, "replicas")
            dataset, cursors = repack_remaining(
                train_log, dataset, cursors, delta, new_bags
            )
            if fault_plan is not None:
                fault_plan.maybe_crash_refresh(refresh_index, "repack")
            scheduler.repack_pools(
                len(dataset.hot_batches), len(dataset.cold_batches)
            )
            if fault_plan is not None:
                fault_plan.maybe_crash_refresh(refresh_index, "pools")
            get_registry().gauge("train.batch.hot_fraction").set(
                dataset.hot_input_fraction
            )
            repacked = True
        if journal is not None:
            journal.commit()
        if fault_plan is not None:
            fault_plan.maybe_crash_refresh(refresh_index, "commit")
        return dataset, cursors, mode, repacked

    @staticmethod
    def _clear_pending_grads(parameters) -> None:
        """Drop accumulated gradients so a skipped step applies nothing."""
        for param in parameters:
            param.zero_grad()

    def _rollback(
        self,
        exc: LossSpikeError,
        checkpoint: CheckpointManager | None,
        initial: TrainerCheckpoint,
    ) -> TrainerCheckpoint:
        """Answer a loss spike: back off the LR, return the resume point.

        Raises:
            GuardAbort: when the guard's rollback budget is exhausted.
        """
        guards = self.guards
        guards.note_rollback(
            str(exc),
            checkpoint_dir=checkpoint.directory if checkpoint is not None else None,
            ledger_path=self.guard_ledger_path,
        )
        with span("guards.rollback", iteration=exc.iteration, loss=exc.loss):
            self.lr *= guards.config.lr_backoff
            # Drop half-applied gradients and reinstall the master bags:
            # the next attempt must start from the canonical cold state.
            self._clear_pending_grads(
                self.model.dense_parameters()
                + [t.weight for t in self.model.tables.values()]
                + [
                    bag.weight
                    for replica in self.replicator.replicas
                    for bag in replica.values()
                ]
            )
            for name, bag in self._master_bags.items():
                self.model.set_bag(name, bag)
            target = checkpoint.latest() if checkpoint is not None else None
            ckpt = load_checkpoint(target) if target is not None else initial
        # Never restore the fault plan's RNG on rollback: fired-once
        # faults stay fired, so the replay does not re-inject the same
        # corruption and loop forever.
        return replace(ckpt, rng_state=None)

    def train(
        self,
        train_log: SyntheticClickLog,
        test_log: SyntheticClickLog,
        epochs: int = 1,
        eval_samples: int = 4096,
        checkpoint: CheckpointManager | None = None,
        resume=None,
    ) -> TrainResult:
        """Train over the plan's hot/cold batches for ``epochs``.

        Sync accounting flows through the metrics registry: the
        replicator increments ``fae.sync.events`` / ``fae.sync.bytes`` at
        every synchronization, and :class:`TrainResult` reports this
        run's deltas of those counters.

        With ``guards`` set, a :class:`LossSpikeError` (non-finite or
        spiking loss from clean inputs — i.e. poisoned parameters) rolls
        the run back to the newest good checkpoint (or the captured
        initial state) with learning-rate backoff, bounded by the
        guard's rollback budget.

        Args:
            checkpoint: optional manager; a snapshot is taken at each due
                segment boundary (after the post-segment evaluation, when
                the CPU masters are authoritative), so a resumed run
                reproduces the uninterrupted loss trajectory exactly.
            resume: checkpoint path or :class:`TrainerCheckpoint` to
                continue from, or None for a fresh run.
        """
        if self.guards is None:
            return self._train(train_log, test_log, epochs, eval_samples, checkpoint, resume)
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        dataset = self.plan.dataset
        if resume is None:
            # Snapshot the starting state against a pristine scheduler:
            # full pools, zero cursors, epoch 0 — resuming from it is
            # equivalent to restarting the run.
            pristine = ShuffleScheduler(
                num_hot_batches=len(dataset.hot_batches),
                num_cold_batches=len(dataset.cold_batches),
                initial_rate=self.plan.config.scheduler_initial_rate,
                strip_length=self.plan.config.scheduler_strip_length,
            )
            initial = self._capture_checkpoint(0, 0, {"hot": 0, "cold": 0}, pristine, 0.0, 0.0)
        else:
            initial = resume if isinstance(resume, TrainerCheckpoint) else load_checkpoint(resume)
        attempt = resume
        while True:
            try:
                result = self._train(
                    train_log, test_log, epochs, eval_samples, checkpoint, attempt
                )
                result.rollbacks = self.guards.rollbacks
                result.skipped_batches = self.guards.skipped_batches
                result.skipped_steps = self.guards.skipped_steps
                return result
            except LossSpikeError as exc:
                attempt = self._rollback(exc, checkpoint, initial)

    def _train(
        self,
        train_log: SyntheticClickLog,
        test_log: SyntheticClickLog,
        epochs: int = 1,
        eval_samples: int = 4096,
        checkpoint: CheckpointManager | None = None,
        resume=None,
    ) -> TrainResult:
        """One training attempt (the guarded :meth:`train` may retry it)."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        dataset = self.plan.dataset
        repacked = False
        if resume is not None:
            resume = (
                resume
                if isinstance(resume, TrainerCheckpoint)
                else load_checkpoint(resume)
            )
            if resume.dataset_state is not None:
                # The run had re-packed its batches before this snapshot:
                # cursors and scheduler pools refer to that geometry, not
                # the plan's original packing.
                dataset = FAEDataset.from_state_dict(resume.dataset_state)
                repacked = True
        scheduler = ShuffleScheduler(
            num_hot_batches=len(dataset.hot_batches),
            num_cold_batches=len(dataset.cold_batches),
            initial_rate=self.plan.config.scheduler_initial_rate,
            strip_length=self.plan.config.scheduler_strip_length,
        )
        journal = (
            RefreshJournal(checkpoint.directory)
            if checkpoint is not None and self.cache is not None
            else None
        )
        optimizer_params = {
            "cold": self.model.dense_parameters()
            + [t.weight for t in self.model.tables.values()],
        }
        loss_fn = BCEWithLogits()
        history = TrainingHistory()

        registry = get_registry()
        sync_events_counter = registry.counter("fae.sync.events")
        sync_bytes_counter = registry.counter("fae.sync.bytes")
        sync_events_start = sync_events_counter.value
        sync_bytes_start = sync_bytes_counter.value
        transition_counters = {
            "hot": registry.counter("train.transitions.to_hot"),
            "cold": registry.counter("train.transitions.to_cold"),
        }
        batch_counters = {
            "hot": registry.counter("train.batches.hot"),
            "cold": registry.counter("train.batches.cold"),
        }
        step_hist = registry.histogram("train.step.latency")
        registry.gauge("train.batch.hot_fraction").set(dataset.hot_input_fraction)

        iteration = 0
        rates: list[int] = []
        mode = "cold"  # the model starts with master bags installed
        last_train_loss = 0.0
        last_train_acc = 0.0
        start_epoch = 0
        resume_cursors: dict[str, int] | None = None
        segments_done = 0

        if resume is not None:
            ckpt = self._restore_checkpoint(resume, scheduler)
            iteration = ckpt.step
            start_epoch = ckpt.epoch
            resume_cursors = dict(ckpt.cursors)
            last_train_loss = ckpt.last_train_loss
            last_train_acc = ckpt.last_train_accuracy
            if (
                self.cache is not None
                and not scheduler.degraded
                and self.cache.should_rebalance()
            ):
                # Checkpoints are captured *before* the boundary refresh,
                # so a restored full observation window means the crashed
                # run was refreshing (or about to): roll the refresh
                # forward now, deterministically — plan_rebalance is pure
                # in the restored state, and the journal's pending intent
                # (if the crash landed mid-refresh) verifies the re-plan.
                dataset, resume_cursors, mode, did_repack = self._refresh_cache(
                    train_log,
                    dataset,
                    resume_cursors,
                    scheduler,
                    mode,
                    journal,
                    transition_counters,
                )
                repacked = repacked or did_repack

        for _epoch in range(start_epoch, epochs):
            if resume_cursors is not None:
                # Mid-epoch resume: the scheduler already holds this
                # epoch's remaining pools; do not refill them.
                cursors = resume_cursors
                resume_cursors = None
            else:
                scheduler.reset_epoch()
                cursors = {"hot": 0, "cold": 0}
            for segment in scheduler.segments():
                with span(
                    f"train.segment.{segment.kind}",
                    num_batches=segment.num_batches,
                    rate=segment.rate,
                ):
                    if (
                        self.fault_plan is not None
                        and not scheduler.degraded
                        and self.fault_plan.should_evict_hot(iteration)
                    ):
                        self._degrade_to_cold(scheduler)
                        mode = "cold"
                    # In degraded mode the segment still drains its planned
                    # pool, but executes on the cold (master-table) path.
                    run_hot = segment.kind == "hot" and not scheduler.degraded

                    if run_hot and mode != "hot":
                        self._enter_hot()
                        mode = "hot"
                        transition_counters["hot"].inc()
                    elif not run_hot and mode != "cold":
                        self._enter_cold()
                        mode = "cold"
                        transition_counters["cold"].inc()

                    if (
                        self.fault_plan is not None
                        and run_hot
                        and self.fault_plan.should_corrupt_hot_row(iteration)
                    ):
                        # Poison the same row on every replica (replicas
                        # must stay bit-identical); the damage spreads to
                        # the masters at the next sync unless the guard
                        # trips first.  Target the most-accessed row of
                        # the upcoming hot batch so the fault is
                        # guaranteed to be exercised.
                        name = next(iter(self.replicator.replicas[0]))
                        bag = self.replicator.replicas[0][name]
                        cursor = cursors.get("hot", 0)
                        upcoming = (
                            train_log.sparse[name][dataset.hot_batches[cursor]]
                            if cursor < len(dataset.hot_batches)
                            else np.empty(0, dtype=np.int64)
                        )
                        row = popular_local_row(bag, upcoming)
                        for replica in self.replicator.replicas:
                            self.fault_plan.corrupt_row(
                                replica[name].weight.value, row=row
                            )

                    if run_hot:
                        dense_optimizer = SGD(self.model.dense_parameters(), lr=self.lr)
                        replica_optimizers = [
                            SGD([bag.weight for bag in replica.values()], lr=self.lr)
                            for replica in self.replicator.replicas
                        ]
                        step_params = self.model.dense_parameters() + [
                            bag.weight
                            for replica in self.replicator.replicas
                            for bag in replica.values()
                        ]
                    else:
                        optimizer = SGD(optimizer_params["cold"], lr=self.lr)
                        step_params = optimizer_params["cold"]
                    pool_name = segment.drain_pool

                    losses = []
                    accs = []
                    start = cursors[pool_name]
                    for batch in iter_fae_batches(
                        train_log,
                        dataset,
                        pool_name,
                        start=start,
                        count=segment.num_batches,
                        hot=run_hot,
                        fault_plan=self.fault_plan,
                        retry=self.retry,
                    ):
                        if self.cache is not None:
                            # Feed the cache the *clean* lookups before any
                            # injected corruption touches the batch.
                            self.cache.observe(batch.sparse)
                        if self.fault_plan is not None:
                            batch = self.fault_plan.maybe_corrupt_batch(batch)
                        if self.guards is not None and not self.guards.batch_ok(batch):
                            # Poisoned *inputs*: dropping the batch costs
                            # one update and nothing else.
                            iteration += 1
                            continue
                        step_start = time.perf_counter()
                        logits = self.model.forward(batch)
                        loss = loss_fn.forward(logits, batch.labels)
                        if self.guards is not None:
                            # A bad loss from a clean batch means the
                            # parameters are poisoned: raises LossSpikeError.
                            self.guards.check_loss(loss, iteration)
                        self.model.backward(loss_fn.backward())
                        if (
                            self.fault_plan is not None
                            and self.fault_plan.should_corrupt_gradient(iteration)
                        ):
                            target = self.model.dense_parameters()[0]
                            if target.grad is not None:
                                self.fault_plan.corrupt_array(target.grad)
                        if self.guards is not None and not self.guards.grads_ok(
                            step_params, iteration
                        ):
                            # Poisoned *gradients*: discard the step, the
                            # parameters stay good.
                            self._clear_pending_grads(step_params)
                            iteration += 1
                            continue
                        if run_hot:
                            # Data-parallel step: share the hot-bag gradients
                            # with every replica, then apply identical updates.
                            self.replicator.all_reduce_gradients()
                            dense_optimizer.step()
                            for replica_optimizer in replica_optimizers:
                                replica_optimizer.step()
                        else:
                            optimizer.step()
                        step_hist.observe(time.perf_counter() - step_start)
                        iteration += 1
                        losses.append(loss)
                        accs.append(binary_accuracy(logits, batch.labels))
                        if self.fault_plan is not None:
                            self.fault_plan.maybe_crash_step(iteration)
                    batch_counters[segment.kind].inc(segment.num_batches)
                    cursors[pool_name] = start + segment.num_batches

                    # Evaluation must see the freshest parameters: flush hot
                    # rows to the masters (without leaving hot mode) first.
                    if mode == "hot":
                        self.replicator.sync_to_master()
                    with timed("train.eval"):
                        test_loss, test_acc = evaluate_with_master_bags(
                            self.model, self._master_bags, test_log, eval_samples
                        )
                    if self.guards is not None:
                        # Catch poisoned state before it contaminates the
                        # scheduler's loss feedback: raises LossSpikeError.
                        self.guards.check_eval_loss(test_loss, iteration)
                    scheduler.record_test_loss(test_loss)
                    rates.append(scheduler.rate)
                    last_train_loss = float(np.mean(losses)) if losses else last_train_loss
                    last_train_acc = float(np.mean(accs)) if accs else last_train_acc
                    history.record(
                        HistoryPoint(
                            iteration=iteration,
                            train_loss=last_train_loss,
                            test_loss=test_loss,
                            test_accuracy=test_acc,
                            train_accuracy=last_train_acc,
                            segment_kind=segment.kind,
                        )
                    )
                    segments_done += 1
                    if checkpoint is not None and checkpoint.should_save(segments_done):
                        snapshot = self._capture_checkpoint(
                            iteration,
                            _epoch,
                            cursors,
                            scheduler,
                            last_train_loss,
                            last_train_acc,
                            dataset=dataset,
                            repacked=repacked,
                        )
                        # Checkpoint hygiene: never persist a snapshot
                        # carrying NaN/Inf — rollback must not restore poison.
                        if self.guards is None or self.guards.state_ok(snapshot.params):
                            checkpoint.save(snapshot)
                            if self.fault_plan is not None:
                                self.fault_plan.maybe_crash_checkpoint()

                    # Cache turnover at the segment boundary: the masters
                    # are authoritative here (hot rows were flushed before
                    # the evaluation above), so promotion can pull fresh
                    # values and demoted rows lose nothing.  The turnover
                    # runs *after* the checkpoint on purpose: crash
                    # recovery re-derives an interrupted refresh from the
                    # pre-refresh snapshot (see _refresh_cache).
                    if (
                        self.cache is not None
                        and not scheduler.degraded
                        and self.cache.should_rebalance()
                    ):
                        dataset, cursors, mode, did_repack = self._refresh_cache(
                            train_log,
                            dataset,
                            cursors,
                            scheduler,
                            mode,
                            journal,
                            transition_counters,
                        )
                        repacked = repacked or did_repack

        if mode == "hot":
            self._enter_cold()
            transition_counters["cold"].inc()
        with timed("train.eval", final=True):
            final_loss, final_acc = evaluate_model(self.model, test_log)
            _loss, train_acc = evaluate_model(
                self.model, train_log, max_samples=4 * eval_samples
            )
        history.record(
            HistoryPoint(
                iteration=iteration,
                train_loss=last_train_loss,
                test_loss=final_loss,
                test_accuracy=final_acc,
                train_accuracy=train_acc,
                segment_kind="final",
            )
        )
        return TrainResult(
            history=history,
            final_train_accuracy=train_acc,
            final_test_accuracy=final_acc,
            sync_events=int(sync_events_counter.value - sync_events_start),
            sync_bytes=int(sync_bytes_counter.value - sync_bytes_start),
            schedule_rates=rates,
            degraded=scheduler.degraded,
        )


def evaluate_with_master_bags(model: RecModel, master_bags: dict, test_log, eval_samples: int):
    """Evaluate using the master tables regardless of the installed bags.

    Test inputs are arbitrary (they may touch cold rows), so evaluation
    always runs against the full CPU tables; the caller is responsible
    for flushing hot-row updates to the masters first.
    """
    installed = {name: model.get_bag(name) for name in master_bags}
    for name, bag in master_bags.items():
        model.set_bag(name, bag)
    try:
        return evaluate_model(model, test_log, max_samples=eval_samples)
    finally:
        for name, bag in installed.items():
            model.set_bag(name, bag)
