"""Popularity-shift scenario: online hot cache vs the frozen hot set.

The experiment the online cache exists for.  A seeded multi-day stream
(:func:`repro.data.shift.popularity_shift_days`) rotates its Zipf head
mid-run; two arms train on identical data under an identical per-day
compute budget:

- **static** — the paper's pipeline: hot bags calibrated once on day 0
  and frozen.  After the shift the hot-input fraction collapses, every
  batch pays the cold-path cost, and fewer updates fit the day budget.
- **cached** — the same calibration seeds an
  :class:`~repro.core.hotcache.EmbeddingHotCache`; training traffic
  feeds the cache, drift checks on the day stream force turnover, and
  mid-day rebalances re-pack the remaining batches against the new hot
  set, so the arm recovers its hot hit rate (and update count) online.

The per-day budget is expressed in *simulated* batch cost (hot batches
are cheap, cold batches expensive — the paper's premise), so the
accuracy gap is a deterministic consequence of hit rate, not wall-clock
noise.  The report is a pure function of the config: sorted-key JSON,
logical counters only, byte-identical run to run.
"""

from __future__ import annotations

import math
import tempfile
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.core import FAEConfig, fae_preprocess
from repro.core.drift import DriftDetector, recalibration_diff
from repro.core.hotcache import EmbeddingHotCache, HotCacheConfig
from repro.core.input_processor import FAEDataset, InputProcessor
from repro.data import dataset_by_name
from repro.data.loader import train_test_split
from repro.data.shift import popularity_shift_days, write_day_shards
from repro.models import build_model, workload_by_name
from repro.obs import get_registry
from repro.train.metrics import evaluate_model
from repro.train.trainer import FAETrainer

__all__ = ["POPSHIFT_SCHEMA_VERSION", "PopShiftConfig", "run_popularity_shift"]

POPSHIFT_SCHEMA_VERSION = 1

_WORKLOAD_FOR_DATASET = {
    "criteo-kaggle": "RMC2",
    "criteo-terabyte": "RMC3",
    "taobao": "RMC1",
}

#: Registry counters whose run deltas land in the report.
_REPORT_COUNTERS = (
    "hotcache.hits",
    "hotcache.misses",
    "hotcache.promotions",
    "hotcache.demotions",
    "hotcache.evictions",
    "hotcache.rebalances",
    "hotcache.repack.events",
    "hotcache.repack.flipped_inputs",
    "fae.refresh.events",
    "fae.refresh.bytes",
    "fae.refresh.rows.promoted",
    "fae.refresh.rows.demoted",
    "scheduler.repacks",
)


@dataclass(frozen=True)
class PopShiftConfig:
    """Knobs of one popularity-shift run.

    Attributes:
        dataset / scale: synthetic schema to stream.
        samples_per_day: clicks per day shard.
        num_days: total days (day 0 is calibration-only).
        shift_day: first day drawn from the rotated Zipf head.
        seed: master seed; the whole run is a pure function of it.
        batch_size: training mini-batch size.
        budget_bytes: GPU byte budget for hot rows (both arms).
        large_table_min_bytes: tables below this are whole-table hot.
        lr: SGD learning rate.
        test_fraction: per-day held-out split.
        eval_samples: evaluation subsample per day.
        hot_batch_cost / cold_batch_cost: simulated seconds per pure-hot
            / pure-cold batch (the FAE premise: hot is cheaper).
        affinity_scale / dense_signal: planted label-signal mix.  The
            default leans on the per-row affinities, so post-shift
            accuracy hinges on learning the *new head rows'* embeddings
            — the lookups hot-batch training concentrates on.
        budget_per_batch: per-day simulated-seconds budget, as a
            multiple of the day's batch count.  Between the two costs,
            so a mostly-hot day trains fully and an all-cold day cannot.
        cache_decay / cache_eviction / cache_rebalance_every: hot-cache
            knobs (see :class:`~repro.core.hotcache.HotCacheConfig`).
        drift_tolerance: relative hot-share drop that flags drift.
    """

    dataset: str = "criteo-kaggle"
    scale: str = "tiny"
    samples_per_day: int = 1500
    num_days: int = 6
    shift_day: int = 2
    seed: int = 12
    batch_size: int = 64
    budget_bytes: int = 32 * 1024
    large_table_min_bytes: int = 1024
    lr: float = 0.15
    test_fraction: float = 0.2
    eval_samples: int = 512
    hot_batch_cost: float = 1.0
    cold_batch_cost: float = 3.0
    budget_per_batch: float = 1.2
    affinity_scale: float = 2.5
    dense_signal: float = 0.5
    cache_decay: float = 0.5
    cache_eviction: str = "lfu"
    cache_rebalance_every: int = 400
    drift_tolerance: float = 0.6

    def __post_init__(self) -> None:
        if self.num_days < 2:
            raise ValueError("num_days must be >= 2 (day 0 is calibration)")
        if not 0 < self.shift_day < self.num_days:
            raise ValueError("shift_day must fall inside the trained days")
        if self.hot_batch_cost <= 0 or self.cold_batch_cost < self.hot_batch_cost:
            raise ValueError("need 0 < hot_batch_cost <= cold_batch_cost")
        if not self.hot_batch_cost <= self.budget_per_batch <= self.cold_batch_cost:
            raise ValueError(
                "budget_per_batch must sit between the hot and cold batch costs"
            )


class _PooledLog:
    """Concatenation of several logs' rows (evaluation only)."""

    def __init__(self, logs) -> None:
        self.dense = np.concatenate([log.dense for log in logs])
        self.sparse = {
            name: np.concatenate([log.sparse[name] for log in logs])
            for name in logs[0].sparse
        }
        self.labels = np.concatenate([log.labels for log in logs])

    def __len__(self) -> int:
        return int(self.labels.shape[0])


def _membership_hit_rate(
    log, masks: dict[str, np.ndarray], tables: tuple[str, ...]
) -> float:
    """Fraction of the log's lookups into ``tables`` the membership resolves.

    Restricted to the contended (large) tables: whole-table pinned bags
    hit by construction in both arms, so including them only dilutes the
    signal the scenario measures.
    """
    hits = 0
    total = 0
    for name in tables:
        ids = log.sparse[name]
        hits += int(np.count_nonzero(masks[name][ids]))
        total += int(ids.size)
    return hits / total if total else 0.0


def _affordable_counts(
    num_hot: int,
    num_cold: int,
    hot_cost: float,
    cold_cost: float,
    budget: float,
) -> tuple[int, int]:
    """How many hot/cold batches fit the simulated day budget.

    Walks the two streams keeping their consumed fractions balanced
    (the scheduler interleaves them, so truncation must not starve one
    side), stopping when neither stream's next batch is affordable.
    Deterministic: pure integer/float arithmetic, hot preferred on ties.
    """
    taken_hot = 0
    taken_cold = 0
    spent = 0.0
    while True:
        hot_left = taken_hot < num_hot
        cold_left = taken_cold < num_cold
        if not hot_left and not cold_left:
            break
        hot_progress = taken_hot / num_hot if num_hot else 1.0
        cold_progress = taken_cold / num_cold if num_cold else 1.0
        prefer_hot = hot_left and (not cold_left or hot_progress <= cold_progress)
        first, second = ("hot", "cold") if prefer_hot else ("cold", "hot")
        advanced = False
        for stream in (first, second):
            if stream == "hot" and hot_left and spent + hot_cost <= budget:
                taken_hot += 1
                spent += hot_cost
                advanced = True
                break
            if stream == "cold" and cold_left and spent + cold_cost <= budget:
                taken_cold += 1
                spent += cold_cost
                advanced = True
                break
        if not advanced:
            break
    return taken_hot, taken_cold


def _truncate(dataset: FAEDataset, taken_hot: int, taken_cold: int) -> FAEDataset:
    return FAEDataset(
        hot_batches=list(dataset.hot_batches[:taken_hot]),
        cold_batches=list(dataset.cold_batches[:taken_cold]),
        hot_mask=dataset.hot_mask,
        batch_size=dataset.batch_size,
    )


def _run_arm_day(
    model,
    plan,
    bags,
    cache: EmbeddingHotCache | None,
    train_day,
    test_day,
    config: PopShiftConfig,
    day: int,
) -> dict:
    """Train one arm for one day under the simulated budget."""
    processor = InputProcessor(bags, seed=config.seed * 131 + day)
    packed = processor.pack(train_day, batch_size=config.batch_size, drop_last=False)
    num_hot, num_cold = packed.batch_counts()
    day_budget = config.budget_per_batch * (num_hot + num_cold)
    taken_hot, taken_cold = _affordable_counts(
        num_hot,
        num_cold,
        config.hot_batch_cost,
        config.cold_batch_cost,
        day_budget,
    )
    day_plan = replace(plan, bags=bags, dataset=_truncate(packed, taken_hot, taken_cold))
    trainer = FAETrainer(model, day_plan, lr=config.lr, cache=cache)
    result = trainer.train(
        train_day, test_day, epochs=1, eval_samples=config.eval_samples
    )
    return {
        "accuracy": float(result.final_test_accuracy),
        "loss": float(result.history.final.test_loss),
        "batches": taken_hot + taken_cold,
        "batches_packed": num_hot + num_cold,
        "hot_batches": taken_hot,
        "cold_batches": taken_cold,
        "sim_seconds": taken_hot * config.hot_batch_cost
        + taken_cold * config.cold_batch_cost,
    }


def run_popularity_shift(config: PopShiftConfig, shard_dir: str | None = None) -> dict:
    """Run the two-arm popularity-shift experiment; return the report.

    Args:
        config: scenario knobs.
        shard_dir: directory for the day shards (a temp dir when None).
            The day stream always round-trips through
            :class:`~repro.data.chunk_source.ShardChunkSource` — drift
            checks consume the *sharded* stream, as production would.
    """
    registry = get_registry()
    schema = dataset_by_name(config.dataset, config.scale)
    days = popularity_shift_days(
        schema,
        samples_per_day=config.samples_per_day,
        num_days=config.num_days,
        shift_day=config.shift_day,
        seed=config.seed,
        affinity_scale=config.affinity_scale,
        dense_signal=config.dense_signal,
    )
    if shard_dir is None:
        with tempfile.TemporaryDirectory(prefix="popshift-") as tmp:
            source = write_day_shards(tmp, days)
            day_stream = [chunk for _start, chunk in source]
    else:
        source = write_day_shards(shard_dir, days)
        day_stream = [chunk for _start, chunk in source]

    # Day 0: the static calibration both arms start from.
    fae_config = FAEConfig(
        gpu_memory_budget=config.budget_bytes,
        large_table_min_bytes=config.large_table_min_bytes,
        chunk_size=64,
        seed=config.seed,
    )
    plan = fae_preprocess(days[0], fae_config, batch_size=config.batch_size)
    static_bags = plan.bags
    static_masks = {name: bag.hot_mask() for name, bag in static_bags.items()}
    contended = tuple(
        sorted(name for name, bag in static_bags.items() if not bag.whole_table)
    )

    cache = EmbeddingHotCache(
        plan.bags,
        HotCacheConfig(
            budget_bytes=config.budget_bytes,
            eviction=config.cache_eviction,
            decay=config.cache_decay,
            rebalance_every=config.cache_rebalance_every,
            seed=config.seed,
        ),
        profile=plan.calibration.profile,
    )

    workload = workload_by_name(_WORKLOAD_FOR_DATASET[config.dataset])
    model_static = build_model(workload, schema=schema, seed=config.seed + 1)
    model_cached = build_model(workload, schema=schema, seed=config.seed + 1)

    static_detector = DriftDetector(
        static_bags,
        plan.hot_input_fraction,
        tolerance=config.drift_tolerance,
        seed=config.seed,
    )

    counter_start = {name: registry.counter(name).value for name in _REPORT_COUNTERS}

    day_reports = []
    post_shift_tests = []
    for day in range(1, config.num_days):
        day_log = days[day]
        stream_log = day_stream[day]
        rotated = day >= config.shift_day

        # Drift on the sharded stream: the static detector shows *when*
        # coverage broke; a cache-side detector (rebuilt each day from
        # live membership) forces turnover of the pending window.
        static_drift = static_detector.check(stream_log)
        cache_detector = DriftDetector(
            cache.bags(),
            plan.hot_input_fraction,
            tolerance=config.drift_tolerance,
            seed=config.seed,
        )
        cache_drift = cache_detector.check(stream_log)
        turnover = None
        if cache_drift.drifted:
            delta = cache.rebalance()
            turnover = {
                "promoted": int(delta.num_promoted),
                "demoted": int(delta.num_demoted),
            }

        train_day, test_day = train_test_split(
            day_log, config.test_fraction, seed=config.seed + day
        )
        if rotated:
            post_shift_tests.append(test_day)

        cached_bags = cache.bags()
        cached_masks = {name: bag.hot_mask() for name, bag in cached_bags.items()}
        static_start_hit = _membership_hit_rate(train_day, static_masks, contended)
        cached_start_hit = _membership_hit_rate(train_day, cached_masks, contended)

        hits_before, misses_before = cache.hits, cache.misses
        static_day = _run_arm_day(
            model_static, plan, static_bags, None, train_day, test_day, config, day
        )
        cached_day = _run_arm_day(
            model_cached, plan, cached_bags, cache, train_day, test_day, config, day
        )
        day_hits = cache.hits - hits_before
        day_misses = cache.misses - misses_before
        online_total = day_hits + day_misses

        static_day["hit_rate"] = static_start_hit
        cached_day["hit_rate"] = cached_start_hit
        cached_day["online_hit_rate"] = (
            day_hits / online_total if online_total else 0.0
        )
        day_reports.append(
            {
                "day": day,
                "rotated": rotated,
                "static": static_day,
                "cached": cached_day,
                "drift": {
                    "hot_input_fraction": static_drift.hot_input_fraction,
                    "relative_drop": static_drift.relative_drop,
                    "drifted": static_drift.drifted,
                },
                "turnover": turnover,
            }
        )

    def _mean(values: list[float]) -> float:
        return float(np.mean(values)) if values else 0.0

    post = [entry for entry in day_reports if entry["rotated"]]
    static_hit = _mean([e["static"]["hit_rate"] for e in post])
    cached_hit = _mean([e["cached"]["hit_rate"] for e in post])

    # Final-model accuracy over the POOLED post-shift test splits: the
    # per-day splits are too small to resolve the arms' loss gap, and the
    # gap compounds across days, so the end-of-run models on the full
    # rotated test set are the fair comparison.
    pooled = _PooledLog(post_shift_tests)
    static_loss, static_acc = evaluate_model(model_static, pooled)
    cached_loss, cached_acc = evaluate_model(model_cached, pooled)

    # Size the refresh traffic the cache shipped, vs frozen calibration.
    diff = recalibration_diff(static_bags, cache.bags())
    refresh = {
        name: {
            "added": added,
            "removed": removed,
            "added_bytes": added * static_bags[name].dim * 4,
        }
        for name, (added, removed) in sorted(diff.items())
    }

    counters = {
        name: int(registry.counter(name).value - counter_start[name])
        for name in _REPORT_COUNTERS
    }
    return {
        "schema_version": POPSHIFT_SCHEMA_VERSION,
        "kind": "popshift_report",
        "seed": config.seed,
        "config": asdict(config),
        "calibration": {
            "threshold": plan.threshold,
            "hot_input_fraction": plan.hot_input_fraction,
            "hot_bytes": plan.hot_bytes,
            "day_batches": int(
                math.ceil(config.samples_per_day * (1 - config.test_fraction))
                // config.batch_size
            ),
        },
        "days": day_reports,
        "post_shift": {
            "days": len(post),
            "test_samples": len(pooled),
            "static_hit_rate": static_hit,
            "cached_hit_rate": cached_hit,
            "hit_margin": cached_hit - static_hit,
            "static_accuracy": static_acc,
            "cached_accuracy": cached_acc,
            "accuracy_margin": cached_acc - static_acc,
            "static_loss": static_loss,
            "cached_loss": cached_loss,
            "loss_margin": static_loss - cached_loss,
        },
        "recalibration": refresh,
        "cache": cache.stats(),
        "counters": counters,
    }
