"""Evaluation metrics for click-through models."""

from __future__ import annotations

import numpy as np

from repro.data.loader import batch_from_log
from repro.data.synthetic import SyntheticClickLog
from repro.models.base import RecModel
from repro.nn.activations import sigmoid

__all__ = ["binary_accuracy", "roc_auc", "evaluate_model"]


def roc_auc(logits: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (rank statistic, ties averaged).

    AUC is the standard CTR-model quality metric; computed via the
    Mann-Whitney U relation: AUC = (rank-sum of positives - offset) /
    (num_pos * num_neg).

    Raises:
        ValueError: if either class is absent (AUC undefined).
    """
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if logits.shape != labels.shape:
        raise ValueError(f"logits {logits.shape} vs labels {labels.shape} mismatch")
    positives = labels > 0.5
    num_pos = int(positives.sum())
    num_neg = labels.size - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ValueError("AUC needs at least one positive and one negative sample")
    order = np.argsort(logits, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    ranks[order] = np.arange(1, labels.size + 1)
    # Average ranks over tied scores so AUC is permutation-invariant.
    sorted_logits = logits[order]
    start = 0
    for i in range(1, labels.size + 1):
        if i == labels.size or sorted_logits[i] != sorted_logits[start]:
            if i - start > 1:
                ranks[order[start:i]] = ranks[order[start:i]].mean()
            start = i
    rank_sum = ranks[positives].sum()
    return float((rank_sum - num_pos * (num_pos + 1) / 2) / (num_pos * num_neg))


def binary_accuracy(logits: np.ndarray, labels: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of correct hard predictions at a probability threshold."""
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if logits.shape != labels.shape:
        raise ValueError(f"logits {logits.shape} vs labels {labels.shape} mismatch")
    predictions = sigmoid(logits) >= threshold
    return float((predictions == labels.astype(bool)).mean())


def evaluate_model(
    model: RecModel,
    log: SyntheticClickLog,
    batch_size: int = 2048,
    max_samples: int | None = None,
) -> tuple[float, float]:
    """Evaluate ``model`` on ``log``: returns ``(mean BCE loss, accuracy)``.

    Args:
        model: the model (forward-only; no gradients recorded).
        log: evaluation inputs.
        batch_size: evaluation batch size.
        max_samples: cap on evaluated samples (the FAE scheduler evaluates
            a subsample after each segment to keep training fast).
    """
    n = len(log) if max_samples is None else min(len(log), max_samples)
    if n == 0:
        raise ValueError("cannot evaluate on an empty log")
    total_loss = 0.0
    total_correct = 0.0
    for start in range(0, n, batch_size):
        indices = np.arange(start, min(start + batch_size, n))
        batch = batch_from_log(log, indices)
        logits = np.asarray(model.forward(batch), dtype=np.float64)
        labels = batch.labels.astype(np.float64)
        loss = (
            np.maximum(logits, 0) - logits * labels + np.log1p(np.exp(-np.abs(logits)))
        ).sum()
        total_loss += float(loss)
        total_correct += float(((sigmoid(logits) >= 0.5) == labels.astype(bool)).sum())
    return total_loss / n, total_correct / n
