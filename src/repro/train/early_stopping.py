"""Early-stopping criteria (Prechelt, "Early Stopping — But When?").

The paper justifies the Shuffle Scheduler's ``u = 4`` strips by citing
Prechelt's convergence-check heuristics (SS III-C: "the downward trend of
test loss curve consecutively for 4 strips shows a balance between
redundancy, badness, and slowness").  This module implements the two
criteria that reasoning comes from, so the choice can be studied rather
than taken on faith:

- **GL(alpha)** — stop when generalization loss (relative gap between the
  current and the best validation loss so far) exceeds ``alpha`` percent.
- **UP(s)** — stop after the validation loss increases across ``s``
  consecutive strips.

Both consume one validation loss per strip via :meth:`update`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GeneralizationLoss", "ConsecutiveIncrease"]


@dataclass
class GeneralizationLoss:
    """Prechelt's GL(alpha) criterion.

    Attributes:
        alpha: stop threshold in percent (GL > alpha -> stop).
    """

    alpha: float = 5.0
    best: float = field(default=float("inf"), init=False)
    current_gl: float = field(default=0.0, init=False)
    stopped: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def update(self, validation_loss: float) -> bool:
        """Feed one strip's validation loss; returns True when stopping."""
        if validation_loss < 0:
            raise ValueError("validation loss must be non-negative")
        self.best = min(self.best, validation_loss)
        if self.best == 0:
            self.current_gl = 0.0 if validation_loss == 0 else float("inf")
        else:
            self.current_gl = 100.0 * (validation_loss / self.best - 1.0)
        if self.current_gl > self.alpha:
            self.stopped = True
        return self.stopped


@dataclass
class ConsecutiveIncrease:
    """Prechelt's UP(s) criterion: s successive validation-loss increases.

    With ``strips = 4`` this is the same "4 strips" trend test the
    paper's scheduler uses (in the improvement direction) to double its
    rate.
    """

    strips: int = 4
    _previous: float | None = field(default=None, init=False)
    streak: int = field(default=0, init=False)
    stopped: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.strips < 1:
            raise ValueError("strips must be >= 1")

    def update(self, validation_loss: float) -> bool:
        """Feed one strip's validation loss; returns True when stopping."""
        if self._previous is not None:
            if validation_loss > self._previous:
                self.streak += 1
            else:
                self.streak = 0
        self._previous = validation_loss
        if self.streak >= self.strips:
            self.stopped = True
        return self.stopped
