"""Training orchestration: baseline hybrid and FAE trainers.

These trainers execute *real* numpy training (the models in
:mod:`repro.models` over the synthetic logs in :mod:`repro.data`), which
is what the accuracy experiments (paper Fig 12, Table III) measure.  The
:class:`FAETrainer` exercises the genuine FAE runtime: hot mini-batches
run against replicated hot bags, cold mini-batches against the master
tables, with hot-bag synchronization at every transition and the Shuffle
Scheduler adapting the interleave rate from the test loss.
"""

from repro.train.metrics import evaluate_model, binary_accuracy, roc_auc
from repro.train.history import TrainingHistory, HistoryPoint
from repro.train.trainer import BaselineTrainer, FAETrainer, TrainResult
from repro.train.early_stopping import ConsecutiveIncrease, GeneralizationLoss
from repro.train.popshift import PopShiftConfig, run_popularity_shift

__all__ = [
    "BaselineTrainer",
    "ConsecutiveIncrease",
    "GeneralizationLoss",
    "FAETrainer",
    "HistoryPoint",
    "PopShiftConfig",
    "TrainResult",
    "TrainingHistory",
    "run_popularity_shift",
    "binary_accuracy",
    "evaluate_model",
    "roc_auc",
]
