"""Recommender models: DLRM (RMC2/RMC3) and TBSM (RMC1).

Both models follow the paper's Fig 1 topology — bottom MLP over dense
features, embedding bags over sparse features, a feature-interaction
stage, and a top MLP emitting a click logit — with TBSM adding the
per-timestep attention aggregation over behaviour sequences.
"""

from repro.models.base import RecModel
from repro.models.dlrm import DLRM, DLRMConfig
from repro.models.tbsm import TBSM, TBSMConfig
from repro.models.zoo import ModelSpec, WORKLOADS, build_model, workload_by_name

__all__ = [
    "DLRM",
    "DLRMConfig",
    "ModelSpec",
    "RecModel",
    "TBSM",
    "TBSMConfig",
    "WORKLOADS",
    "build_model",
    "workload_by_name",
]
