"""Shared recommender-model interface.

Both trainers (baseline hybrid and FAE) drive models through this
interface; the FAE trainer additionally swaps embedding bags in and out
via :meth:`RecModel.set_bag` when switching between the CPU-resident full
tables and the GPU-resident hot bags.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.loader import MiniBatch
from repro.nn.embedding import EmbeddingTable
from repro.nn.parameter import Parameter

__all__ = ["RecModel"]


class RecModel(abc.ABC):
    """A binary click-through recommender model."""

    @abc.abstractmethod
    def forward(self, batch: MiniBatch) -> np.ndarray:
        """Compute ``(B,)`` logits for a mini-batch."""

    @abc.abstractmethod
    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate from the logit gradient through every layer."""

    @abc.abstractmethod
    def parameters(self) -> list[Parameter]:
        """All trainable parameters (MLPs + embedding tables in use)."""

    @abc.abstractmethod
    def dense_parameters(self) -> list[Parameter]:
        """Parameters of the neural-network portion only (no tables)."""

    @property
    @abc.abstractmethod
    def tables(self) -> dict[str, EmbeddingTable]:
        """The full (CPU master) embedding tables by name."""

    @abc.abstractmethod
    def set_bag(self, table_name: str, bag) -> None:
        """Swap the lookup bag serving ``table_name`` (FAE hot/cold switch)."""

    @abc.abstractmethod
    def get_bag(self, table_name: str):
        """Current lookup bag serving ``table_name``."""

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def embedding_bytes(self) -> int:
        return sum(t.nbytes for t in self.tables.values())
