"""DLRM: Deep Learning Recommendation Model (Naumov et al., 2019).

Topology (paper Fig 1 / Fig 3): dense features flow through a bottom MLP
to width ``d``; each sparse feature performs a pooled embedding-bag lookup
of width ``d``; the dot-interaction combines them; the top MLP emits the
click logit.  The paper's RMC2 (Criteo Kaggle) and RMC3 (Criteo Terabyte)
are DLRM instances whose layer sizes come from Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import MiniBatch
from repro.data.schema import DatasetSchema
from repro.models.base import RecModel
from repro.nn.embedding import EmbeddingBag, EmbeddingTable
from repro.nn.interaction import DotInteraction
from repro.nn.mlp import MLP, parse_layer_spec
from repro.nn.parameter import Parameter

__all__ = ["DLRMConfig", "DLRM"]


@dataclass(frozen=True)
class DLRMConfig:
    """Architecture knobs for a DLRM instance.

    Attributes:
        bottom_mlp: Table I layer string, e.g. ``"13-512-256-64-16"``.
            The last width must equal the embedding dimension.
        top_mlp: hidden widths of the top MLP, e.g. ``"512-256-1"``; its
            input width is derived from the interaction output.
        pooling: embedding-bag pooling mode (``"mean"`` or ``"sum"``).
        seed: weight init seed.
    """

    bottom_mlp: str
    top_mlp: str
    pooling: str = "mean"
    seed: int = 0


class DLRM(RecModel):
    """A trainable DLRM over a dataset schema.

    Args:
        schema: dataset geometry; one embedding table per sparse feature.
        config: architecture description.

    Raises:
        ValueError: if the bottom MLP output width differs from the
            embedding dimension (the dot interaction requires equality).
    """

    def __init__(self, schema: DatasetSchema, config: DLRMConfig) -> None:
        self.schema = schema
        self.config = config
        rng = np.random.default_rng(config.seed)

        bottom_sizes = parse_layer_spec(config.bottom_mlp)
        if bottom_sizes[0] != schema.num_dense:
            raise ValueError(
                f"bottom MLP input {bottom_sizes[0]} != num_dense {schema.num_dense}"
            )
        dims = {t.dim for t in schema.tables}
        if len(dims) != 1:
            raise ValueError(f"DLRM requires a single embedding dim, got {sorted(dims)}")
        self.embedding_dim = dims.pop()
        if bottom_sizes[-1] != self.embedding_dim:
            raise ValueError(
                f"bottom MLP output {bottom_sizes[-1]} != embedding dim {self.embedding_dim}"
            )

        self.bottom_mlp = MLP(bottom_sizes, rng, final_activation="relu", name="mlp_bot")

        self._tables: dict[str, EmbeddingTable] = {}
        self._bags: dict[str, EmbeddingBag] = {}
        for spec in schema.tables:
            table = EmbeddingTable(spec.name, spec.num_rows, spec.dim, rng)
            self._tables[spec.name] = table
            self._bags[spec.name] = EmbeddingBag(table, mode=config.pooling)

        self.interaction = DotInteraction()
        interaction_dim = DotInteraction.output_dim(
            num_features=1 + schema.num_sparse, feature_dim=self.embedding_dim
        )
        top_sizes = (interaction_dim, *parse_layer_spec(f"{interaction_dim}-{config.top_mlp}")[1:])
        if top_sizes[-1] != 1:
            raise ValueError(f"top MLP must end in width 1, got {config.top_mlp!r}")
        self.top_mlp = MLP(top_sizes, rng, final_activation=None, name="mlp_top")

        self._table_order = tuple(schema.table_names)
        self._active_bags: list | None = None

    # ------------------------------------------------------------------
    # RecModel interface
    # ------------------------------------------------------------------

    @property
    def tables(self) -> dict[str, EmbeddingTable]:
        return self._tables

    def set_bag(self, table_name: str, bag) -> None:
        if table_name not in self._bags:
            raise KeyError(f"unknown table {table_name!r}")
        self._bags[table_name] = bag

    def get_bag(self, table_name: str):
        return self._bags[table_name]

    def dense_parameters(self) -> list[Parameter]:
        return [*self.bottom_mlp.parameters(), *self.top_mlp.parameters()]

    def parameters(self) -> list[Parameter]:
        params = self.dense_parameters()
        seen: set[int] = {id(p) for p in params}
        for name in self._table_order:
            for param in self._bags[name].parameters():
                if id(param) not in seen:
                    params.append(param)
                    seen.add(id(param))
        return params

    def forward(self, batch: MiniBatch) -> np.ndarray:
        """Run the full forward graph; returns ``(B,)`` logits."""
        dense_vec = self.bottom_mlp.forward(batch.dense)
        bags = [self._bags[name] for name in self._table_order]
        embedding_vecs = [
            bag.forward(batch.sparse[name]) for name, bag in zip(self._table_order, bags)
        ]
        interacted = self.interaction.forward(dense_vec, embedding_vecs)
        logits = self.top_mlp.forward(interacted)
        self._active_bags = bags
        return logits[:, 0]

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backprop from ``(B,)`` logit grads; accumulates all param grads."""
        if self._active_bags is None:
            raise RuntimeError("backward called before forward")
        grad_top = self.top_mlp.backward(grad_logits[:, None].astype(np.float32))
        grad_dense, grad_embeddings = self.interaction.backward(grad_top)
        for bag, grad in zip(self._active_bags, grad_embeddings):
            bag.backward(grad)
        self.bottom_mlp.backward(grad_dense)
        self._active_bags = None

    # ------------------------------------------------------------------
    # Cost-model hooks
    # ------------------------------------------------------------------

    def mlp_flops_per_sample(self) -> int:
        """Forward MACs per sample across both MLPs plus the interaction."""
        num_features = 1 + self.schema.num_sparse
        interaction_flops = num_features * num_features * self.embedding_dim
        return (
            self.bottom_mlp.flops_per_sample()
            + self.top_mlp.flops_per_sample()
            + interaction_flops
        )

    def lookups_per_sample(self) -> int:
        return self.schema.lookups_per_sample()
