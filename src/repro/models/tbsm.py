"""TBSM: Time-Based Sequence Model (Ishkhanov et al., 2020).

TBSM extends DLRM with a temporal dimension: each input carries a
behaviour *sequence* (the paper's Taobao workload uses up to 21
sub-inputs per sample).  Per timestep, the sequence-table embeddings are
combined with the static (user) embeddings through a shared timestep MLP
to form a context vector; an attention layer aggregates the sequence of
context vectors; the aggregated context joins the dense-feature path in
the top MLP that emits the click logit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import MiniBatch
from repro.data.schema import DatasetSchema
from repro.models.base import RecModel
from repro.nn.attention import SequenceAttention
from repro.nn.embedding import EmbeddingBag, EmbeddingTable
from repro.nn.mlp import MLP, parse_layer_spec
from repro.nn.parameter import Parameter

__all__ = ["TBSMConfig", "TBSM"]


@dataclass(frozen=True)
class TBSMConfig:
    """Architecture knobs for a TBSM instance.

    Attributes:
        bottom_mlp: dense-path layer string, e.g. ``"3-16"``.
        ts_hidden: hidden widths of the shared per-timestep MLP, e.g.
            ``"22-15-15"`` from Table I; its input width is derived from
            the embedding concatenation and appended automatically.
        top_mlp: widths after the (context + dense) concat, ending in 1,
            e.g. ``"30-60-1"`` — the leading width is replaced by the
            derived concat width.
        pooling: pooling for static (multiplicity-1) tables.
        seed: weight init seed.
    """

    bottom_mlp: str
    ts_hidden: str = "22-15-15"
    top_mlp: str = "30-60-1"
    pooling: str = "mean"
    seed: int = 0


class TBSM(RecModel):
    """A trainable TBSM over a schema with sequence-valued sparse features.

    Tables with multiplicity > 1 are treated as behaviour sequences (all
    must share the same length); multiplicity-1 tables are static context
    broadcast to every timestep.
    """

    def __init__(self, schema: DatasetSchema, config: TBSMConfig) -> None:
        self.schema = schema
        self.config = config
        rng = np.random.default_rng(config.seed)

        dims = {t.dim for t in schema.tables}
        if len(dims) != 1:
            raise ValueError(f"TBSM requires a single embedding dim, got {sorted(dims)}")
        self.embedding_dim = dims.pop()

        seq_lengths = {t.multiplicity for t in schema.tables if t.multiplicity > 1}
        if len(seq_lengths) != 1:
            raise ValueError(
                f"TBSM needs exactly one shared sequence length, got {sorted(seq_lengths)}"
            )
        self.seq_len = seq_lengths.pop()
        self.seq_tables = tuple(t.name for t in schema.tables if t.multiplicity > 1)
        self.static_tables = tuple(t.name for t in schema.tables if t.multiplicity == 1)

        bottom_sizes = parse_layer_spec(config.bottom_mlp)
        if bottom_sizes[0] != schema.num_dense:
            raise ValueError(
                f"bottom MLP input {bottom_sizes[0]} != num_dense {schema.num_dense}"
            )
        self.bottom_mlp = MLP(bottom_sizes, rng, final_activation="relu", name="mlp_bot")

        self._tables: dict[str, EmbeddingTable] = {}
        self._bags: dict[str, EmbeddingBag] = {}
        for spec in schema.tables:
            table = EmbeddingTable(spec.name, spec.num_rows, spec.dim, rng)
            self._tables[spec.name] = table
            self._bags[spec.name] = EmbeddingBag(table, mode=config.pooling)

        ts_input = (len(self.seq_tables) + len(self.static_tables)) * self.embedding_dim
        ts_hidden = parse_layer_spec(config.ts_hidden)
        self.ts_mlp = MLP((ts_input, *ts_hidden[1:]), rng, final_activation="relu", name="mlp_ts")
        self.context_dim = self.ts_mlp.out_features

        self.attention = SequenceAttention(self.context_dim, rng)

        top_tail = parse_layer_spec(config.top_mlp)[1:]
        if top_tail[-1] != 1:
            raise ValueError(f"top MLP must end in width 1, got {config.top_mlp!r}")
        top_input = self.context_dim + self.bottom_mlp.out_features
        self.top_mlp = MLP((top_input, *top_tail), rng, final_activation=None, name="mlp_top")

        self._cache: dict | None = None

    # ------------------------------------------------------------------
    # RecModel interface
    # ------------------------------------------------------------------

    @property
    def tables(self) -> dict[str, EmbeddingTable]:
        return self._tables

    def set_bag(self, table_name: str, bag) -> None:
        if table_name not in self._bags:
            raise KeyError(f"unknown table {table_name!r}")
        self._bags[table_name] = bag

    def get_bag(self, table_name: str):
        return self._bags[table_name]

    def dense_parameters(self) -> list[Parameter]:
        return [
            *self.bottom_mlp.parameters(),
            *self.ts_mlp.parameters(),
            *self.attention.parameters(),
            *self.top_mlp.parameters(),
        ]

    def parameters(self) -> list[Parameter]:
        params = self.dense_parameters()
        seen: set[int] = {id(p) for p in params}
        for name in (*self.seq_tables, *self.static_tables):
            for param in self._bags[name].parameters():
                if id(param) not in seen:
                    params.append(param)
                    seen.add(id(param))
        return params

    def forward(self, batch: MiniBatch) -> np.ndarray:
        """Run the sequence forward graph; returns ``(B,)`` logits."""
        batch_size = len(batch)
        dense_vec = self.bottom_mlp.forward(batch.dense)

        seq_parts = []
        for name in self.seq_tables:
            ids = batch.sparse[name]
            if ids.shape[1] != self.seq_len:
                raise ValueError(
                    f"table {name!r}: expected sequence length {self.seq_len}, got {ids.shape[1]}"
                )
            seq_parts.append(self._bags[name].sequence_forward(ids))  # (B, T, d)

        static_parts = []
        for name in self.static_tables:
            pooled = self._bags[name].forward(batch.sparse[name])  # (B, d)
            static_parts.append(np.broadcast_to(pooled[:, None, :], (batch_size, self.seq_len, self.embedding_dim)))

        per_step = np.concatenate([*seq_parts, *static_parts], axis=2)  # (B, T, F*d)
        flat = per_step.reshape(batch_size * self.seq_len, -1)
        contexts = self.ts_mlp.forward(flat).reshape(batch_size, self.seq_len, self.context_dim)

        aggregated = self.attention.forward(contexts)  # (B, dz)
        top_in = np.concatenate([aggregated, dense_vec], axis=1)
        logits = self.top_mlp.forward(top_in)

        self._cache = {"batch_size": batch_size}
        return logits[:, 0]

    def backward(self, grad_logits: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        batch_size = self._cache["batch_size"]

        grad_top_in = self.top_mlp.backward(grad_logits[:, None].astype(np.float32))
        grad_context = grad_top_in[:, : self.context_dim]
        grad_dense_vec = grad_top_in[:, self.context_dim :]

        grad_contexts = self.attention.backward(grad_context)  # (B, T, dz)
        grad_flat = grad_contexts.reshape(batch_size * self.seq_len, self.context_dim)
        grad_per_step = self.ts_mlp.backward(grad_flat).reshape(batch_size, self.seq_len, -1)

        offset = 0
        d = self.embedding_dim
        for name in self.seq_tables:
            self._bags[name].sequence_backward(grad_per_step[:, :, offset : offset + d])
            offset += d
        for name in self.static_tables:
            # Broadcasting a static embedding to T steps sums its grads.
            grad_static = grad_per_step[:, :, offset : offset + d].sum(axis=1)
            self._bags[name].backward(grad_static.astype(np.float32))
            offset += d

        self.bottom_mlp.backward(grad_dense_vec)
        self._cache = None

    # ------------------------------------------------------------------
    # Cost-model hooks
    # ------------------------------------------------------------------

    def mlp_flops_per_sample(self) -> int:
        """Forward MACs per sample: dense + T timestep MLPs + attention + top."""
        attention_flops = 2 * self.seq_len * self.context_dim
        return (
            self.bottom_mlp.flops_per_sample()
            + self.seq_len * self.ts_mlp.flops_per_sample()
            + attention_flops
            + self.top_mlp.flops_per_sample()
        )

    def lookups_per_sample(self) -> int:
        return self.schema.lookups_per_sample()
