"""Workload registry: the paper's Table I model/dataset pairs.

``RMC1`` = TBSM on Taobao, ``RMC2`` = DLRM on Criteo Kaggle, ``RMC3`` =
DLRM on Criteo Terabyte.  Mini-batch sizes and the per-GPU weak-scaling
rule come from SS IV-B.2 (1 GPU uses 1K / 256 / 1K; batch size scales with
the number of GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import dataset_by_name
from repro.data.schema import DatasetSchema
from repro.models.base import RecModel
from repro.models.dlrm import DLRM, DLRMConfig
from repro.models.tbsm import TBSM, TBSMConfig

__all__ = ["ModelSpec", "WORKLOADS", "workload_by_name", "build_model"]


@dataclass(frozen=True)
class ModelSpec:
    """One row of the paper's Table I.

    Attributes:
        name: workload id ("RMC1" | "RMC2" | "RMC3").
        model_kind: "dlrm" or "tbsm".
        dataset: dataset factory name understood by
            :func:`repro.data.datasets.dataset_by_name`.
        bottom_mlp: Table I bottom-MLP layer string.
        top_mlp: Table I top-MLP layer string.
        base_batch_size: 1-GPU mini-batch size used in SS IV-B.2.
    """

    name: str
    model_kind: str
    dataset: str
    bottom_mlp: str
    top_mlp: str
    base_batch_size: int

    def batch_size_for(self, num_gpus: int) -> int:
        """Weak-scaled mini-batch size for a ``num_gpus`` execution."""
        if num_gpus <= 0:
            raise ValueError(f"num_gpus must be positive, got {num_gpus}")
        return self.base_batch_size * num_gpus


WORKLOADS: dict[str, ModelSpec] = {
    "RMC1": ModelSpec(
        name="RMC1",
        model_kind="tbsm",
        dataset="taobao",
        bottom_mlp="3-16",
        top_mlp="30-60-1",
        base_batch_size=256,
    ),
    "RMC2": ModelSpec(
        name="RMC2",
        model_kind="dlrm",
        dataset="criteo-kaggle",
        bottom_mlp="13-512-256-64-16",
        top_mlp="512-256-1",
        base_batch_size=1024,
    ),
    "RMC3": ModelSpec(
        name="RMC3",
        model_kind="dlrm",
        dataset="criteo-terabyte",
        bottom_mlp="13-512-256-64",
        top_mlp="512-512-256-1",
        base_batch_size=1024,
    ),
}


def workload_by_name(name: str) -> ModelSpec:
    """Look up a Table I workload (case-insensitive)."""
    key = name.upper()
    try:
        return WORKLOADS[key]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}") from None


def build_model(spec: ModelSpec, schema: DatasetSchema | None = None, scale: str | float = "small", seed: int = 0) -> RecModel:
    """Instantiate the model for a workload spec.

    Args:
        spec: Table I workload.
        schema: explicit dataset schema; defaults to the workload's
            dataset at ``scale``.
        scale: dataset shrink factor when ``schema`` is omitted.
        seed: weight init seed.

    Note:
        RMC3's Table I bottom MLP ends at 64 (the Terabyte embedding dim),
        which already satisfies DLRM's width constraint.
    """
    if schema is None:
        schema = dataset_by_name(spec.dataset, scale)
    if spec.model_kind == "dlrm":
        bottom = _fit_bottom_mlp(spec.bottom_mlp, schema)
        return DLRM(schema, DLRMConfig(bottom_mlp=bottom, top_mlp=spec.top_mlp, seed=seed))
    if spec.model_kind == "tbsm":
        return TBSM(schema, TBSMConfig(bottom_mlp=spec.bottom_mlp, top_mlp=spec.top_mlp, seed=seed))
    raise ValueError(f"unknown model kind {spec.model_kind!r}")


def _fit_bottom_mlp(bottom_mlp: str, schema: DatasetSchema) -> str:
    """Ensure the bottom MLP's output width matches the embedding dim.

    Table I's RMC2 string ends at 16 (Kaggle dim) and RMC3's at 64
    (Terabyte dim); if a caller pairs a spec with a schema of a different
    dim, append the required width rather than failing obscurely.
    """
    dim = schema.tables[0].dim
    sizes = [int(s) for s in bottom_mlp.split("-")]
    if sizes[-1] != dim:
        sizes.append(dim)
    return "-".join(str(s) for s in sizes)
