"""Embedding Logger (paper SS III-A.2).

Counts accesses into each entry of each *large* embedding table for the
sampled inputs, producing the :class:`~repro.core.access_profile.AccessProfile`
every later stage consumes.  Tables under the large-table cutoff (1 MB by
default) are skipped: they are de-facto hot and always shipped whole.

Profiling is streaming at heart: a :class:`ProfileAccumulator` folds one
chunk of sampled lookups at a time into running per-table bincounts, so
the profile of a terabyte-scale source is built at the memory cost of
one chunk.  The whole-log :meth:`EmbeddingLogger.profile` and the
chunked :meth:`EmbeddingLogger.profile_source` produce identical
profiles for the same sampled positions.
"""

from __future__ import annotations

import numpy as np

from repro.core.access_profile import AccessProfile, TableProfile
from repro.core.config import FAEConfig
from repro.data.chunk_source import ChunkSource
from repro.data.log import ClickLog
from repro.data.schema import DatasetSchema
from repro.data.synthetic import SyntheticClickLog
from repro.obs import timed

__all__ = ["EmbeddingLogger", "ProfileAccumulator"]


class ProfileAccumulator:
    """Streaming access-count accumulation over chunked sampled inputs.

    Args:
        schema: dataset geometry.
        large_table_min_bytes: cutoff below which tables are skipped.

    Feed chunks with :meth:`update`; :meth:`finalize` yields the
    :class:`AccessProfile`.  Memory is one int64 count vector per large
    table — independent of how many inputs stream through.
    """

    def __init__(self, schema: DatasetSchema, large_table_min_bytes: int) -> None:
        self.schema = schema
        self.num_sampled = 0
        self.num_observed = 0
        self._profiles = {
            spec.name: TableProfile(
                name=spec.name,
                counts=np.zeros(spec.num_rows, dtype=np.int64),
                dim=spec.dim,
            )
            for spec in schema.large_tables(large_table_min_bytes)
        }

    @property
    def num_tables(self) -> int:
        return len(self._profiles)

    def update(
        self,
        chunk: ClickLog,
        local_indices: np.ndarray,
        count_observed: bool = True,
    ) -> None:
        """Fold one chunk's sampled rows into the running counts.

        Args:
            chunk: the chunk being profiled.
            local_indices: sampled positions *within* the chunk.
            count_observed: whether ``len(chunk)`` joins the observed
                total (False when re-feeding an already-seen chunk, e.g.
                the keep-at-least-one fallback for empty Bernoulli runs).
        """
        local_indices = np.asarray(local_indices, dtype=np.int64)
        if count_observed:
            self.num_observed += len(chunk)
        if local_indices.size == 0:
            return
        self.num_sampled += int(local_indices.size)
        for name, profile in self._profiles.items():
            profile.accumulate(chunk.sparse[name][local_indices])

    def finalize(self, num_total_inputs: int | None = None) -> AccessProfile:
        """The accumulated profile.

        Args:
            num_total_inputs: full input-set size; defaults to the
                number of rows observed via :meth:`update`.

        Raises:
            ValueError: if no inputs were sampled.
        """
        if self.num_sampled == 0:
            raise ValueError("no inputs were sampled; cannot build an access profile")
        return AccessProfile(
            schema=self.schema,
            tables=self._profiles,
            num_sampled_inputs=self.num_sampled,
            num_total_inputs=(
                self.num_observed if num_total_inputs is None else num_total_inputs
            ),
        )


class EmbeddingLogger:
    """Builds sampled access profiles over a click log.

    Args:
        config: FAE configuration (controls the large-table cutoff).
    """

    def __init__(self, config: FAEConfig) -> None:
        self.config = config
        self.last_elapsed_seconds = 0.0

    def accumulator(self, schema: DatasetSchema) -> ProfileAccumulator:
        """A fresh accumulator under this logger's large-table cutoff."""
        return ProfileAccumulator(schema, self.config.large_table_min_bytes)

    def profile(self, log: SyntheticClickLog, sample_indices: np.ndarray) -> AccessProfile:
        """Count accesses for the sampled inputs.

        Args:
            log: the click log being profiled.
            sample_indices: input positions selected by the sampler (pass
                ``np.arange(len(log))`` for the naive full profile).

        Returns:
            An :class:`AccessProfile` covering the large tables.
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if sample_indices.size == 0:
            raise ValueError("sample_indices must be non-empty")

        with timed("calibrate.profile", num_sampled=int(sample_indices.shape[0])) as timer:
            tables: dict[str, TableProfile] = {}
            for spec in log.schema.large_tables(self.config.large_table_min_bytes):
                counts = log.access_counts(spec.name, sample_indices)
                tables[spec.name] = TableProfile(name=spec.name, counts=counts, dim=spec.dim)
            timer.set(num_tables=len(tables))

        # Thin alias over the span's wall time; kept for older callers.
        self.last_elapsed_seconds = timer.seconds
        return AccessProfile(
            schema=log.schema,
            tables=tables,
            num_sampled_inputs=int(sample_indices.shape[0]),
            num_total_inputs=len(log),
        )

    def profile_source(
        self, source: ChunkSource, sample_indices: np.ndarray
    ) -> AccessProfile:
        """Chunked equivalent of :meth:`profile` over a sized source.

        Each chunk selects its slice of the (sorted) sampled positions
        via ``searchsorted`` and folds the corresponding lookups into a
        :class:`ProfileAccumulator`; per-table sums of per-chunk
        bincounts equal the whole-log bincount, so the resulting profile
        is identical to :meth:`profile` over the materialized log.
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if sample_indices.size == 0:
            raise ValueError("sample_indices must be non-empty")

        with timed("calibrate.profile", num_sampled=int(sample_indices.shape[0])) as timer:
            accumulator = self.accumulator(source.schema)
            num_chunks = 0
            for start, chunk in source:
                lo = np.searchsorted(sample_indices, start)
                hi = np.searchsorted(sample_indices, start + len(chunk))
                accumulator.update(chunk, sample_indices[lo:hi] - start)
                num_chunks += 1
            timer.set(num_tables=accumulator.num_tables, num_chunks=num_chunks)

        self.last_elapsed_seconds = timer.seconds
        return accumulator.finalize(num_total_inputs=source.num_samples)
