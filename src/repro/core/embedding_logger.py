"""Embedding Logger (paper SS III-A.2).

Counts accesses into each entry of each *large* embedding table for the
sampled inputs, producing the :class:`~repro.core.access_profile.AccessProfile`
every later stage consumes.  Tables under the large-table cutoff (1 MB by
default) are skipped: they are de-facto hot and always shipped whole.

Profiling is streaming at heart: a :class:`ProfileAccumulator` folds one
chunk of sampled lookups at a time into running per-table bincounts, so
the profile of a terabyte-scale source is built at the memory cost of
one chunk.  The whole-log :meth:`EmbeddingLogger.profile` and the
chunked :meth:`EmbeddingLogger.profile_source` produce identical
profiles for the same sampled positions.

Chunks are also *independent*, and integer bincounts merge associatively
and commutatively — so :meth:`EmbeddingLogger.profile_source_parallel`
fans the per-chunk counting out across an elastic worker pool
(:class:`~repro.resilience.elastic.WorkerPool`) and folds the partial
counts back in canonical chunk order.  Exact integer sums in a fixed
order mean the parallel profile is *byte-identical* to the sequential
one, no matter which workers ran which chunks, in what order they
finished, or how many died and were re-dispatched along the way.
"""

from __future__ import annotations

import numpy as np

from repro.core.access_profile import AccessProfile, TableProfile
from repro.core.config import FAEConfig
from repro.data.chunk_source import ChunkSource, ShardChunkSource
from repro.data.log import ClickLog
from repro.data.schema import DatasetSchema
from repro.data.synthetic import SyntheticClickLog
from repro.obs import timed
from repro.resilience.elastic import WorkerPool

__all__ = [
    "EmbeddingLogger",
    "PROFILE_TASK_KIND",
    "ProfileAccumulator",
]

#: Elastic-pool task kind for one chunk's access counting.
PROFILE_TASK_KIND = "repro.core.embedding_logger:_profile_chunk_counts"


def _profile_chunk_counts(payload: dict) -> dict:
    """Elastic-pool task: compact access counts for one chunk's samples.

    Two payload shapes: an *inline* payload carries the sampled sparse
    ids directly (``tables`` maps name -> ids array); a *shard* payload
    carries a shard path plus local sample positions, and the worker does
    the shard I/O itself (the point of fanning out).  Either way the
    result is ``{name: (unique_ids, counts)}`` — equivalent to the
    chunk's bincount, but compact enough to ship back over a queue.

    Tasks are pure: re-executing one (after a worker death or for
    speculation) recomputes exactly the same counts.
    """
    shard = payload.get("shard")
    if shard is not None:
        local = np.asarray(payload["local_indices"], dtype=np.int64)
        with np.load(shard, allow_pickle=False) as archive:
            tables = {
                name: archive[f"sparse_{name}"][local] for name in payload["tables"]
            }
        num_sampled = int(local.size)
    else:
        tables = payload["tables"]
        num_sampled = int(payload["num_sampled"])
    out = {}
    for name, ids in tables.items():
        unique, counts = np.unique(
            np.asarray(ids, dtype=np.int64).ravel(), return_counts=True
        )
        out[name] = (unique, counts.astype(np.int64))
    return {
        "tables": out,
        "num_sampled": num_sampled,
        "chunk_len": int(payload["chunk_len"]),
    }


class ProfileAccumulator:
    """Streaming access-count accumulation over chunked sampled inputs.

    Args:
        schema: dataset geometry.
        large_table_min_bytes: cutoff below which tables are skipped.

    Feed chunks with :meth:`update`; :meth:`finalize` yields the
    :class:`AccessProfile`.  Memory is one int64 count vector per large
    table — independent of how many inputs stream through.
    """

    def __init__(self, schema: DatasetSchema, large_table_min_bytes: int) -> None:
        self.schema = schema
        self.num_sampled = 0
        self.num_observed = 0
        self._profiles = {
            spec.name: TableProfile(
                name=spec.name,
                counts=np.zeros(spec.num_rows, dtype=np.int64),
                dim=spec.dim,
            )
            for spec in schema.large_tables(large_table_min_bytes)
        }

    @property
    def num_tables(self) -> int:
        return len(self._profiles)

    @property
    def table_names(self) -> list[str]:
        """Profiled (large) table names."""
        return list(self._profiles)

    def absorb_partial(self, partial: dict) -> None:
        """Merge one worker-computed partial (see ``_profile_chunk_counts``).

        Scatter-adding a chunk's ``(unique_ids, counts)`` pairs is the
        same integer arithmetic as :meth:`update`'s bincount, so feeding
        partials in canonical chunk order reproduces the sequential
        accumulator bit for bit.
        """
        self.num_observed += int(partial["chunk_len"])
        num_sampled = int(partial["num_sampled"])
        if num_sampled == 0:
            return
        self.num_sampled += num_sampled
        for name, (ids, counts) in partial["tables"].items():
            self._profiles[name].counts[ids] += counts

    def update(
        self,
        chunk: ClickLog,
        local_indices: np.ndarray,
        count_observed: bool = True,
    ) -> None:
        """Fold one chunk's sampled rows into the running counts.

        Args:
            chunk: the chunk being profiled.
            local_indices: sampled positions *within* the chunk.
            count_observed: whether ``len(chunk)`` joins the observed
                total (False when re-feeding an already-seen chunk, e.g.
                the keep-at-least-one fallback for empty Bernoulli runs).
        """
        local_indices = np.asarray(local_indices, dtype=np.int64)
        if count_observed:
            self.num_observed += len(chunk)
        if local_indices.size == 0:
            return
        self.num_sampled += int(local_indices.size)
        for name, profile in self._profiles.items():
            profile.accumulate(chunk.sparse[name][local_indices])

    def finalize(self, num_total_inputs: int | None = None) -> AccessProfile:
        """The accumulated profile.

        Args:
            num_total_inputs: full input-set size; defaults to the
                number of rows observed via :meth:`update`.

        Raises:
            ValueError: if no inputs were sampled.
        """
        if self.num_sampled == 0:
            raise ValueError("no inputs were sampled; cannot build an access profile")
        return AccessProfile(
            schema=self.schema,
            tables=self._profiles,
            num_sampled_inputs=self.num_sampled,
            num_total_inputs=(
                self.num_observed if num_total_inputs is None else num_total_inputs
            ),
        )


class EmbeddingLogger:
    """Builds sampled access profiles over a click log.

    Args:
        config: FAE configuration (controls the large-table cutoff).
    """

    def __init__(self, config: FAEConfig) -> None:
        self.config = config
        self.last_elapsed_seconds = 0.0

    def accumulator(self, schema: DatasetSchema) -> ProfileAccumulator:
        """A fresh accumulator under this logger's large-table cutoff."""
        return ProfileAccumulator(schema, self.config.large_table_min_bytes)

    def profile(self, log: SyntheticClickLog, sample_indices: np.ndarray) -> AccessProfile:
        """Count accesses for the sampled inputs.

        Args:
            log: the click log being profiled.
            sample_indices: input positions selected by the sampler (pass
                ``np.arange(len(log))`` for the naive full profile).

        Returns:
            An :class:`AccessProfile` covering the large tables.
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if sample_indices.size == 0:
            raise ValueError("sample_indices must be non-empty")

        with timed("calibrate.profile", num_sampled=int(sample_indices.shape[0])) as timer:
            tables: dict[str, TableProfile] = {}
            for spec in log.schema.large_tables(self.config.large_table_min_bytes):
                counts = log.access_counts(spec.name, sample_indices)
                tables[spec.name] = TableProfile(name=spec.name, counts=counts, dim=spec.dim)
            timer.set(num_tables=len(tables))

        # Thin alias over the span's wall time; kept for older callers.
        self.last_elapsed_seconds = timer.seconds
        return AccessProfile(
            schema=log.schema,
            tables=tables,
            num_sampled_inputs=int(sample_indices.shape[0]),
            num_total_inputs=len(log),
        )

    def profile_source(
        self, source: ChunkSource, sample_indices: np.ndarray
    ) -> AccessProfile:
        """Chunked equivalent of :meth:`profile` over a sized source.

        Each chunk selects its slice of the (sorted) sampled positions
        via ``searchsorted`` and folds the corresponding lookups into a
        :class:`ProfileAccumulator`; per-table sums of per-chunk
        bincounts equal the whole-log bincount, so the resulting profile
        is identical to :meth:`profile` over the materialized log.
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if sample_indices.size == 0:
            raise ValueError("sample_indices must be non-empty")

        with timed("calibrate.profile", num_sampled=int(sample_indices.shape[0])) as timer:
            accumulator = self.accumulator(source.schema)
            num_chunks = 0
            for start, chunk in source:
                lo = np.searchsorted(sample_indices, start)
                hi = np.searchsorted(sample_indices, start + len(chunk))
                accumulator.update(chunk, sample_indices[lo:hi] - start)
                num_chunks += 1
            timer.set(num_tables=accumulator.num_tables, num_chunks=num_chunks)

        self.last_elapsed_seconds = timer.seconds
        return accumulator.finalize(num_total_inputs=source.num_samples)

    def profile_source_parallel(
        self, source: ChunkSource, sample_indices: np.ndarray, pool: WorkerPool
    ) -> AccessProfile:
        """Parallel :meth:`profile_source` over an elastic worker pool.

        One task per chunk.  For a :class:`ShardChunkSource` the task
        payload is a shard *reference* (path + local sample positions)
        and workers do the shard I/O; for any other source the parent
        slices the sampled ids and ships them.  Partial counts are merged
        in canonical chunk order — exact integer sums, so the result is
        byte-identical to the sequential pass regardless of completion
        order, speculation, or worker deaths (see tests/test_elastic.py).

        Raises:
            TaskQuarantinedError: when a chunk's task was quarantined as
                poison — a profile missing a chunk would silently skew
                the plan, so the run fails instead.
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if sample_indices.size == 0:
            raise ValueError("sample_indices must be non-empty")

        with timed(
            "calibrate.profile",
            num_sampled=int(sample_indices.shape[0]),
            workers=pool.config.workers,
        ) as timer:
            accumulator = self.accumulator(source.schema)
            names = accumulator.table_names
            payloads: list[dict] = []
            if isinstance(source, ShardChunkSource):
                for path, start, count in source.shard_refs():
                    lo = np.searchsorted(sample_indices, start)
                    hi = np.searchsorted(sample_indices, start + count)
                    payloads.append(
                        {
                            "shard": path,
                            "tables": names,
                            "local_indices": sample_indices[lo:hi] - start,
                            "chunk_len": count,
                        }
                    )
            else:
                for start, chunk in source:
                    lo = np.searchsorted(sample_indices, start)
                    hi = np.searchsorted(sample_indices, start + len(chunk))
                    local = sample_indices[lo:hi] - start
                    payloads.append(
                        {
                            "tables": {name: chunk.sparse[name][local] for name in names},
                            "num_sampled": int(local.size),
                            "chunk_len": len(chunk),
                        }
                    )
            results = pool.run(PROFILE_TASK_KIND, payloads)
            for index in range(len(payloads)):
                accumulator.absorb_partial(results[index])
            timer.set(num_tables=accumulator.num_tables, num_chunks=len(payloads))

        self.last_elapsed_seconds = timer.seconds
        return accumulator.finalize(num_total_inputs=source.num_samples)
