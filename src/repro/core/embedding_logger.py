"""Embedding Logger (paper SS III-A.2).

Counts accesses into each entry of each *large* embedding table for the
sampled inputs, producing the :class:`~repro.core.access_profile.AccessProfile`
every later stage consumes.  Tables under the large-table cutoff (1 MB by
default) are skipped: they are de-facto hot and always shipped whole.
"""

from __future__ import annotations

import numpy as np

from repro.core.access_profile import AccessProfile, TableProfile
from repro.core.config import FAEConfig
from repro.data.synthetic import SyntheticClickLog
from repro.obs import timed

__all__ = ["EmbeddingLogger"]


class EmbeddingLogger:
    """Builds sampled access profiles over a click log.

    Args:
        config: FAE configuration (controls the large-table cutoff).
    """

    def __init__(self, config: FAEConfig) -> None:
        self.config = config
        self.last_elapsed_seconds = 0.0

    def profile(self, log: SyntheticClickLog, sample_indices: np.ndarray) -> AccessProfile:
        """Count accesses for the sampled inputs.

        Args:
            log: the click log being profiled.
            sample_indices: input positions selected by the sampler (pass
                ``np.arange(len(log))`` for the naive full profile).

        Returns:
            An :class:`AccessProfile` covering the large tables.
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if sample_indices.size == 0:
            raise ValueError("sample_indices must be non-empty")

        with timed("calibrate.profile", num_sampled=int(sample_indices.shape[0])) as timer:
            tables: dict[str, TableProfile] = {}
            for spec in log.schema.large_tables(self.config.large_table_min_bytes):
                counts = log.access_counts(spec.name, sample_indices)
                tables[spec.name] = TableProfile(name=spec.name, counts=counts, dim=spec.dim)
            timer.set(num_tables=len(tables))

        # Thin alias over the span's wall time; kept for older callers.
        self.last_elapsed_seconds = timer.seconds
        return AccessProfile(
            schema=log.schema,
            tables=tables,
            num_sampled_inputs=int(sample_indices.shape[0]),
            num_total_inputs=len(log),
        )
