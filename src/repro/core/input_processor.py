"""Input Processor (paper SS III-B): hot/cold input split and batch packing.

A sparse input is *hot* iff **every** lookup it performs — across all
tables and all multiplicities — hits a hot embedding row; otherwise it is
cold.  Mini-batches must be *pure*: a single cold input inside a batch
would stall the whole batch on a CPU fetch (paper Fig 4 quantifies how
fast the all-hot probability collapses under naive batching), so the
processor packs hot and cold inputs into separate mini-batch streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classifier import HotEmbeddingBagSpec
from repro.data.synthetic import SyntheticClickLog
from repro.obs import get_registry, span, timed

__all__ = ["FAEDataset", "InputProcessor", "all_hot_batch_probability"]


def all_hot_batch_probability(hot_input_fraction: float, batch_size: int) -> float:
    """P(an entire random mini-batch is hot) under naive batching (Fig 4).

    With i.i.d. inputs of which a fraction ``p`` are hot, a random batch
    of ``B`` inputs is all-hot with probability ``p**B`` — which collapses
    for large ``B`` even at ``p = 0.99``, motivating explicit packing.
    """
    if not 0 <= hot_input_fraction <= 1:
        raise ValueError(f"hot_input_fraction must be in [0, 1], got {hot_input_fraction}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    return float(hot_input_fraction**batch_size)


@dataclass
class FAEDataset:
    """A click log pre-packed into pure-hot and pure-cold mini-batches.

    Attributes:
        hot_batches: list of int64 index arrays, each a pure-hot batch.
        cold_batches: list of int64 index arrays, each a pure-cold batch.
        hot_mask: per-input hotness over the full log.
        batch_size: packing batch size.
    """

    hot_batches: list[np.ndarray]
    cold_batches: list[np.ndarray]
    hot_mask: np.ndarray
    batch_size: int

    @property
    def num_hot_inputs(self) -> int:
        return int(np.count_nonzero(self.hot_mask))

    @property
    def num_inputs(self) -> int:
        return int(self.hot_mask.shape[0])

    @property
    def hot_input_fraction(self) -> float:
        return self.num_hot_inputs / self.num_inputs if self.num_inputs else 0.0

    def batch_counts(self) -> tuple[int, int]:
        return len(self.hot_batches), len(self.cold_batches)


class InputProcessor:
    """Classifies inputs against hot bags and packs pure mini-batches.

    Args:
        bags: hot bag specs from the :class:`EmbeddingClassifier`.
        seed: shuffle seed for batch packing.
    """

    def __init__(self, bags: dict[str, HotEmbeddingBagSpec], seed: int = 0) -> None:
        self.bags = bags
        self.seed = seed
        self.last_classify_seconds = 0.0
        self._masks = {name: bag.hot_mask() for name, bag in bags.items()}

    def classify_inputs(self, log: SyntheticClickLog) -> np.ndarray:
        """Boolean hot mask over the log's inputs.

        One vectorized pass per table: an input stays hot while every id
        it looks up is in that table's hot bag.
        """
        with timed("classify", num_inputs=len(log)) as timer:
            hot = np.ones(len(log), dtype=bool)
            for name, ids in log.sparse.items():
                bag = self.bags.get(name)
                if bag is None:
                    raise KeyError(f"no hot bag for table {name!r}")
                if bag.whole_table:
                    continue
                hot &= self._masks[name][ids].all(axis=1)
            hot_count = int(np.count_nonzero(hot))
            timer.set(num_hot=hot_count)
        # Thin alias over the span's wall time; kept for older callers.
        self.last_classify_seconds = timer.seconds
        registry = get_registry()
        registry.counter("classify.inputs").inc(len(log))
        registry.counter("classify.hot_inputs").inc(hot_count)
        if len(log):
            registry.gauge("train.batch.hot_fraction").set(hot_count / len(log))
        return hot

    def pack(
        self,
        log: SyntheticClickLog,
        batch_size: int,
        drop_last: bool = False,
        shuffle: bool = True,
    ) -> FAEDataset:
        """Classify and pack ``log`` into pure hot/cold mini-batches.

        Args:
            log: the training inputs.
            batch_size: samples per mini-batch.
            drop_last: drop trailing short batches from each stream.
            shuffle: shuffle within each stream before chunking.

        Returns:
            The packed :class:`FAEDataset` (persist it with
            :func:`repro.core.fae_format.save_fae_dataset`).
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        with span("classify.pack", batch_size=batch_size) as pack_span:
            hot_mask = self.classify_inputs(log)
            rng = np.random.default_rng(self.seed)

            def chunk(indices: np.ndarray) -> list[np.ndarray]:
                if shuffle:
                    rng.shuffle(indices)
                stop = (len(indices) // batch_size) * batch_size if drop_last else len(indices)
                return [
                    indices[start : start + batch_size]
                    for start in range(0, stop, batch_size)
                    if len(indices[start : start + batch_size]) > 0
                ]

            hot_indices = np.flatnonzero(hot_mask).astype(np.int64)
            cold_indices = np.flatnonzero(~hot_mask).astype(np.int64)
            dataset = FAEDataset(
                hot_batches=chunk(hot_indices),
                cold_batches=chunk(cold_indices),
                hot_mask=hot_mask,
                batch_size=batch_size,
            )
            pack_span.set(
                num_hot_batches=len(dataset.hot_batches),
                num_cold_batches=len(dataset.cold_batches),
            )
        return dataset
