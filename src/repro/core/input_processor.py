"""Input Processor (paper SS III-B): hot/cold input split and batch packing.

A sparse input is *hot* iff **every** lookup it performs — across all
tables and all multiplicities — hits a hot embedding row; otherwise it is
cold.  Mini-batches must be *pure*: a single cold input inside a batch
would stall the whole batch on a CPU fetch (paper Fig 4 quantifies how
fast the all-hot probability collapses under naive batching), so the
processor packs hot and cold inputs into separate mini-batch streams.

Packing is streaming: :meth:`InputProcessor.classify_and_pack_stream`
classifies one chunk at a time and accumulates only *index* arrays (8
bytes per input), never the feature columns, so packing a source never
materializes the log.  The whole-log :meth:`InputProcessor.pack` is a
thin wrapper over a single-chunk source and produces byte-identical
batches for the same seed regardless of chunking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classifier import HotEmbeddingBagSpec
from repro.data.chunk_source import ChunkSource, LogChunkSource
from repro.data.synthetic import SyntheticClickLog
from repro.obs import get_registry, span, timed

__all__ = [
    "FAEDataset",
    "InputProcessor",
    "all_hot_batch_probability",
    "compute_hot_mask",
]


def all_hot_batch_probability(hot_input_fraction: float, batch_size: int) -> float:
    """P(an entire random mini-batch is hot) under naive batching (Fig 4).

    With i.i.d. inputs of which a fraction ``p`` are hot, a random batch
    of ``B`` inputs is all-hot with probability ``p**B`` — which collapses
    for large ``B`` even at ``p = 0.99``, motivating explicit packing.
    """
    if not 0 <= hot_input_fraction <= 1:
        raise ValueError(f"hot_input_fraction must be in [0, 1], got {hot_input_fraction}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    return float(hot_input_fraction**batch_size)


def compute_hot_mask(
    sparse: dict[str, np.ndarray],
    bags: dict[str, HotEmbeddingBagSpec],
    masks: dict[str, np.ndarray],
    num_inputs: int,
) -> np.ndarray:
    """Boolean hot mask over ``num_inputs`` rows of sparse lookups.

    One vectorized pass per table: an input stays hot while every id it
    looks up is in that table's hot bag.  Shared by the input processor
    and the streaming packer.

    Raises:
        KeyError: if a sparse table has no corresponding hot bag.
    """
    hot = np.ones(num_inputs, dtype=bool)
    for name, ids in sparse.items():
        bag = bags.get(name)
        if bag is None:
            raise KeyError(f"no hot bag for table {name!r}")
        if bag.whole_table:
            continue
        hot &= masks[name][ids].all(axis=1)
    return hot


@dataclass
class FAEDataset:
    """A click log pre-packed into pure-hot and pure-cold mini-batches.

    Attributes:
        hot_batches: int64 index arrays, each a pure-hot batch.  Either a
            plain list or a lazy shard-backed sequence (see
            :class:`repro.core.fae_format.ShardBatchSequence`); both
            support ``len()``, indexing, slicing, and iteration.
        cold_batches: same, for pure-cold batches.
        hot_mask: per-input hotness over the full log.
        batch_size: packing batch size.
    """

    hot_batches: list[np.ndarray]
    cold_batches: list[np.ndarray]
    hot_mask: np.ndarray
    batch_size: int

    @property
    def num_hot_inputs(self) -> int:
        return int(np.count_nonzero(self.hot_mask))

    @property
    def num_inputs(self) -> int:
        return int(self.hot_mask.shape[0])

    @property
    def hot_input_fraction(self) -> float:
        return self.num_hot_inputs / self.num_inputs if self.num_inputs else 0.0

    def batch_counts(self) -> tuple[int, int]:
        return len(self.hot_batches), len(self.cold_batches)

    def state_dict(self) -> dict:
        """Exact batch geometry for checkpointing (schema-versioned).

        Cache turnover re-packs the remaining batches mid-epoch, so a
        checkpoint taken after a refresh must carry the repacked geometry
        — cursors and scheduler pools are meaningless against the
        original packing.  Batches are stored as one concatenated index
        stream plus per-batch lengths (ragged tails are preserved).
        """
        hot = [np.asarray(batch, dtype=np.int64) for batch in self.hot_batches]
        cold = [np.asarray(batch, dtype=np.int64) for batch in self.cold_batches]
        return {
            "schema_version": 1,
            "batch_size": int(self.batch_size),
            "hot_indices": np.concatenate(hot) if hot else np.zeros(0, np.int64),
            "hot_lengths": np.array([b.size for b in hot], dtype=np.int64),
            "cold_indices": np.concatenate(cold) if cold else np.zeros(0, np.int64),
            "cold_lengths": np.array([b.size for b in cold], dtype=np.int64),
            "hot_mask": np.asarray(self.hot_mask, dtype=bool),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "FAEDataset":
        """Rebuild the exact dataset a :meth:`state_dict` captured.

        Raises:
            ValueError: on schema-version mismatch.
        """
        version = state.get("schema_version")
        if version != 1:
            raise ValueError(f"dataset state schema_version {version} != 1")

        def _split(indices: np.ndarray, lengths: np.ndarray) -> list[np.ndarray]:
            indices = np.asarray(indices, dtype=np.int64)
            bounds = np.cumsum(np.asarray(lengths, dtype=np.int64))[:-1]
            return [chunk.copy() for chunk in np.split(indices, bounds)] if len(
                lengths
            ) else []

        return cls(
            hot_batches=_split(state["hot_indices"], state["hot_lengths"]),
            cold_batches=_split(state["cold_indices"], state["cold_lengths"]),
            hot_mask=np.asarray(state["hot_mask"], dtype=bool).copy(),
            batch_size=int(state["batch_size"]),
        )


def _cut_batches(indices: np.ndarray, batch_size: int, drop_last: bool) -> list[np.ndarray]:
    """Slice an index stream into consecutive batches (each computed once)."""
    stop = (len(indices) // batch_size) * batch_size if drop_last else len(indices)
    return [indices[start : start + batch_size] for start in range(0, stop, batch_size)]


class InputProcessor:
    """Classifies inputs against hot bags and packs pure mini-batches.

    Args:
        bags: hot bag specs from the :class:`EmbeddingClassifier`.
        seed: shuffle seed for batch packing.
    """

    def __init__(self, bags: dict[str, HotEmbeddingBagSpec], seed: int = 0) -> None:
        self.bags = bags
        self.seed = seed
        self.last_classify_seconds = 0.0
        self._masks = {name: bag.hot_mask() for name, bag in bags.items()}

    def classify_inputs(self, log: SyntheticClickLog) -> np.ndarray:
        """Boolean hot mask over the log's inputs."""
        with timed("classify", num_inputs=len(log)) as timer:
            hot = compute_hot_mask(log.sparse, self.bags, self._masks, len(log))
            hot_count = int(np.count_nonzero(hot))
            timer.set(num_hot=hot_count)
        # Thin alias over the span's wall time; kept for older callers.
        self.last_classify_seconds = timer.seconds
        registry = get_registry()
        registry.counter("classify.inputs").inc(len(log))
        registry.counter("classify.hot_inputs").inc(hot_count)
        if len(log):
            registry.gauge("train.batch.hot_fraction").set(hot_count / len(log))
        return hot

    def pack(
        self,
        log: SyntheticClickLog,
        batch_size: int,
        drop_last: bool = False,
        shuffle: bool = True,
    ) -> FAEDataset:
        """Classify and pack ``log`` into pure hot/cold mini-batches.

        Args:
            log: the training inputs.
            batch_size: samples per mini-batch.
            drop_last: drop trailing short batches from each stream.
            shuffle: shuffle within each stream before chunking.

        Returns:
            The packed :class:`FAEDataset` (persist it with
            :func:`repro.core.fae_format.save_fae_dataset`).
        """
        return self.classify_and_pack_stream(
            LogChunkSource(log),
            batch_size=batch_size,
            drop_last=drop_last,
            shuffle=shuffle,
        )

    def classify_and_pack_stream(
        self,
        source: ChunkSource,
        batch_size: int,
        drop_last: bool = False,
        shuffle: bool = True,
    ) -> FAEDataset:
        """Fused classify+pack over a chunk source (pass 2 of preprocess).

        Each chunk is classified against the hot masks and contributes
        only its hot/cold *global index* arrays to the builders; the
        feature columns are never retained, so memory is bounded by one
        chunk plus 8 bytes per input.  The hot-then-cold shuffle consumes
        one seeded generator exactly like the legacy whole-log pack, so
        batch order is byte-identical for any chunking of the same input.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        with span("classify.pack", batch_size=batch_size) as pack_span:
            mask_parts: list[np.ndarray] = []
            hot_parts: list[np.ndarray] = []
            cold_parts: list[np.ndarray] = []
            classify_seconds = 0.0
            num_inputs = 0
            num_hot = 0
            for start, chunk in source:
                with timed("classify", num_inputs=len(chunk)) as timer:
                    chunk_hot = compute_hot_mask(
                        chunk.sparse, self.bags, self._masks, len(chunk)
                    )
                    chunk_hot_count = int(np.count_nonzero(chunk_hot))
                    timer.set(num_hot=chunk_hot_count)
                classify_seconds += timer.seconds
                mask_parts.append(chunk_hot)
                hot_parts.append((start + np.flatnonzero(chunk_hot)).astype(np.int64))
                cold_parts.append((start + np.flatnonzero(~chunk_hot)).astype(np.int64))
                num_inputs += len(chunk)
                num_hot += chunk_hot_count

            # Thin alias over the classify spans' wall time (summed).
            self.last_classify_seconds = classify_seconds
            registry = get_registry()
            registry.counter("classify.inputs").inc(num_inputs)
            registry.counter("classify.hot_inputs").inc(num_hot)
            if num_inputs:
                registry.gauge("train.batch.hot_fraction").set(num_hot / num_inputs)

            hot_mask = (
                np.concatenate(mask_parts) if mask_parts else np.zeros(0, dtype=bool)
            )
            rng = np.random.default_rng(self.seed)

            def build(parts: list[np.ndarray]) -> list[np.ndarray]:
                indices = (
                    np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
                )
                if shuffle:
                    rng.shuffle(indices)
                return _cut_batches(indices, batch_size, drop_last)

            dataset = FAEDataset(
                hot_batches=build(hot_parts),
                cold_batches=build(cold_parts),
                hot_mask=hot_mask,
                batch_size=batch_size,
            )
            pack_span.set(
                num_hot_batches=len(dataset.hot_batches),
                num_cold_batches=len(dataset.cold_batches),
            )
        return dataset
