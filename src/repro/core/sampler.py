"""Sparse Input Sampler (paper SS III-A.1).

Profiling every input of a 45-80M-sample dataset is the dominant cost of
a naive calibrator.  The sampler instead draws a uniform random x% subset
of input positions; because inputs are i.i.d. draws from the underlying
popularity distribution, the sampled access profile converges to the full
profile (paper Fig 7 shows 5% suffices), at a 19-55x latency saving
(Fig 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import SyntheticClickLog
from repro.obs import timed

__all__ = ["SparseInputSampler", "SampleResult"]


@dataclass(frozen=True)
class SampleResult:
    """Outcome of one sampling pass.

    Attributes:
        indices: sorted int64 positions of the sampled inputs.
        num_total_inputs: size of the full input set.
        elapsed_seconds: wall time of the sampling pass itself.
    """

    indices: np.ndarray
    num_total_inputs: int
    elapsed_seconds: float

    @property
    def num_sampled(self) -> int:
        return int(self.indices.shape[0])

    @property
    def rate(self) -> float:
        return self.num_sampled / self.num_total_inputs


class SparseInputSampler:
    """Uniform random sampler over input positions.

    Args:
        sample_rate: fraction ``x`` of inputs to keep, in ``(0, 1]``.
        seed: sampling seed.
    """

    def __init__(self, sample_rate: float, seed: int = 0) -> None:
        if not 0 < sample_rate <= 1:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.seed = seed

    def sample(self, log: SyntheticClickLog) -> SampleResult:
        """Draw the sample from ``log``.

        At least one input is always kept so downstream stages never see
        an empty profile.
        """
        with timed("calibrate.sample", rate=self.sample_rate) as timer:
            total = len(log)
            keep = max(1, int(round(total * self.sample_rate)))
            rng = np.random.default_rng(self.seed)
            indices = np.sort(rng.choice(total, size=keep, replace=False)).astype(np.int64)
            timer.set(num_sampled=keep, num_total=total)
        return SampleResult(
            indices=indices,
            num_total_inputs=total,
            elapsed_seconds=timer.seconds,
        )

    def sample_all(self, log: SyntheticClickLog) -> SampleResult:
        """The naive full-dataset "sample" (baseline for Fig 8)."""
        with timed("calibrate.sample", rate=1.0, full_profile=True) as timer:
            total = len(log)
            indices = np.arange(total, dtype=np.int64)
            timer.set(num_sampled=total, num_total=total)
        return SampleResult(
            indices=indices,
            num_total_inputs=total,
            elapsed_seconds=timer.seconds,
        )
