"""Sparse Input Sampler (paper SS III-A.1).

Profiling every input of a 45-80M-sample dataset is the dominant cost of
a naive calibrator.  The sampler instead draws a uniform random x% subset
of input positions; because inputs are i.i.d. draws from the underlying
popularity distribution, the sampled access profile converges to the full
profile (paper Fig 7 shows 5% suffices), at a 19-55x latency saving
(Fig 8).

Two sampling modes serve the chunked preprocess pipeline:

- when the source length is known (:meth:`SparseInputSampler.sample` /
  :meth:`~SparseInputSampler.sample_source`), the exact positions are
  pre-drawn once and each chunk selects its slice of them — so the
  sample, and everything downstream, is byte-identical no matter how the
  input is chunked;
- when the length is unknown (a true stream), the sampler hands out a
  :class:`BernoulliSampleStream` drawing per-row keep masks at the
  configured rate, one chunk at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.chunk_source import ChunkSource
from repro.data.synthetic import SyntheticClickLog
from repro.obs import timed

__all__ = ["BernoulliSampleStream", "SparseInputSampler", "SampleResult"]


@dataclass(frozen=True)
class SampleResult:
    """Outcome of one sampling pass.

    Attributes:
        indices: sorted int64 positions of the sampled inputs.
        num_total_inputs: size of the full input set.
        elapsed_seconds: wall time of the sampling pass itself.
    """

    indices: np.ndarray
    num_total_inputs: int
    elapsed_seconds: float

    @property
    def num_sampled(self) -> int:
        return int(self.indices.shape[0])

    @property
    def rate(self) -> float:
        return self.num_sampled / self.num_total_inputs


class BernoulliSampleStream:
    """Per-chunk Bernoulli keep masks for sources of unknown length.

    Draws are consumed sequentially from one generator, so the kept set
    depends only on row order, not on where chunk boundaries fall.

    Args:
        rate: keep probability per row, in ``(0, 1]``.
        seed: draw seed.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0 < rate <= 1:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = rate
        self.observed = 0
        self.sampled = 0
        self._rng = np.random.default_rng(seed)

    def draw(self, n: int) -> np.ndarray:
        """Keep mask for the next ``n`` rows of the stream."""
        mask = self._rng.random(n) < self.rate
        self.observed += int(n)
        self.sampled += int(np.count_nonzero(mask))
        return mask


class SparseInputSampler:
    """Uniform random sampler over input positions.

    Args:
        sample_rate: fraction ``x`` of inputs to keep, in ``(0, 1]``.
        seed: sampling seed.
    """

    def __init__(self, sample_rate: float, seed: int = 0) -> None:
        if not 0 < sample_rate <= 1:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.seed = seed

    def _sample_total(self, total: int) -> SampleResult:
        """Exact-count draw over ``total`` known positions."""
        with timed("calibrate.sample", rate=self.sample_rate) as timer:
            keep = max(1, int(round(total * self.sample_rate)))
            rng = np.random.default_rng(self.seed)
            indices = np.sort(rng.choice(total, size=keep, replace=False)).astype(np.int64)
            timer.set(num_sampled=keep, num_total=total)
        return SampleResult(
            indices=indices,
            num_total_inputs=total,
            elapsed_seconds=timer.seconds,
        )

    def sample(self, log: SyntheticClickLog) -> SampleResult:
        """Draw the sample from ``log``.

        At least one input is always kept so downstream stages never see
        an empty profile.
        """
        return self._sample_total(len(log))

    def sample_source(self, source: ChunkSource) -> SampleResult:
        """Draw the sample for a sized chunk source.

        The positions are identical to :meth:`sample` over the
        materialized equivalent — chunking never changes the sample.

        Raises:
            ValueError: if the source length is unknown (use
                :meth:`bernoulli_stream` for those).
        """
        total = source.num_samples
        if total is None:
            raise ValueError(
                "source length unknown; use bernoulli_stream() for unsized sources"
            )
        return self._sample_total(total)

    def bernoulli_stream(self, full_profile: bool = False) -> BernoulliSampleStream:
        """Streaming keep-mask sampler for sources of unknown length."""
        rate = 1.0 if full_profile else self.sample_rate
        return BernoulliSampleStream(rate, seed=self.seed)

    def sample_all(self, log: SyntheticClickLog) -> SampleResult:
        """The naive full-dataset "sample" (baseline for Fig 8)."""
        return self._sample_all_total(len(log))

    def sample_all_source(self, source: ChunkSource) -> SampleResult:
        """Full "sample" over a sized chunk source (Fig 8 baseline)."""
        total = source.num_samples
        if total is None:
            raise ValueError(
                "source length unknown; use bernoulli_stream(full_profile=True)"
            )
        return self._sample_all_total(total)

    def _sample_all_total(self, total: int) -> SampleResult:
        with timed("calibrate.sample", rate=1.0, full_profile=True) as timer:
            indices = np.arange(total, dtype=np.int64)
            timer.set(num_sampled=total, num_total=total)
        return SampleResult(
            indices=indices,
            num_total_inputs=total,
            elapsed_seconds=timer.seconds,
        )
