"""End-to-end FAE static preprocessing (paper Fig 5, left half).

:func:`fae_preprocess` chains Calibrator -> Embedding Classifier ->
Input Processor into a single call returning a :class:`FAEPlan`: the
access threshold, the hot bags, the packed hot/cold mini-batches, and
profiling/latency telemetry.  Training code (and the benchmarks) start
from the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.calibrator import Calibrator, CalibratorOutput
from repro.core.classifier import EmbeddingClassifier, HotEmbeddingBagSpec
from repro.core.config import FAEConfig
from repro.core.fae_format import save_fae_dataset
from repro.core.input_processor import FAEDataset, InputProcessor
from repro.data.synthetic import SyntheticClickLog
from repro.obs import span

__all__ = ["FAEPlan", "fae_preprocess"]


@dataclass(frozen=True)
class FAEPlan:
    """Everything the FAE runtime needs, produced once per dataset.

    Attributes:
        config: the configuration the plan was built under.
        calibration: calibrator telemetry (profile, threshold search).
        bags: hot bag specs per table.
        dataset: packed pure-hot / pure-cold mini-batches.
        classify_seconds: input-processor classification wall time.
    """

    config: FAEConfig
    calibration: CalibratorOutput
    bags: dict[str, HotEmbeddingBagSpec]
    dataset: FAEDataset
    classify_seconds: float

    @property
    def threshold(self) -> float:
        return self.calibration.threshold

    @property
    def hot_bytes(self) -> int:
        return EmbeddingClassifier.total_hot_bytes(self.bags)

    @property
    def hot_input_fraction(self) -> float:
        return self.dataset.hot_input_fraction

    def save(self, path: str | Path) -> None:
        """Persist the packed dataset + bags in the FAE format."""
        save_fae_dataset(path, self.dataset, self.bags, self.threshold)

    def summary(self) -> str:
        """Human-readable plan overview (examples print this)."""
        hot_mib = self.hot_bytes / 2**20
        total_mib = self.calibration.profile.schema.total_embedding_bytes / 2**20
        num_hot, num_cold = self.dataset.batch_counts()
        return (
            f"threshold={self.threshold:g}  hot embeddings {hot_mib:.1f} MiB "
            f"(of {total_mib:.1f} MiB)  hot inputs "
            f"{100 * self.hot_input_fraction:.1f}%  batches: {num_hot} hot / {num_cold} cold"
        )


def fae_preprocess(
    log: SyntheticClickLog,
    config: FAEConfig | None = None,
    batch_size: int = 1024,
    drop_last: bool = False,
    allocation: str = "threshold",
) -> FAEPlan:
    """Run the complete static FAE pipeline over a click log.

    Args:
        log: training inputs.
        config: FAE knobs; defaults to the paper's settings.
        batch_size: mini-batch size to pack (weak-scaled by caller).
        drop_last: drop trailing short batches.
        allocation: how the GPU budget is split across tables —
            ``"threshold"`` is the paper's global access threshold;
            ``"greedy-product"`` optimizes the hot-input product directly
            (see :mod:`repro.core.allocation`), which pays off on
            sequence workloads with uneven lookup multiplicities.

    Returns:
        The preprocessing plan (persist with :meth:`FAEPlan.save`).

    Raises:
        ValueError: on an unknown allocation policy.
    """
    config = config or FAEConfig()
    with span("preprocess", num_inputs=len(log), allocation=allocation):
        calibration = Calibrator(config).calibrate(log)
        if allocation == "threshold":
            bags = EmbeddingClassifier(config).classify(
                calibration.profile, calibration.threshold
            )
        elif allocation == "greedy-product":
            from repro.core.allocation import greedy_product_allocation

            result = greedy_product_allocation(
                calibration.profile, config.gpu_memory_budget
            )
            bags = result.to_bag_specs(calibration.profile)
        else:
            raise ValueError(
                f"unknown allocation {allocation!r}; expected threshold|greedy-product"
            )
        processor = InputProcessor(bags, seed=config.seed)
        dataset = processor.pack(log, batch_size=batch_size, drop_last=drop_last)
    return FAEPlan(
        config=config,
        calibration=calibration,
        bags=bags,
        dataset=dataset,
        classify_seconds=processor.last_classify_seconds,
    )
