"""End-to-end FAE static preprocessing (paper Fig 5, left half).

:func:`fae_preprocess_source` is the real pipeline: a thin two-pass
orchestration over a :class:`~repro.data.chunk_source.ChunkSource` —
pass 1 samples, profiles, and calibrates the access threshold; pass 2
classifies each chunk and packs pure hot/cold mini-batches.  Neither
pass materializes the source, so preprocess memory is bounded by one
chunk (plus 8 bytes of packed index per input).

:func:`fae_preprocess` wraps an in-memory log in a chunk source and
delegates; for the same seed the output is byte-identical regardless of
``chunk_size`` (including the legacy whole-log-at-once default).  Both
return a :class:`FAEPlan`: the access threshold, the hot bags, the
packed hot/cold mini-batches, and profiling/latency telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.calibrator import Calibrator, CalibratorOutput
from repro.core.classifier import EmbeddingClassifier, HotEmbeddingBagSpec
from repro.core.config import FAEConfig
from repro.core.fae_format import save_fae_dataset, save_fae_dataset_sharded
from repro.core.input_processor import FAEDataset, InputProcessor
from repro.data.chunk_source import ChunkSource, as_chunk_source
from repro.data.synthetic import SyntheticClickLog
from repro.obs import span

__all__ = ["FAEPlan", "fae_preprocess", "fae_preprocess_source"]


@dataclass(frozen=True)
class FAEPlan:
    """Everything the FAE runtime needs, produced once per dataset.

    Attributes:
        config: the configuration the plan was built under.
        calibration: calibrator telemetry (profile, threshold search).
        bags: hot bag specs per table.
        dataset: packed pure-hot / pure-cold mini-batches.
        classify_seconds: input-processor classification wall time.
    """

    config: FAEConfig
    calibration: CalibratorOutput
    bags: dict[str, HotEmbeddingBagSpec]
    dataset: FAEDataset
    classify_seconds: float

    @property
    def threshold(self) -> float:
        return self.calibration.threshold

    @property
    def hot_bytes(self) -> int:
        return EmbeddingClassifier.total_hot_bytes(self.bags)

    @property
    def hot_input_fraction(self) -> float:
        return self.dataset.hot_input_fraction

    def save(self, path: str | Path, shard_size: int | None = None) -> None:
        """Persist the packed dataset + bags in the FAE format.

        Args:
            path: destination — a ``.npz`` file for the flat layout, or
                a directory when ``shard_size`` is given.
            shard_size: batches per shard; None keeps the flat
                single-archive layout.
        """
        if shard_size is None:
            save_fae_dataset(path, self.dataset, self.bags, self.threshold)
        else:
            save_fae_dataset_sharded(
                path, self.dataset, self.bags, self.threshold, shard_size=shard_size
            )

    def summary(self) -> str:
        """Human-readable plan overview (examples print this)."""
        hot_mib = self.hot_bytes / 2**20
        total_mib = self.calibration.profile.schema.total_embedding_bytes / 2**20
        num_hot, num_cold = self.dataset.batch_counts()
        return (
            f"threshold={self.threshold:g}  hot embeddings {hot_mib:.1f} MiB "
            f"(of {total_mib:.1f} MiB)  hot inputs "
            f"{100 * self.hot_input_fraction:.1f}%  batches: {num_hot} hot / {num_cold} cold"
        )


def fae_preprocess_source(
    source: ChunkSource,
    config: FAEConfig | None = None,
    batch_size: int = 1024,
    drop_last: bool = False,
    allocation: str = "threshold",
    pool=None,
) -> FAEPlan:
    """Run the complete static FAE pipeline over a chunk source.

    Two passes: (1) sample + profile + calibrate the threshold; (2)
    classify each chunk and pack pure mini-batches.  Memory stays
    bounded by one chunk regardless of source length.

    Args:
        source: chunked training inputs (anything
            :func:`~repro.data.chunk_source.as_chunk_source` accepts).
        config: FAE knobs; defaults to the paper's settings.
        batch_size: mini-batch size to pack (weak-scaled by caller).
        drop_last: drop trailing short batches.
        allocation: how the GPU budget is split across tables —
            ``"threshold"`` is the paper's global access threshold;
            ``"greedy-product"`` optimizes the hot-input product directly
            (see :mod:`repro.core.allocation`), which pays off on
            sequence workloads with uneven lookup multiplicities.
        pool: optional :class:`~repro.resilience.elastic.WorkerPool` to
            fan the profiling pass out across worker processes; the plan
            stays byte-identical to the single-process run.

    Returns:
        The preprocessing plan (persist with :meth:`FAEPlan.save`).

    Raises:
        ValueError: on an unknown allocation policy.
    """
    config = config or FAEConfig()
    source = as_chunk_source(source)
    num_samples = source.num_samples
    with span(
        "preprocess",
        num_inputs=(-1 if num_samples is None else num_samples),
        allocation=allocation,
        chunk_size=source.chunk_size,
    ):
        calibration = Calibrator(config).calibrate_source(source, pool=pool)
        if allocation == "threshold":
            bags = EmbeddingClassifier(config).classify(
                calibration.profile, calibration.threshold
            )
        elif allocation == "greedy-product":
            from repro.core.allocation import greedy_product_allocation

            result = greedy_product_allocation(
                calibration.profile, config.gpu_memory_budget
            )
            bags = result.to_bag_specs(calibration.profile)
        else:
            raise ValueError(
                f"unknown allocation {allocation!r}; expected threshold|greedy-product"
            )
        processor = InputProcessor(bags, seed=config.seed)
        dataset = processor.classify_and_pack_stream(
            source, batch_size=batch_size, drop_last=drop_last
        )
    return FAEPlan(
        config=config,
        calibration=calibration,
        bags=bags,
        dataset=dataset,
        classify_seconds=processor.last_classify_seconds,
    )


def fae_preprocess(
    log: SyntheticClickLog,
    config: FAEConfig | None = None,
    batch_size: int = 1024,
    drop_last: bool = False,
    allocation: str = "threshold",
    chunk_size: int | None = None,
    pool=None,
) -> FAEPlan:
    """Run the complete static FAE pipeline over an in-memory click log.

    Thin wrapper over :func:`fae_preprocess_source`; ``chunk_size``
    bounds the per-pass working set (None processes the log as a single
    chunk).  The packed output is byte-identical for any chunking of the
    same log and seed — and, with an elastic ``pool``, for any worker
    count or fault schedule too.
    """
    return fae_preprocess_source(
        as_chunk_source(log, chunk_size=chunk_size),
        config=config,
        batch_size=batch_size,
        drop_last=drop_last,
        allocation=allocation,
        pool=pool,
    )
