"""Embedding Replicator (paper SS III-C): hot bags on every GPU.

The replicator extracts each table's hot rows into a compact *hot bag*,
replicates the bags across the GPUs, and keeps the copies consistent:

- within a hot run, data-parallel GPUs all-reduce gradients before the
  optimizer step, so replicas evolve in lock-step;
- at a hot -> cold transition, replica rows are written back into the CPU
  master tables (cold inputs can touch hot rows too);
- at a cold -> hot transition, replicas are refreshed from the masters.

Because lookups arrive with *global* row ids, :class:`HotEmbeddingBag`
remaps them to bag-local positions; this is the drop-in bag the FAE
trainer swaps into the model for hot mini-batches.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import HotEmbeddingBagSpec
from repro.nn.embedding import EmbeddingTable
from repro.nn.parameter import Parameter
from repro.obs import get_registry, span

__all__ = ["HotBag", "HotEmbeddingBag", "EmbeddingReplicator"]


class HotBag:
    """A compact, GPU-resident copy of one table's hot rows.

    Args:
        spec: which rows are hot.
        values: ``(num_hot, dim)`` initial row values (copied).
        replica_id: which GPU this copy lives on (diagnostic).
    """

    def __init__(self, spec: HotEmbeddingBagSpec, values: np.ndarray, replica_id: int = 0) -> None:
        if values.shape != (spec.num_hot, spec.dim):
            raise ValueError(
                f"{spec.table_name}: expected values {(spec.num_hot, spec.dim)}, got {values.shape}"
            )
        self.spec = spec
        self.replica_id = replica_id
        self.weight = Parameter(f"{spec.table_name}.hot[{replica_id}]", values.copy())

    @property
    def nbytes(self) -> int:
        return self.weight.nbytes

    def to_local(self, global_ids: np.ndarray) -> np.ndarray:
        """Map global row ids to bag-local positions.

        Raises:
            KeyError: if any id is not in the hot bag — the input
                processor guarantees hot batches never do this, so a miss
                indicates a misclassified input.
        """
        global_ids = np.asarray(global_ids, dtype=np.int64)
        local = np.searchsorted(self.spec.hot_ids, global_ids)
        in_range = local < self.spec.num_hot
        ok = in_range.copy()
        ok[in_range] = self.spec.hot_ids[local[in_range]] == global_ids[in_range]
        if not ok.all():
            missing = np.unique(global_ids[~ok])[:5]
            raise KeyError(
                f"{self.spec.table_name}: ids {missing.tolist()} are not hot — "
                "a cold input leaked into a hot mini-batch"
            )
        return local

    def contains(self, global_ids: np.ndarray) -> np.ndarray:
        """Vectorized hot-membership test (no exception)."""
        global_ids = np.asarray(global_ids, dtype=np.int64)
        local = np.searchsorted(self.spec.hot_ids, global_ids)
        in_range = local < self.spec.num_hot
        result = in_range.copy()
        result[in_range] = self.spec.hot_ids[local[in_range]] == global_ids[in_range]
        return result


class HotEmbeddingBag:
    """EmbeddingBag-compatible pooled lookup over a :class:`HotBag`.

    Swapping this in for the master-table bag is what moves a table's hot
    execution onto the GPU replica.
    """

    def __init__(self, bag: HotBag, mode: str = "mean") -> None:
        if mode not in ("mean", "sum"):
            raise ValueError(f"mode must be 'mean' or 'sum', got {mode!r}")
        self.bag = bag
        self.mode = mode
        self._local_ids: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.bag.weight]

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim == 1:
            ids = ids[:, None]
        local = self.bag.to_local(ids.ravel()).reshape(ids.shape)
        self._local_ids = local
        gathered = self.bag.weight.value[local]
        if self.mode == "mean":
            return gathered.mean(axis=1)
        return gathered.sum(axis=1)

    def backward(self, grad_out: np.ndarray) -> None:
        if self._local_ids is None:
            raise RuntimeError("backward called before forward")
        local = self._local_ids
        _, multiplicity = local.shape
        scale = 1.0 / multiplicity if self.mode == "mean" else 1.0
        row_grads = np.repeat(grad_out * scale, multiplicity, axis=0).astype(np.float32)
        self.bag.weight.accumulate_sparse(local.ravel(), row_grads)
        self._local_ids = None

    def sequence_forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ValueError("sequence_forward expects (B, m) ids")
        local = self.bag.to_local(ids.ravel()).reshape(ids.shape)
        self._local_ids = local
        return self.bag.weight.value[local]

    def sequence_backward(self, grad_out: np.ndarray) -> None:
        if self._local_ids is None:
            raise RuntimeError("backward called before forward")
        local = self._local_ids
        flat = grad_out.reshape(-1, self.bag.spec.dim).astype(np.float32)
        self.bag.weight.accumulate_sparse(local.ravel(), flat)
        self._local_ids = None


class EmbeddingReplicator:
    """Creates and synchronizes per-GPU hot-bag replicas.

    Args:
        tables: CPU master tables by name.
        bag_specs: hot bag specs from the classifier.
        num_replicas: number of GPUs holding a copy.
        pooling: bag pooling mode matching the model.
    """

    def __init__(
        self,
        tables: dict[str, EmbeddingTable],
        bag_specs: dict[str, HotEmbeddingBagSpec],
        num_replicas: int = 1,
        pooling: str = "mean",
    ) -> None:
        if num_replicas <= 0:
            raise ValueError(f"num_replicas must be positive, got {num_replicas}")
        missing = set(bag_specs) - set(tables)
        if missing:
            raise KeyError(f"bag specs without master tables: {sorted(missing)}")
        self.tables = tables
        self.bag_specs = bag_specs
        self.num_replicas = num_replicas
        self.pooling = pooling
        self.replicas: list[dict[str, HotBag]] = []
        self.sync_events = 0
        self.evicted = False
        registry = get_registry()
        self._sync_events_counter = registry.counter("fae.sync.events")
        self._sync_bytes_counter = registry.counter("fae.sync.bytes")
        self.replicate()

    def replicate(self) -> None:
        """(Re)build every replica from the CPU master tables."""
        with span(
            "replicate.build", num_replicas=self.num_replicas, num_tables=len(self.bag_specs)
        ):
            self.replicas = [
                {
                    name: HotBag(spec, self.tables[name].subset(spec.hot_ids), replica_id=r)
                    for name, spec in self.bag_specs.items()
                }
                for r in range(self.num_replicas)
            ]

    def bags_for_replica(self, replica_id: int) -> dict[str, HotEmbeddingBag]:
        """Model-facing pooled bags for one GPU's replica."""
        return {
            name: HotEmbeddingBag(bag, mode=self.pooling)
            for name, bag in self.replicas[replica_id].items()
        }

    def add_replica(self) -> int:
        """Build one fresh replica from the CPU master tables (rank rejoin).

        The new copy is bit-equal to the survivors *provided the masters
        are current* — rejoin happens at segment boundaries right after
        :meth:`sync_to_master`, where that holds by construction.  (On a
        cold segment the survivors' bags may be stale relative to the
        masters; the next cold→hot :meth:`sync_from_master` refreshes
        every copy, so the transient gap never reaches a hot step.)

        Returns:
            The new replica's id.

        Raises:
            RuntimeError: after :meth:`evict` — a degraded run stays on
                the cold path, so there is no hot copy to rebuild.
        """
        if self.evicted:
            raise RuntimeError("hot replicas were evicted; a degraded run stays cold")
        replica_id = len(self.replicas)
        self.replicas.append(
            {
                name: HotBag(spec, self.tables[name].subset(spec.hot_ids), replica_id=replica_id)
                for name, spec in self.bag_specs.items()
            }
        )
        self.num_replicas = len(self.replicas)
        get_registry().counter("fae.replica.added").inc()
        return replica_id

    def drop_replica(self, replica_id: int) -> None:
        """Remove one GPU's replica after a permanent rank failure.

        The surviving replicas are untouched (they stay bit-equal to each
        other), so data-parallel hot execution continues on a smaller
        world.  Dropping the last replica is refused — evict instead.

        Raises:
            IndexError: if ``replica_id`` is out of range.
            RuntimeError: when only one replica remains.
        """
        if not 0 <= replica_id < len(self.replicas):
            raise IndexError(f"replica {replica_id} out of range (have {len(self.replicas)})")
        if len(self.replicas) == 1:
            raise RuntimeError("cannot drop the last hot replica; use evict()")
        del self.replicas[replica_id]
        self.num_replicas = len(self.replicas)
        get_registry().counter("fae.replica.dropped").inc()

    def evict(self) -> int:
        """Release every hot replica (simulated GPU memory pressure).

        The CPU masters are *not* updated here — callers must
        :meth:`sync_to_master` first if replica rows are ahead of the
        masters.  After eviction the trainer degrades to the cold path.
        Returns the number of replicas released.
        """
        released = len(self.replicas)
        self.replicas = []
        self.num_replicas = 0
        self.evicted = True
        get_registry().counter("fae.hot.evictions").inc()
        return released

    def apply_delta(self, new_specs: dict[str, HotEmbeddingBagSpec], delta) -> int:
        """Incrementally refresh replicas after a hot-cache turnover.

        Only tables whose membership changed are rebuilt; the rest keep
        their existing bags untouched.  The refresh traffic charged to
        the interconnect is the *promoted* rows shipped to every replica
        — demoted rows already live in the CPU masters (callers invoke
        this at segment boundaries, after :meth:`sync_to_master`), so
        demotion is free beyond the bookkeeping.

        The in-memory rebuild copies whole bags because this simulator
        stores bags as dense arrays; the metered bytes model what an
        incremental implementation would actually move.

        Args:
            new_specs: full post-turnover bag specs (from
                ``EmbeddingHotCache.bags()``).
            delta: the ``CacheDelta`` describing promotions/demotions.

        Returns:
            Refresh bytes shipped across all replicas.
        """
        changed = delta.tables()
        registry = get_registry()
        if self.evicted:
            # Degraded runs stay cold: track membership for bookkeeping
            # but ship nothing.
            self.bag_specs = dict(new_specs)
            return 0
        moved = 0
        with span("replicate.refresh", num_tables=len(changed)) as refresh_span:
            for name in changed:
                spec = new_specs[name]
                values = self.tables[name].subset(spec.hot_ids)
                for replica_id in range(len(self.replicas)):
                    self.replicas[replica_id][name] = HotBag(
                        spec, values, replica_id=replica_id
                    )
                promoted = delta.promoted.get(name)
                if promoted is not None and promoted.size:
                    moved += int(promoted.size) * spec.dim * 4 * len(self.replicas)
            refresh_span.set(bytes=moved)
        self.bag_specs = dict(new_specs)
        registry.counter("fae.refresh.events").inc()
        registry.counter("fae.refresh.bytes").inc(moved)
        registry.counter("fae.refresh.rows.promoted").inc(delta.num_promoted)
        registry.counter("fae.refresh.rows.demoted").inc(delta.num_demoted)
        return moved

    def all_reduce_gradients(self) -> None:
        """Sum sparse gradients across replicas and share the result.

        Mirrors the paper's single fused all-reduce over embedding and
        neural-network gradients (SS II-B(3)): after this call every
        replica holds identical gradient state, so identical optimizer
        steps keep the copies bit-equal.
        """
        for name in self.bag_specs:
            combined: list = []
            for replica in self.replicas:
                combined.extend(replica[name].weight.sparse_grads)
            for replica in self.replicas:
                replica[name].weight.sparse_grads = [
                    type(g)(ids=g.ids.copy(), values=g.values.copy()) for g in combined
                ]

    def sync_to_master(self) -> int:
        """Write replica-0 hot rows into the CPU master tables.

        Called on a hot -> cold transition.  Returns bytes moved (one
        direction), which the hardware simulator charges to the PCIe link.
        """
        if not self.replicas:
            return 0
        with span("replicate.sync", direction="to_master") as sync_span:
            moved = 0
            for name, spec in self.bag_specs.items():
                bag = self.replicas[0][name]
                self.tables[name].write_rows(spec.hot_ids, bag.weight.value)
                moved += bag.nbytes
            sync_span.set(bytes=moved)
        self.sync_events += 1
        self._sync_events_counter.inc()
        self._sync_bytes_counter.inc(moved)
        return moved

    def sync_from_master(self) -> int:
        """Refresh every replica's rows from the CPU master tables.

        Called on a cold -> hot transition.  Returns bytes moved per GPU.
        """
        if not self.replicas:
            return 0
        with span("replicate.sync", direction="from_master") as sync_span:
            moved = 0
            for name, spec in self.bag_specs.items():
                fresh = self.tables[name].subset(spec.hot_ids)
                for replica in self.replicas:
                    replica[name].weight.value[...] = fresh
                moved += fresh.nbytes
            sync_span.set(bytes=moved)
        self.sync_events += 1
        self._sync_events_counter.inc()
        self._sync_bytes_counter.inc(moved)
        return moved

    def max_replica_divergence(self) -> float:
        """Largest absolute difference between any two replicas (should be 0)."""
        worst = 0.0
        if not self.replicas:
            return worst
        for name in self.bag_specs:
            reference = self.replicas[0][name].weight.value
            for replica in self.replicas[1:]:
                diff = np.abs(replica[name].weight.value - reference).max(initial=0.0)
                worst = max(worst, float(diff))
        return worst

    def total_hot_bytes(self) -> int:
        """Per-GPU footprint of one full replica."""
        if not self.replicas:
            return 0
        return sum(bag.nbytes for bag in self.replicas[0].values())
