"""Streaming FAE: calibration and pure-batch packing over chunked input.

The static pipeline in :mod:`repro.core.pipeline` assumes the training
log fits in memory.  Terabyte-scale deployments stream instead; this
module provides the single-pass equivalents:

- :class:`ReservoirSampler` — a uniform random sample of a stream of
  unknown length (Vitter's Algorithm R), replacing the Sparse Input
  Sampler's random-index draw.
- :class:`StreamingCalibrator` — one pass over the stream: reservoir-
  samples inputs while feeding per-table Count-Min Sketches, then runs
  the standard Statistical Optimizer on the sketched profile.
- :class:`StreamingPacker` — classifies each incoming chunk against the
  hot bags and incrementally emits pure-hot / pure-cold mini-batches at
  constant memory (two partial-batch buffers).

Together they make the FAE front-end a true streaming operator:
``stream -> calibrate (pass 1) -> classify+pack (pass 2) -> trainer``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.access_profile import AccessProfile, TableProfile
from repro.core.classifier import EmbeddingClassifier, HotEmbeddingBagSpec
from repro.core.config import FAEConfig
from repro.core.input_processor import compute_hot_mask
from repro.core.optimizer import CalibrationResult, StatisticalOptimizer
from repro.core.sketch import CountMinSketch
from repro.data.loader import MiniBatch
from repro.data.log import ClickLog

__all__ = ["ReservoirSampler", "StreamingCalibrator", "StreamingPacker"]


class ReservoirSampler:
    """Uniform sample of ``capacity`` items from a stream (Algorithm R).

    Items are arbitrary objects (we store row payloads); after observing
    ``n >= capacity`` items, every observed item is in the reservoir with
    probability ``capacity / n``.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.items: list = []
        self.observed = 0
        self._rng = np.random.default_rng(seed)

    def offer(self, item) -> None:
        """Observe one stream item."""
        self.observed += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
            return
        slot = int(self._rng.integers(0, self.observed))
        if slot < self.capacity:
            self.items[slot] = item

    def offer_many(self, items) -> None:
        for item in items:
            self.offer(item)

    @property
    def is_uniform_yet(self) -> bool:
        """True once the reservoir has cycled at least once."""
        return self.observed >= self.capacity


@dataclass(frozen=True)
class StreamingCalibration:
    """Outcome of a one-pass streaming calibration.

    Attributes:
        profile: sketched access profile (large tables).
        result: threshold search outcome.
        bags: hot bags classified from the sketched profile.
        observed_samples: stream length consumed.
        sketch_bytes: total sketch memory used.
    """

    profile: AccessProfile
    result: CalibrationResult
    bags: dict[str, HotEmbeddingBagSpec]
    observed_samples: int
    sketch_bytes: int

    @property
    def threshold(self) -> float:
        return self.result.threshold


class StreamingCalibrator:
    """Single-pass calibration over a chunked stream.

    Args:
        config: FAE configuration.  ``sample_rate`` governs how much of
            the stream feeds the sketches (per-chunk Bernoulli draws keep
            the pass single and the sample unbiased).
        epsilon: Count-Min relative-overcount bound.
        delta: Count-Min failure probability.
    """

    def __init__(self, config: FAEConfig, epsilon: float = 1e-4, delta: float = 1e-3) -> None:
        self.config = config
        self.epsilon = epsilon
        self.delta = delta

    def calibrate(self, stream) -> StreamingCalibration:
        """Consume the stream once and produce threshold + hot bags.

        Args:
            stream: an iterable of ``(start_index, ClickLog)`` chunks
                (e.g. :class:`~repro.data.stream.SyntheticClickStream`).
        """
        rng = np.random.default_rng(self.config.seed)
        sketches: dict[str, CountMinSketch] = {}
        schema = None
        sampled = 0
        observed = 0

        for _start, chunk in stream:
            if schema is None:
                schema = chunk.schema
                for spec in schema.large_tables(self.config.large_table_min_bytes):
                    sketches[spec.name] = CountMinSketch.from_error_bounds(
                        self.epsilon, self.delta, seed=self.config.seed
                    )
            observed += len(chunk)
            keep = rng.random(len(chunk)) < self.config.sample_rate
            count = int(keep.sum())
            if count == 0:
                continue
            sampled += count
            for name, sketch in sketches.items():
                sketch.add(chunk.sparse[name][keep])

        if schema is None or sampled == 0:
            raise ValueError("stream produced no sampled inputs")

        tables = {
            name: TableProfile(
                name=name,
                counts=sketch.query(np.arange(schema.table(name).num_rows)),
                dim=schema.table(name).dim,
            )
            for name, sketch in sketches.items()
        }
        profile = AccessProfile(
            schema=schema,
            tables=tables,
            num_sampled_inputs=sampled,
            num_total_inputs=observed,
        )
        result = StatisticalOptimizer(self.config).converge(profile)
        bags = EmbeddingClassifier(self.config).classify(profile, result.threshold)
        return StreamingCalibration(
            profile=profile,
            result=result,
            bags=bags,
            observed_samples=observed,
            sketch_bytes=sum(s.nbytes for s in sketches.values()),
        )


class StreamingPacker:
    """Incremental pure-batch packing over a chunked stream.

    Feeds chunks, classifies every input against the hot bags, buffers
    hot and cold rows separately, and emits a full :class:`MiniBatch`
    whenever a buffer reaches ``batch_size`` — constant memory regardless
    of stream length.

    Args:
        bags: hot bag specs from (streaming or static) calibration.
        batch_size: emitted mini-batch size.
    """

    def __init__(self, bags: dict[str, HotEmbeddingBagSpec], batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.bags = bags
        self.batch_size = batch_size
        self._masks = {name: bag.hot_mask() for name, bag in bags.items()}
        self._buffers = {True: [], False: []}  # hot -> list of row dicts
        self.emitted = {"hot": 0, "cold": 0}

    def _classify(self, chunk: ClickLog) -> np.ndarray:
        return compute_hot_mask(chunk.sparse, self.bags, self._masks, len(chunk))

    def _emit_from(self, hot: bool) -> Iterator[MiniBatch]:
        buffer = self._buffers[hot]
        while len(buffer) >= self.batch_size:
            rows, self._buffers[hot] = buffer[: self.batch_size], buffer[self.batch_size :]
            buffer = self._buffers[hot]
            yield self._materialize(rows, hot)

    def _materialize(self, rows: list[dict], hot: bool) -> MiniBatch:
        kind = "hot" if hot else "cold"
        self.emitted[kind] += 1
        return MiniBatch(
            dense=np.stack([r["dense"] for r in rows]),
            sparse={
                name: np.stack([r["sparse"][name] for r in rows])
                for name in rows[0]["sparse"]
            },
            labels=np.array([r["label"] for r in rows], dtype=np.float32),
            indices=np.array([r["index"] for r in rows], dtype=np.int64),
            hot=hot,
        )

    def feed(self, start_index: int, chunk: ClickLog) -> Iterator[MiniBatch]:
        """Ingest one chunk; yield any completed pure mini-batches."""
        hot_mask = self._classify(chunk)
        for i in range(len(chunk)):
            self._buffers[bool(hot_mask[i])].append(
                {
                    "dense": chunk.dense[i],
                    "sparse": {name: ids[i] for name, ids in chunk.sparse.items()},
                    "label": float(chunk.labels[i]),
                    "index": start_index + i,
                }
            )
        yield from self._emit_from(True)
        yield from self._emit_from(False)

    def flush(self) -> Iterator[MiniBatch]:
        """Emit the remaining partial batches (end of stream)."""
        for hot in (True, False):
            rows = self._buffers[hot]
            self._buffers[hot] = []
            if rows:
                yield self._materialize(rows, hot)

    def pending(self) -> tuple[int, int]:
        """(buffered hot rows, buffered cold rows) awaiting a full batch."""
        return len(self._buffers[True]), len(self._buffers[False])
