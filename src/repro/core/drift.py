"""Popularity-drift detection and recalibration support.

The FAE preprocessing runs once per dataset, but item popularity moves:
new items trend, old ones cool off.  When that happens the hot bags stop
covering the access stream and hot-input classification degrades — the
paper notes hotness "needs to be re-calibrated for every model, dataset,
and system configuration tuple" (SS I), and drift is the *when*.

:class:`DriftDetector` watches a fresh window of inputs and compares its
hot-set coverage against the coverage measured at calibration time; a
relative drop beyond the tolerance flags drift.  :func:`recalibration_diff`
then quantifies how much of each hot bag a recalibration would change —
useful to size the replica-refresh traffic a live recalibration costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classifier import HotEmbeddingBagSpec
from repro.core.input_processor import InputProcessor
from repro.core.sampler import SparseInputSampler

__all__ = ["DriftReport", "DriftDetector", "recalibration_diff", "DRIFT_STATE_VERSION"]

#: Schema version of :meth:`DriftDetector.state_dict` payloads.
DRIFT_STATE_VERSION = 1


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift check.

    Attributes:
        hot_input_fraction: hot-input share measured on the new window.
        baseline_hot_input_fraction: share at calibration time.
        per_table_coverage: table name -> fraction of the window's
            accesses that hit the table's hot bag.
        relative_drop: ``1 - current/baseline`` hot-input share (0 when
            the window is as hot as calibration; 1 when nothing is hot).
        drifted: True when the drop exceeds the detector's tolerance.
    """

    hot_input_fraction: float
    baseline_hot_input_fraction: float
    per_table_coverage: dict[str, float]
    relative_drop: float
    drifted: bool

    def worst_table(self) -> str:
        """The table whose hot bag covers the least of the new traffic."""
        return min(self.per_table_coverage, key=self.per_table_coverage.get)


class DriftDetector:
    """Monitors hot-set coverage of fresh input windows.

    Args:
        bags: hot bags from the active FAE plan.
        baseline_hot_input_fraction: hot-input share of the plan's
            training log (``plan.hot_input_fraction``).
        tolerance: maximum tolerated *relative* drop in hot-input share
            before recalibration is recommended.  The default 0.15
            tolerates sampling noise while catching genuine shifts.
        sample_rate: fraction of the window to inspect (the same cheap
            sampling trick the calibrator uses).
        seed: sampling seed.
    """

    def __init__(
        self,
        bags: dict[str, HotEmbeddingBagSpec],
        baseline_hot_input_fraction: float,
        tolerance: float = 0.15,
        sample_rate: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not 0 <= baseline_hot_input_fraction <= 1:
            raise ValueError("baseline_hot_input_fraction must be in [0, 1]")
        if not 0 < tolerance < 1:
            raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
        self.bags = bags
        self.baseline = baseline_hot_input_fraction
        self.tolerance = tolerance
        self.sample_rate = sample_rate
        self.seed = seed
        self._masks = {name: bag.hot_mask() for name, bag in bags.items()}
        #: Summaries of every check run so far (JSON-safe dicts), in order.
        self.history: list[dict] = []

    def state_dict(self) -> dict:
        """Check history for checkpointing (schema-versioned).

        The bags/masks are reconstructed by the owner at restore time;
        only the accumulated check history is mutable state.
        """
        return {
            "schema_version": DRIFT_STATE_VERSION,
            "baseline": float(self.baseline),
            "tolerance": float(self.tolerance),
            "history": [dict(entry) for entry in self.history],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this detector.

        Raises:
            ValueError: on schema-version mismatch.
        """
        version = state.get("schema_version")
        if version != DRIFT_STATE_VERSION:
            raise ValueError(
                f"drift state schema_version {version} != {DRIFT_STATE_VERSION}"
            )
        self.history = [dict(entry) for entry in state.get("history", [])]

    def check(self, window) -> DriftReport:
        """Measure hot coverage on a fresh window of inputs.

        Args:
            window: any click log (``ClickLog`` / ``SyntheticClickLog``)
                drawn from the *new* traffic.
        """
        sample = SparseInputSampler(self.sample_rate, seed=self.seed).sample(window)
        indices = sample.indices

        processor = InputProcessor(self.bags, seed=self.seed)
        hot_mask = processor.classify_inputs(window)
        current = float(hot_mask[indices].mean())

        coverage: dict[str, float] = {}
        for name, ids in window.sparse.items():
            mask = self._masks.get(name)
            if mask is None:
                raise KeyError(f"no hot bag for table {name!r}")
            hits = mask[ids[indices]].mean()
            coverage[name] = float(hits)

        if self.baseline <= 0:
            relative_drop = 0.0 if current <= 0 else -1.0
        else:
            relative_drop = 1.0 - current / self.baseline
        report = DriftReport(
            hot_input_fraction=current,
            baseline_hot_input_fraction=self.baseline,
            per_table_coverage=coverage,
            relative_drop=relative_drop,
            drifted=relative_drop > self.tolerance,
        )
        self.history.append(
            {
                "check": len(self.history),
                "hot_input_fraction": report.hot_input_fraction,
                "relative_drop": report.relative_drop,
                "drifted": report.drifted,
            }
        )
        return report

    def check_source(self, source):
        """Run one drift check per chunk of a day-partitioned source.

        Iterates any :class:`~repro.data.chunk_source.ChunkSource` —
        typically a :class:`~repro.data.chunk_source.ShardChunkSource`
        whose shards are whole days — and yields
        ``(chunk_index, DriftReport)`` pairs, so callers can pinpoint
        *which* day's traffic broke coverage and trigger hot-cache
        turnover there instead of recalibrating on a timer.
        """
        for index, (_start, chunk) in enumerate(source):
            yield index, self.check(chunk)


def recalibration_diff(
    old_bags: dict[str, HotEmbeddingBagSpec],
    new_bags: dict[str, HotEmbeddingBagSpec],
) -> dict[str, tuple[int, int]]:
    """Per-table (rows added, rows removed) between two hot-bag sets.

    The added-row count times the row size is the extra replica-refresh
    traffic a live recalibration ships to each GPU.

    Raises:
        KeyError: if the bag sets cover different tables.
    """
    if set(old_bags) != set(new_bags):
        raise KeyError("bag sets must cover the same tables")
    diff: dict[str, tuple[int, int]] = {}
    for name in old_bags:
        old_ids = old_bags[name].hot_ids
        new_ids = new_bags[name].hot_ids
        added = int(np.setdiff1d(new_ids, old_ids, assume_unique=True).size)
        removed = int(np.setdiff1d(old_ids, new_ids, assume_unique=True).size)
        diff[name] = (added, removed)
    return diff
