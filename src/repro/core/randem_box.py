"""Rand-Em Box: hot-embedding size estimation by random chunk sampling.

Implements the paper's Eq. 1-6 (SS III-A.3).  For an access threshold
``t`` and a table with ``N`` rows, the hot cutoff is ``H_zt = t x S_I``
accesses (Eq. 1).  Rather than scanning all ``N`` counts, the box draws
``n`` random chunks of ``m`` consecutive rows, counts above-cutoff rows
per chunk (Eq. 2-3), and applies the Central Limit Theorem: the chunk
means follow a t-distribution, so a two-sided t-interval around the mean
(Eq. 4-6) bounds the true hot fraction.  With ``n = 35`` and a 99.9%
interval (``t_{alpha/2} = 3.340``) the paper measures estimates within
10% of ground truth (Fig 9) at a 14.5-61x latency saving (Fig 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.access_profile import TableProfile
from repro.core.config import FAEConfig
from repro.obs import timed

__all__ = ["HotSizeEstimate", "RandEmBox"]


@dataclass(frozen=True)
class HotSizeEstimate:
    """Estimated hot-row population of one table at one threshold.

    Attributes:
        table_name: which table.
        min_count: the raw access cutoff ``H_zt`` used.
        hot_rows_mean: point estimate of hot rows in the table.
        hot_rows_upper: upper end of the confidence interval (the
            optimizer budgets against this to avoid overflowing GPU memory).
        hot_rows_lower: lower end of the interval (floored at 0).
        hot_bytes_mean: point estimate in bytes.
        hot_bytes_upper: upper-bound bytes.
        rows_scanned: how many counts the estimator actually read.
        exact: True when the table was small enough to scan fully.
    """

    table_name: str
    min_count: float
    hot_rows_mean: float
    hot_rows_upper: float
    hot_rows_lower: float
    hot_bytes_mean: float
    hot_bytes_upper: float
    rows_scanned: int
    exact: bool


class RandEmBox:
    """CLT-based hot-size estimator over sampled access counts.

    Args:
        config: supplies ``n`` (num_chunks), ``m`` (chunk_size) and the
            t-interval critical value.
        seed: chunk-placement seed.
    """

    def __init__(self, config: FAEConfig, seed: int | None = None) -> None:
        self.config = config
        self.seed = config.seed if seed is None else seed
        self.last_elapsed_seconds = 0.0

    def estimate(self, profile: TableProfile, min_count: float) -> HotSizeEstimate:
        """Estimate how many rows of ``profile`` meet ``min_count`` accesses.

        Tables with fewer than ``n x m`` rows are scanned exactly — the
        sampling machinery would read as much as a full scan there.
        """
        with timed("calibrate.estimate", table=profile.name) as timer:
            n = self.config.num_chunks
            m = self.config.chunk_size
            num_rows = profile.num_rows
            row_bytes = profile.row_bytes()

            if num_rows <= n * m:
                hot = float(profile.hot_row_count(min_count))
                estimate = HotSizeEstimate(
                    table_name=profile.name,
                    min_count=min_count,
                    hot_rows_mean=hot,
                    hot_rows_upper=hot,
                    hot_rows_lower=hot,
                    hot_bytes_mean=hot * row_bytes,
                    hot_bytes_upper=hot * row_bytes,
                    rows_scanned=num_rows,
                    exact=True,
                )
            else:
                rng = np.random.default_rng(self.seed)
                starts = rng.integers(0, num_rows - m + 1, size=n)
                # One gather for all n chunks: rows[i, j] = starts[i] + j.
                rows = starts[:, None] + np.arange(m)
                chunk_counts = (
                    (profile.counts[rows] >= min_count).sum(axis=1).astype(np.float64)
                )  # Eq. 2-3

                mean = float(chunk_counts.mean())  # Eq. 4
                std = float(chunk_counts.std(ddof=1))
                half_width = self.config.t_value * std / np.sqrt(n)  # Eq. 6

                fraction_mean = mean / m
                fraction_upper = min(1.0, (mean + half_width) / m)
                fraction_lower = max(0.0, (mean - half_width) / m)

                estimate = HotSizeEstimate(
                    table_name=profile.name,
                    min_count=min_count,
                    hot_rows_mean=fraction_mean * num_rows,
                    hot_rows_upper=fraction_upper * num_rows,
                    hot_rows_lower=fraction_lower * num_rows,
                    hot_bytes_mean=fraction_mean * num_rows * row_bytes,
                    hot_bytes_upper=fraction_upper * num_rows * row_bytes,
                    rows_scanned=n * m,
                    exact=False,
                )
            timer.set(rows_scanned=estimate.rows_scanned, exact=estimate.exact)

        # Thin alias over the span's wall time; kept for older callers.
        self.last_elapsed_seconds = timer.seconds
        return estimate

    def scan_reduction(self, profile: TableProfile) -> float:
        """How many times fewer rows the box reads than a full scan."""
        n, m = self.config.num_chunks, self.config.chunk_size
        if profile.num_rows <= n * m:
            return 1.0
        return profile.num_rows / (n * m)
