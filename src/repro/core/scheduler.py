"""Shuffle Scheduler (paper SS III-C, Eq. 7): adaptive hot/cold interleaving.

Training only on hot mini-batches for long stretches updates only the hot
rows and hurts convergence; swapping every batch maximizes randomness but
pays a hot-bag synchronization per swap.  The scheduler balances the two
with a *rate* ``r`` in [1, 100]: each segment issues ``r%`` of the cold
pool, then ``r%`` of the hot pool, and so on (cold first — cold inputs
touch the widest range of rows).  After every completed segment the
caller reports the test loss and the rate adapts:

- test loss **increased** -> halve ``r`` (more interleaving), floor R(1);
- test loss improved ``u`` consecutive times -> double ``r`` (fewer
  syncs), cap R(100);
- otherwise ``r`` is unchanged.

The paper starts at R(50) and uses ``u = 4`` (after Prechelt's
early-stopping strip heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import get_registry

__all__ = ["ScheduleEvent", "ShuffleScheduler"]


@dataclass(frozen=True)
class ScheduleEvent:
    """One completed segment of the schedule.

    Attributes:
        kind: execution mode, ``"hot"`` or ``"cold"``.  After
            :meth:`ShuffleScheduler.degrade` every segment is ``"cold"``.
        num_batches: mini-batches issued in the segment.
        rate: the rate in force when the segment was planned.
        test_loss: loss reported after the segment (None until recorded).
        pool: which batch pool the segment drains (``"hot"``/``"cold"``);
            differs from ``kind`` only in degraded mode, where hot-pool
            batches execute on the cold path.  None means same as kind.
    """

    kind: str
    num_batches: int
    rate: int
    test_loss: float | None = None
    pool: str | None = None

    @property
    def drain_pool(self) -> str:
        """The batch pool this segment consumes."""
        return self.pool or self.kind


class ShuffleScheduler:
    """Plans hot/cold segments and adapts the rate from test loss.

    Args:
        num_hot_batches: size of the hot mini-batch pool.
        num_cold_batches: size of the cold mini-batch pool.
        initial_rate: starting rate R(.), paper default 50.
        strip_length: ``u`` consecutive improvements before doubling.
    """

    MIN_RATE = 1
    MAX_RATE = 100

    def __init__(
        self,
        num_hot_batches: int,
        num_cold_batches: int,
        initial_rate: int = 50,
        strip_length: int = 4,
    ) -> None:
        if num_hot_batches < 0 or num_cold_batches < 0:
            raise ValueError("batch pool sizes must be non-negative")
        if not self.MIN_RATE <= initial_rate <= self.MAX_RATE:
            raise ValueError(f"initial_rate must be in [1, 100], got {initial_rate}")
        if strip_length < 1:
            raise ValueError("strip_length must be >= 1")
        self.total_hot = num_hot_batches
        self.total_cold = num_cold_batches
        self.remaining_hot = num_hot_batches
        self.remaining_cold = num_cold_batches
        self.rate = initial_rate
        self.strip_length = strip_length
        self.history: list[ScheduleEvent] = []
        self.transitions = 0
        self.degraded = False
        self._improvement_streak = 0
        self._last_loss: float | None = None
        self._next_kind = "cold"  # the scheduler always begins with cold

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _segment_size(self, kind: str) -> int:
        pool = self.total_cold if kind == "cold" else self.total_hot
        return max(1, round(pool * self.rate / 100))

    def next_segment(self) -> ScheduleEvent | None:
        """Plan the next segment, or None when both pools are drained."""
        if self.remaining_hot == 0 and self.remaining_cold == 0:
            return None

        pool = self._next_kind
        if pool == "cold" and self.remaining_cold == 0:
            pool = "hot"
        elif pool == "hot" and self.remaining_hot == 0:
            pool = "cold"

        available = self.remaining_cold if pool == "cold" else self.remaining_hot
        count = min(self._segment_size(pool), available)

        if pool == "cold":
            self.remaining_cold -= count
        else:
            self.remaining_hot -= count

        # Degraded mode (hot replicas evicted): both pools keep draining,
        # but every segment executes on the cold path.
        kind = "cold" if self.degraded else pool
        if self.history and self.history[-1].kind != kind:
            self.transitions += 1
            get_registry().counter("scheduler.transitions").inc()
        event = ScheduleEvent(kind=kind, num_batches=count, rate=self.rate, pool=pool)
        get_registry().counter(f"scheduler.segments.{kind}").inc()
        self.history.append(event)
        self._next_kind = "hot" if pool == "cold" else "cold"
        return event

    def segments(self):
        """Iterate all remaining segments (rate still adapts mid-flight)."""
        while True:
            segment = self.next_segment()
            if segment is None:
                return
            yield segment

    def repack_pools(self, num_hot_batches: int, num_cold_batches: int) -> None:
        """Swap in freshly re-packed pools after a hot-cache turnover.

        The trainer re-packs its *remaining* batches when cache
        membership changes mid-epoch; the scheduler adopts the new pool
        sizes as both totals and remaining counts (the repacked dataset
        starts from cursor 0).  Rate, adaptation state, and history all
        persist — only the pool geometry changes.  Later epochs iterate
        the most recently repacked pools: :meth:`reset_epoch` refills to
        the new totals, which matches the repacked dataset the trainer
        keeps.
        """
        if num_hot_batches < 0 or num_cold_batches < 0:
            raise ValueError("batch pool sizes must be non-negative")
        self.total_hot = num_hot_batches
        self.total_cold = num_cold_batches
        self.remaining_hot = num_hot_batches
        self.remaining_cold = num_cold_batches
        get_registry().counter("scheduler.repacks").inc()

    # ------------------------------------------------------------------
    # Rate adaptation (Eq. 7)
    # ------------------------------------------------------------------

    def record_test_loss(self, loss: float) -> None:
        """Report the post-segment test loss and adapt the rate."""
        if self.history:
            last = self.history[-1]
            self.history[-1] = ScheduleEvent(
                kind=last.kind,
                num_batches=last.num_batches,
                rate=last.rate,
                test_loss=loss,
                pool=last.pool,
            )
        registry = get_registry()
        if self._last_loss is not None:
            if loss > self._last_loss:
                self.rate = max(self.MIN_RATE, self.rate // 2)
                self._improvement_streak = 0
                registry.counter("scheduler.rate.halved").inc()
            else:
                self._improvement_streak += 1
                if self._improvement_streak >= self.strip_length:
                    self.rate = min(self.MAX_RATE, self.rate * 2)
                    self._improvement_streak = 0
                    registry.counter("scheduler.rate.doubled").inc()
        registry.gauge("scheduler.rate").set(self.rate)
        self._last_loss = loss

    # ------------------------------------------------------------------
    # Degradation (hot-replica loss)
    # ------------------------------------------------------------------

    def degrade(self) -> None:
        """Force every future segment onto the cold/baseline path.

        Called when the hot replicas are lost (simulated GPU memory
        pressure evicting the hot bags).  The hot batch pool still
        drains — its inputs are valid against the CPU master tables —
        but no segment executes on the (gone) replicas.  One-way for the
        remainder of the run.
        """
        if not self.degraded:
            self.degraded = True
            get_registry().counter("scheduler.degraded").inc()

    # ------------------------------------------------------------------
    # Checkpointable state
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of planning + adaptation state."""
        return {
            "total_hot": self.total_hot,
            "total_cold": self.total_cold,
            "remaining_hot": self.remaining_hot,
            "remaining_cold": self.remaining_cold,
            "rate": self.rate,
            "strip_length": self.strip_length,
            "transitions": self.transitions,
            "degraded": self.degraded,
            "improvement_streak": self._improvement_streak,
            "last_loss": self._last_loss,
            "next_kind": self._next_kind,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot from :meth:`state_dict`.

        Raises:
            ValueError: if the snapshot's pool sizes disagree with this
                scheduler's (the checkpoint belongs to another dataset).
        """
        if (
            int(state["total_hot"]) != self.total_hot
            or int(state["total_cold"]) != self.total_cold
        ):
            raise ValueError(
                f"scheduler state is for pools "
                f"({state['total_hot']} hot, {state['total_cold']} cold); "
                f"this scheduler has ({self.total_hot} hot, {self.total_cold} cold)"
            )
        self.remaining_hot = int(state["remaining_hot"])
        self.remaining_cold = int(state["remaining_cold"])
        self.rate = int(state["rate"])
        self.strip_length = int(state["strip_length"])
        self.transitions = int(state["transitions"])
        self.degraded = bool(state["degraded"])
        self._improvement_streak = int(state["improvement_streak"])
        last_loss = state["last_loss"]
        self._last_loss = None if last_loss is None else float(last_loss)
        self._next_kind = str(state["next_kind"])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self.remaining_hot == 0 and self.remaining_cold == 0

    def reset_epoch(self) -> None:
        """Refill both pools for the next epoch; rate and history persist."""
        self.remaining_hot = self.total_hot
        self.remaining_cold = self.total_cold
        self._next_kind = "cold"
