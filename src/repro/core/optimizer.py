"""Statistical Optimizer: threshold search against the GPU budget.

Walks the descending threshold grid, asking the Rand-Em Box for the
estimated hot-embedding footprint at each candidate, and settles on the
*smallest* threshold (largest, most-covering hot set) whose upper-CI
footprint still fits the allocated GPU memory ``L``.  Smaller thresholds
classify more inputs as hot — more GPU-resident execution — so this is
the best-performance feasible point (paper SS III-A: "either finalizes
the threshold or adjusts it for the next iteration").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.access_profile import AccessProfile
from repro.core.config import FAEConfig
from repro.core.randem_box import HotSizeEstimate, RandEmBox

__all__ = ["ThresholdEvaluation", "CalibrationResult", "StatisticalOptimizer"]


@dataclass(frozen=True)
class ThresholdEvaluation:
    """Footprint estimate for one candidate threshold.

    Attributes:
        threshold: candidate access threshold (fraction of sampled inputs).
        estimated_bytes: point-estimate hot footprint across all tables
            (small tables counted whole).
        estimated_bytes_upper: upper-CI footprint the feasibility test uses.
        fits: whether the upper bound fits the GPU budget.
        per_table: per-table Rand-Em estimates for the large tables.
    """

    threshold: float
    estimated_bytes: float
    estimated_bytes_upper: float
    fits: bool
    per_table: tuple[HotSizeEstimate, ...]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the threshold search.

    Attributes:
        threshold: the final access threshold.
        evaluations: every candidate evaluated, in search order.
        gpu_memory_budget: the budget ``L`` the search ran against.
    """

    threshold: float
    evaluations: tuple[ThresholdEvaluation, ...]
    gpu_memory_budget: int

    @property
    def chosen(self) -> ThresholdEvaluation:
        """The evaluation of the final threshold."""
        for ev in self.evaluations:
            if ev.threshold == self.threshold:
                return ev
        raise RuntimeError("calibration result lost its chosen evaluation")

    @property
    def iterations(self) -> int:
        return len(self.evaluations)


class StatisticalOptimizer:
    """Grid search over thresholds using Rand-Em Box footprint estimates.

    Args:
        config: FAE configuration (budget, grid, CLT parameters).
    """

    def __init__(self, config: FAEConfig) -> None:
        self.config = config
        self._box = RandEmBox(config)

    def evaluate(self, profile: AccessProfile, threshold: float) -> ThresholdEvaluation:
        """Estimate the hot footprint at one threshold."""
        small_bytes = sum(
            spec.size_bytes
            for spec in profile.schema.tables
            if spec.name not in profile.tables
        )
        estimates = []
        total_mean = float(small_bytes)
        total_upper = float(small_bytes)
        for name, table_profile in profile.tables.items():
            min_count = profile.min_count_for_threshold(threshold, name)
            est = self._box.estimate(table_profile, min_count)
            estimates.append(est)
            total_mean += est.hot_bytes_mean
            total_upper += est.hot_bytes_upper
        return ThresholdEvaluation(
            threshold=threshold,
            estimated_bytes=total_mean,
            estimated_bytes_upper=total_upper,
            fits=total_upper <= self.config.gpu_memory_budget,
            per_table=tuple(estimates),
        )

    def converge(self, profile: AccessProfile) -> CalibrationResult:
        """Walk the grid from selective to permissive; keep the last fit.

        Raises:
            ValueError: if even the most selective threshold overflows the
                budget (the small tables alone exceed ``L``).
        """
        evaluations: list[ThresholdEvaluation] = []
        best: ThresholdEvaluation | None = None
        for threshold in self.config.threshold_grid:
            evaluation = self.evaluate(profile, threshold)
            evaluations.append(evaluation)
            if evaluation.fits:
                best = evaluation
            else:
                if best is not None:
                    # Footprint grows monotonically as the threshold drops;
                    # once a candidate overflows, later ones will too.
                    break
        if best is None:
            budget_mib = self.config.gpu_memory_budget / 2**20
            raise ValueError(
                f"no threshold fits the GPU budget of {budget_mib:.0f} MiB; "
                "the always-hot small tables alone exceed it"
            )
        return CalibrationResult(
            threshold=best.threshold,
            evaluations=tuple(evaluations),
            gpu_memory_budget=self.config.gpu_memory_budget,
        )
