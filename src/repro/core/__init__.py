"""The FAE framework — the paper's primary contribution.

Static pipeline (runs once per dataset):

1. :class:`~repro.core.sampler.SparseInputSampler` — random x% input sample.
2. :class:`~repro.core.embedding_logger.EmbeddingLogger` — access counts per
   embedding row over the sample.
3. :class:`~repro.core.randem_box.RandEmBox` — CLT/t-interval hot-size
   estimation without scanning whole tables (Eq. 1-6).
4. :class:`~repro.core.optimizer.StatisticalOptimizer` — converges on the
   access threshold that fits the hot rows into the GPU budget ``L``.
5. :class:`~repro.core.classifier.EmbeddingClassifier` — hot-row bags.
6. :class:`~repro.core.input_processor.InputProcessor` — hot/cold input
   split and pure-hot / pure-cold mini-batch packing.
7. :mod:`~repro.core.fae_format` — persistence of the preprocessed output.

Runtime components:

8. :class:`~repro.core.replicator.EmbeddingReplicator` — hot bags
   replicated per GPU, with all-reduce and CPU synchronization.
9. :class:`~repro.core.scheduler.ShuffleScheduler` — adaptive hot/cold
   interleaving rate (Eq. 7).

:func:`~repro.core.pipeline.fae_preprocess` wires 1-7 together.
"""

from repro.core.config import FAEConfig
from repro.core.access_profile import AccessProfile, TableProfile
from repro.core.sampler import BernoulliSampleStream, SparseInputSampler
from repro.core.embedding_logger import EmbeddingLogger, ProfileAccumulator
from repro.core.randem_box import RandEmBox, HotSizeEstimate
from repro.core.optimizer import StatisticalOptimizer, CalibrationResult
from repro.core.calibrator import Calibrator
from repro.core.classifier import EmbeddingClassifier, HotEmbeddingBagSpec
from repro.core.input_processor import (
    InputProcessor,
    FAEDataset,
    all_hot_batch_probability,
    compute_hot_mask,
)
from repro.core.fae_format import (
    ShardBatchSequence,
    load_fae_dataset,
    save_fae_dataset,
    save_fae_dataset_sharded,
)
from repro.core.drift import DriftDetector, DriftReport, recalibration_diff
from repro.core.sketch import CountMinSketch, SketchLogger
from repro.core.hotcache import (
    CacheDelta,
    EmbeddingHotCache,
    HotCacheConfig,
    repack_remaining,
)
from repro.core.memory_planner import MemoryPlan, plan_memory_budget
from repro.core.streaming import ReservoirSampler, StreamingCalibrator, StreamingPacker
from repro.core.allocation import Allocation, greedy_product_allocation, threshold_allocation
from repro.core.replicator import EmbeddingReplicator, HotBag, HotEmbeddingBag
from repro.core.scheduler import ShuffleScheduler, ScheduleEvent
from repro.core.pipeline import FAEPlan, fae_preprocess, fae_preprocess_source

__all__ = [
    "AccessProfile",
    "Allocation",
    "BernoulliSampleStream",
    "CalibrationResult",
    "Calibrator",
    "CacheDelta",
    "CountMinSketch",
    "DriftDetector",
    "DriftReport",
    "EmbeddingClassifier",
    "EmbeddingLogger",
    "EmbeddingHotCache",
    "EmbeddingReplicator",
    "FAEConfig",
    "FAEDataset",
    "FAEPlan",
    "HotBag",
    "HotCacheConfig",
    "HotEmbeddingBag",
    "HotEmbeddingBagSpec",
    "HotSizeEstimate",
    "InputProcessor",
    "MemoryPlan",
    "ProfileAccumulator",
    "RandEmBox",
    "ReservoirSampler",
    "ScheduleEvent",
    "ShardBatchSequence",
    "ShuffleScheduler",
    "SketchLogger",
    "SparseInputSampler",
    "StreamingCalibrator",
    "StreamingPacker",
    "StatisticalOptimizer",
    "TableProfile",
    "all_hot_batch_probability",
    "compute_hot_mask",
    "fae_preprocess",
    "fae_preprocess_source",
    "greedy_product_allocation",
    "load_fae_dataset",
    "plan_memory_budget",
    "recalibration_diff",
    "repack_remaining",
    "save_fae_dataset",
    "save_fae_dataset_sharded",
    "threshold_allocation",
]
