"""Access profiles: per-row access counts and skew diagnostics.

A :class:`TableProfile` holds the access counts the Embedding Logger
gathered for one table over the sampled inputs; an :class:`AccessProfile`
aggregates the per-table profiles plus bookkeeping about how the sample
was drawn.  Profiles are what every downstream FAE stage (Rand-Em Box,
classifier, Fig 2/6/7 benches) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import DatasetSchema

__all__ = ["TableProfile", "AccessProfile"]


@dataclass
class TableProfile:
    """Sampled access counts for one embedding table.

    Attributes:
        name: table name.
        counts: int64 ``(num_rows,)`` access counts over the sampled inputs.
        dim: embedding dimension (to convert rows to bytes).
        bytes_per_value: storage width (4 for fp32).
    """

    name: str
    counts: np.ndarray
    dim: int
    bytes_per_value: int = 4

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.counts.ndim != 1:
            raise ValueError(f"{self.name}: counts must be 1-D")

    @property
    def num_rows(self) -> int:
        return int(self.counts.shape[0])

    @property
    def total_accesses(self) -> int:
        return int(self.counts.sum())

    def row_bytes(self) -> int:
        return self.dim * self.bytes_per_value

    def accumulate(self, ids: np.ndarray) -> None:
        """Add one chunk of sampled lookup ids to the counts.

        The streaming profiler builds a table's profile as a running
        ``np.bincount`` sum, one chunk at a time; summing per-chunk
        bincounts is exactly the bincount of the concatenated ids, so
        chunking never changes the final profile.
        """
        ids = np.asarray(ids, dtype=np.int64)
        self.counts += np.bincount(ids.ravel(), minlength=self.num_rows)

    def hot_mask(self, min_count: float) -> np.ndarray:
        """Boolean mask of rows with at least ``min_count`` accesses."""
        return self.counts >= min_count

    def hot_row_count(self, min_count: float) -> int:
        return int(np.count_nonzero(self.counts >= min_count))

    def hot_bytes(self, min_count: float) -> int:
        return self.hot_row_count(min_count) * self.row_bytes()

    def hot_access_share(self, min_count: float) -> float:
        """Fraction of all accesses landing on rows above the threshold."""
        total = self.total_accesses
        if total == 0:
            return 0.0
        hot = self.counts[self.counts >= min_count].sum()
        return float(hot / total)

    def top_fraction_share(self, fraction: float) -> float:
        """Access share captured by the most-popular ``fraction`` of rows.

        Reproduces statements like "top 6.8% of entries get >= 76% of
        accesses" (paper SS II-A).
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        total = self.total_accesses
        if total == 0:
            return 0.0
        k = max(1, int(round(fraction * self.num_rows)))
        top = np.partition(self.counts, self.num_rows - k)[self.num_rows - k :]
        return float(top.sum() / total)

    def rank_frequency(self, max_points: int | None = None) -> np.ndarray:
        """Descending access counts (the Fig 7 access-profile curve)."""
        ordered = np.sort(self.counts)[::-1]
        if max_points is not None:
            ordered = ordered[:max_points]
        return ordered


@dataclass
class AccessProfile:
    """Aggregated sampled access profile for a dataset.

    Attributes:
        schema: the dataset geometry profiled.
        tables: per-table profiles keyed by name.  Only *large* tables are
            profiled (small ones are de-facto hot, SS III-A.1); absent
            names mean the table was below the large-table cutoff.
        num_sampled_inputs: |S_I hat| — how many inputs the counts cover.
        num_total_inputs: |S_I| — size of the full training input set.
    """

    schema: DatasetSchema
    tables: dict[str, TableProfile]
    num_sampled_inputs: int
    num_total_inputs: int

    def __post_init__(self) -> None:
        if self.num_sampled_inputs <= 0:
            raise ValueError("num_sampled_inputs must be positive")
        if self.num_total_inputs < self.num_sampled_inputs:
            raise ValueError("cannot sample more inputs than exist")

    @property
    def sample_rate(self) -> float:
        return self.num_sampled_inputs / self.num_total_inputs

    def min_count_for_threshold(self, threshold: float, table_name: str) -> float:
        """Translate an access threshold into a raw count cutoff (Eq. 1).

        ``H_zt = t x S_I``, with S_I the sampled-input count scaled by the
        table's lookup multiplicity (a table looked up m times per input
        sees m x S_I total accesses).
        """
        multiplicity = self.schema.table(table_name).multiplicity
        return threshold * self.num_sampled_inputs * multiplicity

    def hot_bytes_for_threshold(self, threshold: float) -> int:
        """Exact hot-embedding bytes at ``threshold`` across all tables.

        Large tables contribute their above-threshold rows; small tables
        contribute their full size (they are always resident on GPU).
        """
        total = 0
        for spec in self.schema.tables:
            profile = self.tables.get(spec.name)
            if profile is None:
                total += spec.size_bytes
            else:
                total += profile.hot_bytes(self.min_count_for_threshold(threshold, spec.name))
        return total

    def hot_row_counts_for_threshold(self, threshold: float) -> dict[str, int]:
        """Per-table hot row counts at ``threshold`` (large tables only)."""
        return {
            name: profile.hot_row_count(self.min_count_for_threshold(threshold, name))
            for name, profile in self.tables.items()
        }
