"""FAE framework configuration.

Defaults mirror the paper's choices: L = 256 MB of GPU memory for hot
embeddings (SS III-A.3: "our experiments show that L = 256MB suffices"),
5% input sampling (SS III-A.1), n = 35 chunks of m = 1024 rows with a
99.9% t-interval (t = 3.340) for the Rand-Em Box (SS III-A.3), u = 4
consecutive-improvement strips and an initial rate of R(50) for the
Shuffle Scheduler (SS III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FAEConfig", "DEFAULT_THRESHOLD_GRID"]

#: Descending access-threshold candidates (fraction of total sampled
#: inputs an entry must capture to be hot).  The Statistical Optimizer
#: walks this grid from most to least selective until the estimated hot
#: size would exceed the GPU budget.  Spans the paper's Fig 6 x-axis.
DEFAULT_THRESHOLD_GRID: tuple[float, ...] = (
    1e-2, 5e-3, 2e-3, 1e-3, 5e-4, 2e-4, 1e-4, 5e-5, 2e-5, 1e-5,
    5e-6, 2e-6, 1e-6, 5e-7, 2e-7, 1e-7, 5e-8, 2e-8, 1e-8,
)


@dataclass(frozen=True)
class FAEConfig:
    """Knobs of the FAE static pipeline and runtime.

    Attributes:
        gpu_memory_budget: bytes of GPU memory allocated to hot embeddings
            (the paper's ``L``; default 256 MB).
        sample_rate: input-sampling fraction ``x`` for the calibrator.
        num_chunks: Rand-Em Box sample count ``n`` (>= 30 for CLT validity).
        chunk_size: rows per Rand-Em Box sample ``m``.
        t_value: t-distribution critical value for the confidence interval
            (3.340 = 99.9% two-sided at n = 35).
        threshold_grid: descending candidate thresholds.
        large_table_min_bytes: tables smaller than this are de-facto hot.
        scheduler_initial_rate: starting hot/cold interleave rate R(.).
        scheduler_strip_length: ``u`` — consecutive test-loss improvements
            required before the rate doubles.
        seed: master seed for all random sampling in the pipeline.
    """

    gpu_memory_budget: int = 256 * 2**20
    sample_rate: float = 0.05
    num_chunks: int = 35
    chunk_size: int = 1024
    t_value: float = 3.340
    threshold_grid: tuple[float, ...] = DEFAULT_THRESHOLD_GRID
    large_table_min_bytes: int = 1 << 20
    scheduler_initial_rate: int = 50
    scheduler_strip_length: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.gpu_memory_budget <= 0:
            raise ValueError("gpu_memory_budget must be positive")
        if not 0 < self.sample_rate <= 1:
            raise ValueError(f"sample_rate must be in (0, 1], got {self.sample_rate}")
        if self.num_chunks < 2:
            raise ValueError("num_chunks must be at least 2")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.t_value <= 0:
            raise ValueError("t_value must be positive")
        if not self.threshold_grid:
            raise ValueError("threshold_grid must be non-empty")
        if list(self.threshold_grid) != sorted(self.threshold_grid, reverse=True):
            raise ValueError("threshold_grid must be strictly descending")
        if any(t <= 0 for t in self.threshold_grid):
            raise ValueError("thresholds must be positive")
        if not 1 <= self.scheduler_initial_rate <= 100:
            raise ValueError("scheduler_initial_rate must be in [1, 100]")
        if self.scheduler_strip_length < 1:
            raise ValueError("scheduler_strip_length must be >= 1")
