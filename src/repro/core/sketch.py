"""Streaming access counting with a Count-Min Sketch.

The Embedding Logger keeps one exact counter per embedding row — cheap at
Kaggle scale, but a Terabyte-class deployment profiling many models
concurrently may not want 26 x 73M counters per job.  A Count-Min Sketch
bounds memory at a fixed ``width x depth`` grid with a one-sided error
guarantee: estimates never undercount, and overcount by at most
``epsilon * total`` with probability ``1 - delta`` for
``width = ceil(e / epsilon)``, ``depth = ceil(ln(1/delta))``.

Overcounting is the *safe* direction for FAE: a row whose count is
inflated gets classified hot (wasting a few bytes of GPU memory), never
cold (which would poison pure-hot batches).  :class:`SketchLogger` is a
drop-in alternative to :class:`~repro.core.embedding_logger.EmbeddingLogger`
that produces the same :class:`~repro.core.access_profile.AccessProfile`
surface from sketched counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.access_profile import AccessProfile, TableProfile
from repro.core.config import FAEConfig
from repro.data.synthetic import SyntheticClickLog

__all__ = ["CountMinSketch", "SketchLogger", "SKETCH_STATE_VERSION"]

#: Schema version of :meth:`CountMinSketch.state_dict` payloads.
SKETCH_STATE_VERSION = 1


class CountMinSketch:
    """Count-Min Sketch over non-negative integer item ids.

    Args:
        width: counters per row (error scale ~ total/width).
        depth: independent hash rows (failure probability ~ exp(-depth)).
        seed: hash-parameter seed.
    """

    #: A large Mersenne prime for universal hashing.
    _PRIME = (1 << 61) - 1

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, self._PRIME, size=depth, dtype=np.int64)
        self._b = rng.integers(0, self._PRIME, size=depth, dtype=np.int64)
        self.table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    @classmethod
    def from_error_bounds(cls, epsilon: float, delta: float, seed: int = 0) -> "CountMinSketch":
        """Size a sketch for overcount <= ``epsilon * total`` w.p. ``1 - delta``."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ValueError("epsilon and delta must be in (0, 1)")
        width = int(np.ceil(np.e / epsilon))
        depth = int(np.ceil(np.log(1.0 / delta)))
        return cls(width=width, depth=max(1, depth), seed=seed)

    def _buckets(self, ids: np.ndarray) -> np.ndarray:
        """(depth, n) bucket indices via universal hashing."""
        ids = np.asarray(ids, dtype=np.int64)
        # ((a*x + b) mod p) mod width, row-wise.
        hashed = (self._a[:, None] * ids[None, :] + self._b[:, None]) % self._PRIME
        return (hashed % self.width).astype(np.int64)

    def add(self, ids: np.ndarray, counts: np.ndarray | None = None) -> None:
        """Count accesses for every id in ``ids`` (duplicates counted).

        Args:
            ids: item ids; flattened before counting.
            counts: optional per-id weights (one access each when None).
                The hot cache uses this to re-inject a demoted row's exact
                counter back into the sketch, so its popularity history
                survives the demotion.
        """
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if ids.size == 0:
            return
        if counts is None:
            weights: np.ndarray | int = 1
            added = int(ids.size)
        else:
            weights = np.asarray(counts, dtype=np.int64).ravel()
            if weights.shape != ids.shape:
                raise ValueError(
                    f"counts shape {weights.shape} != ids shape {ids.shape}"
                )
            if weights.size and int(weights.min()) < 0:
                raise ValueError("counts must be non-negative")
            added = int(weights.sum())
        buckets = self._buckets(ids)
        for row in range(self.depth):
            np.add.at(self.table[row], buckets[row], weights)
        self.total += added

    def decay(self, factor: float) -> None:
        """Exponentially age every counter: ``table = floor(table * factor)``.

        Periodic decay turns the sketch's lifetime counts into
        recency-weighted estimates (the aging trick CAFE applies to its
        hot-tracking sketch): rows that stopped appearing shrink toward
        zero geometrically, so a rotated popularity head overtakes the old
        one after a few windows instead of never.  The floor keeps
        counters integral — estimates stay deterministic and never
        undercount the *decayed* truth (every true count passed through
        the same floor-scaling).
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"decay factor must be in (0, 1], got {factor}")
        if factor == 1.0:
            return
        self.table = np.floor(self.table * factor).astype(np.int64)
        self.total = int(np.floor(self.total * factor))

    def query(self, ids: np.ndarray) -> np.ndarray:
        """Estimated counts (never below the true counts)."""
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if ids.size == 0:
            return np.zeros(0, dtype=np.int64)
        buckets = self._buckets(ids)
        estimates = np.min(
            np.stack([self.table[row, buckets[row]] for row in range(self.depth)]),
            axis=0,
        )
        return estimates.astype(np.int64)

    @property
    def nbytes(self) -> int:
        return int(self.table.nbytes)

    def state_dict(self) -> dict:
        """Complete sketch state for checkpointing (schema-versioned).

        The hash parameters travel with the counters: a restored sketch
        answers every query byte-identically even if the constructor seed
        that produced ``a``/``b`` is no longer known.
        """
        return {
            "schema_version": SKETCH_STATE_VERSION,
            "width": self.width,
            "depth": self.depth,
            "total": int(self.total),
            "a": self._a.copy(),
            "b": self._b.copy(),
            "table": self.table.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this sketch.

        Raises:
            ValueError: on schema-version or geometry mismatch.
        """
        version = state.get("schema_version")
        if version != SKETCH_STATE_VERSION:
            raise ValueError(
                f"sketch state schema_version {version} != {SKETCH_STATE_VERSION}"
            )
        if int(state["width"]) != self.width or int(state["depth"]) != self.depth:
            raise ValueError(
                f"sketch geometry mismatch: state is "
                f"{state['depth']}x{state['width']}, sketch is "
                f"{self.depth}x{self.width}"
            )
        self._a = np.asarray(state["a"], dtype=np.int64).copy()
        self._b = np.asarray(state["b"], dtype=np.int64).copy()
        table = np.asarray(state["table"], dtype=np.int64)
        if table.shape != (self.depth, self.width):
            raise ValueError(f"sketch table shape {table.shape} != {(self.depth, self.width)}")
        self.table = table.copy()
        self.total = int(state["total"])


class SketchLogger:
    """Access profiling through Count-Min Sketches (one per large table).

    Args:
        config: FAE configuration (large-table cutoff).
        epsilon: relative overcount bound per sketch.
        delta: failure probability per sketch.
    """

    def __init__(self, config: FAEConfig, epsilon: float = 1e-4, delta: float = 1e-3) -> None:
        self.config = config
        self.epsilon = epsilon
        self.delta = delta
        self.last_sketch_bytes = 0

    def profile(self, log: SyntheticClickLog, sample_indices: np.ndarray) -> AccessProfile:
        """Sketch-based counterpart of ``EmbeddingLogger.profile``.

        The returned profile materializes per-row *estimates* by querying
        the sketch for every row id — still smaller than exact counting
        in streaming settings because the counting state is bounded while
        the stream flows.
        """
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if sample_indices.size == 0:
            raise ValueError("sample_indices must be non-empty")

        tables: dict[str, TableProfile] = {}
        self.last_sketch_bytes = 0
        for spec in log.schema.large_tables(self.config.large_table_min_bytes):
            sketch = CountMinSketch.from_error_bounds(
                self.epsilon, self.delta, seed=self.config.seed
            )
            sketch.add(log.sparse[spec.name][sample_indices])
            self.last_sketch_bytes += sketch.nbytes
            counts = sketch.query(np.arange(spec.num_rows))
            # Rows never touched can still alias to non-empty buckets;
            # exact-zero traffic is recoverable because CMS never
            # undercounts: a row with estimate 0 truly has count 0, and
            # rows that alias keep their (safe) overcount.
            tables[spec.name] = TableProfile(name=spec.name, counts=counts, dim=spec.dim)

        return AccessProfile(
            schema=log.schema,
            tables=tables,
            num_sampled_inputs=int(sample_indices.shape[0]),
            num_total_inputs=len(log),
        )
