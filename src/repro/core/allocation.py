"""Hot-budget allocation across tables: threshold rule vs product-optimal.

The paper's calibrator applies one global access threshold: a row is hot
iff its access count clears ``t x S_I`` (scaled by multiplicity).  That
rule maximizes the total *access* coverage per byte.  But the quantity
that actually drives FAE's speedup is the *hot-input fraction*

    P(input hot) = prod_z coverage_z ** multiplicity_z,

a product, not a sum: a table looked up 21 times per input (Taobao's
behaviour sequences) punishes low coverage 21-fold, so it deserves
disproportionate budget.  :func:`greedy_product_allocation` maximizes the
log of that product directly — a classic greedy on concave marginal
gains, optimal up to one block per table — and
``benchmarks/test_abl_allocation.py`` measures what it buys over the
paper's rule.

Both allocators consume the same sampled :class:`~repro.core.
access_profile.AccessProfile` the calibrator already builds, and both
return per-table hot-row id arrays compatible with
:class:`~repro.core.classifier.HotEmbeddingBagSpec`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.access_profile import AccessProfile
from repro.core.classifier import HotEmbeddingBagSpec

__all__ = ["Allocation", "threshold_allocation", "greedy_product_allocation"]

#: Coverage floor standing in for "zero coverage" when computing log gains
#: (a table with zero hot rows zeroes the product; the greedy's first
#: block per table therefore carries an effectively unbounded gain).
_COVERAGE_FLOOR = 1e-12


@dataclass(frozen=True)
class Allocation:
    """A per-table hot-row assignment.

    Attributes:
        hot_rows: table name -> number of hot rows granted.
        bytes_used: total footprint of the allocation (plus small tables).
        log_hot_fraction: the objective, sum of mult * log(coverage)
            (``-inf`` when any profiled table got zero coverage).
    """

    hot_rows: dict[str, int]
    bytes_used: int
    log_hot_fraction: float

    def predicted_hot_fraction(self) -> float:
        return float(np.exp(self.log_hot_fraction))

    def to_bag_specs(self, profile: AccessProfile) -> dict[str, HotEmbeddingBagSpec]:
        """Materialize bag specs: the top-k rows by sampled count per table.

        Small (unprofiled) tables come back whole, as in the classifier.
        """
        bags: dict[str, HotEmbeddingBagSpec] = {}
        for spec in profile.schema.tables:
            table_profile = profile.tables.get(spec.name)
            if table_profile is None:
                hot_ids = np.arange(spec.num_rows, dtype=np.int64)
                whole = True
            else:
                k = self.hot_rows.get(spec.name, 0)
                order = np.argsort(table_profile.counts, kind="stable")[::-1]
                hot_ids = np.sort(order[:k]).astype(np.int64)
                whole = k >= spec.num_rows
            bags[spec.name] = HotEmbeddingBagSpec(
                table_name=spec.name,
                hot_ids=hot_ids,
                num_rows=spec.num_rows,
                dim=spec.dim,
                whole_table=whole,
            )
        return bags


def _table_inputs(profile: AccessProfile):
    """(name, sorted-desc counts, total, row_bytes, multiplicity) per table."""
    for spec in profile.schema.tables:
        table_profile = profile.tables.get(spec.name)
        if table_profile is None:
            continue
        counts = np.sort(table_profile.counts, kind="stable")[::-1].astype(np.float64)
        total = counts.sum()
        yield spec.name, counts, total, table_profile.row_bytes(), spec.multiplicity


def _small_table_bytes(profile: AccessProfile) -> int:
    return sum(
        spec.size_bytes
        for spec in profile.schema.tables
        if spec.name not in profile.tables
    )


def _objective(profile: AccessProfile, hot_rows: dict[str, int]) -> float:
    log_fraction = 0.0
    for name, counts, total, _row_bytes, mult in _table_inputs(profile):
        k = hot_rows.get(name, 0)
        coverage = counts[:k].sum() / total if total > 0 else 1.0
        log_fraction += mult * np.log(max(coverage, _COVERAGE_FLOOR))
    return float(log_fraction)


def threshold_allocation(profile: AccessProfile, budget: int) -> Allocation:
    """The paper's rule: one global threshold, lowered until L is full.

    Binary-searches the threshold (exact, not sampled — this is the
    idealized version the greedy is compared against).
    """
    small = _small_table_bytes(profile)
    if small > budget:
        raise ValueError("small tables alone exceed the budget")
    tables = list(_table_inputs(profile))

    def rows_at(threshold: float) -> dict[str, int]:
        hot = {}
        for name, counts, _total, _rb, mult in tables:
            cutoff = profile.min_count_for_threshold(threshold, name)
            hot[name] = int(np.searchsorted(-counts, -cutoff, side="right"))
        return hot

    def bytes_at(hot: dict[str, int]) -> int:
        by_name = {name: rb for name, _c, _t, rb, _m in tables}
        return small + sum(k * by_name[name] for name, k in hot.items())

    lo, hi = 1e-12, 1.0
    for _ in range(80):
        mid = float(np.sqrt(lo * hi))
        if bytes_at(rows_at(mid)) > budget:
            lo = mid
        else:
            hi = mid
    hot = rows_at(hi)
    return Allocation(
        hot_rows=hot,
        bytes_used=bytes_at(hot),
        log_hot_fraction=_objective(profile, hot),
    )


def greedy_product_allocation(
    profile: AccessProfile, budget: int, block_rows: int = 16
) -> Allocation:
    """Maximize ``sum mult_z log(coverage_z)`` under the byte budget.

    Rows are granted in blocks of ``block_rows`` (in descending count
    order within each table) by a max-heap on marginal gain per byte.
    Because log-coverage is concave in the granted rows, per-table gains
    are non-increasing and the lazy greedy is exact up to one block.

    Raises:
        ValueError: if the always-hot small tables exceed the budget.
    """
    if block_rows <= 0:
        raise ValueError("block_rows must be positive")
    small = _small_table_bytes(profile)
    if small > budget:
        raise ValueError("small tables alone exceed the budget")

    state: dict[str, dict] = {}
    heap: list[tuple[float, str]] = []
    for name, counts, total, row_bytes, mult in _table_inputs(profile):
        cumulative = np.concatenate([[0.0], np.cumsum(counts)])
        state[name] = {
            "cumulative": cumulative,
            "total": total if total > 0 else 1.0,
            "row_bytes": row_bytes,
            "mult": mult,
            "granted": 0,
            "num_rows": len(counts),
        }
        gain = _block_gain(state[name], block_rows)
        if gain > 0:
            heapq.heappush(heap, (-gain, name))

    remaining = budget - small
    while heap:
        neg_gain, name = heapq.heappop(heap)
        table = state[name]
        block = min(block_rows, table["num_rows"] - table["granted"])
        cost = block * table["row_bytes"]
        if block == 0:
            continue
        if cost > remaining:
            continue  # this table's block no longer fits; try others
        # Lazy greedy: re-check the gain is still current.
        current_gain = _block_gain(table, block_rows)
        if current_gain < -neg_gain * (1 - 1e-12) - 1e-15:
            if current_gain > 0:
                heapq.heappush(heap, (-current_gain, name))
            continue
        table["granted"] += block
        remaining -= cost
        next_gain = _block_gain(table, block_rows)
        if next_gain > 0:
            heapq.heappush(heap, (-next_gain, name))

    hot = {name: table["granted"] for name, table in state.items()}
    return Allocation(
        hot_rows=hot,
        bytes_used=budget - remaining,
        log_hot_fraction=_objective(profile, hot),
    )


def _block_gain(table: dict, block_rows: int) -> float:
    """Marginal ``mult * dlog(coverage)`` per byte of the next block."""
    granted = table["granted"]
    block = min(block_rows, table["num_rows"] - granted)
    if block <= 0:
        return 0.0
    cumulative = table["cumulative"]
    total = table["total"]
    before = max(cumulative[granted] / total, _COVERAGE_FLOOR)
    after = max(cumulative[granted + block] / total, _COVERAGE_FLOOR)
    gain = table["mult"] * (np.log(after) - np.log(before))
    return float(gain / (block * table["row_bytes"]))
