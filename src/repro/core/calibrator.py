"""Calibrator: the static front half of the FAE pipeline (paper Fig 5).

Chains Sparse Input Sampler -> Embedding Logger -> Statistical Optimizer
to produce the final access threshold and the access profile the
classifier and input processor consume.  Runs once per (dataset, model,
system) tuple; its outputs are persisted in the FAE format.

The calibrator consumes any :class:`~repro.data.chunk_source.ChunkSource`
(:meth:`Calibrator.calibrate_source`): sized sources pre-draw the exact
sample positions so the result is byte-identical however the input is
chunked; unsized sources (true streams) fall back to one fused pass with
per-chunk Bernoulli sampling.  The whole-log :meth:`Calibrator.calibrate`
is a thin wrapper over a single-chunk source.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.access_profile import AccessProfile
from repro.core.config import FAEConfig
from repro.core.embedding_logger import EmbeddingLogger
from repro.core.optimizer import CalibrationResult, StatisticalOptimizer
from repro.core.sampler import SparseInputSampler
from repro.data.chunk_source import ChunkSource, LogChunkSource
from repro.data.synthetic import SyntheticClickLog
from repro.obs import span, timed

__all__ = ["CalibratorOutput", "Calibrator"]


@dataclass(frozen=True)
class CalibratorOutput:
    """Everything the calibrator learned.

    Attributes:
        profile: sampled access profile (large tables).
        result: threshold search outcome.
        sampling_seconds: wall time of the input-sampling pass.
        profiling_seconds: wall time of the access-counting pass.
        optimize_seconds: wall time of the threshold search.
    """

    profile: AccessProfile
    result: CalibrationResult
    sampling_seconds: float
    profiling_seconds: float
    optimize_seconds: float

    @property
    def threshold(self) -> float:
        return self.result.threshold

    @property
    def total_seconds(self) -> float:
        return self.sampling_seconds + self.profiling_seconds + self.optimize_seconds


class Calibrator:
    """End-to-end static calibration.

    Args:
        config: FAE configuration.
    """

    def __init__(self, config: FAEConfig) -> None:
        self.config = config

    def calibrate(self, log: SyntheticClickLog, full_profile: bool = False) -> CalibratorOutput:
        """Run sampling, profiling, and threshold convergence on ``log``.

        Args:
            log: the training inputs to calibrate against.
            full_profile: bypass sampling and profile every input (the
                naive baseline benchmarked in Fig 8; default False).
        """
        return self.calibrate_source(LogChunkSource(log), full_profile=full_profile)

    def calibrate_source(
        self, source: ChunkSource, full_profile: bool = False, pool=None
    ) -> CalibratorOutput:
        """Run the calibration passes over a chunk source.

        Sized sources use the exact-count sampler (chunking-invariant);
        unsized sources stream per-chunk Bernoulli keep masks instead,
        fusing sampling and profiling into one pass.

        Args:
            full_profile: bypass sampling and profile every input.
            pool: optional :class:`~repro.resilience.elastic.WorkerPool`;
                sized sources then fan per-chunk profiling out across it
                (byte-identical result — see
                :meth:`~repro.core.embedding_logger.EmbeddingLogger.profile_source_parallel`).
                Unsized sources cannot pre-split work and ignore it.
        """
        num_samples = source.num_samples
        with span(
            "calibrate", num_inputs=(-1 if num_samples is None else num_samples)
        ) as calibrate_span:
            sampler = SparseInputSampler(self.config.sample_rate, seed=self.config.seed)
            logger = EmbeddingLogger(self.config)

            if num_samples is not None:
                sample = (
                    sampler.sample_all_source(source)
                    if full_profile
                    else sampler.sample_source(source)
                )
                if pool is not None:
                    profile = logger.profile_source_parallel(source, sample.indices, pool)
                else:
                    profile = logger.profile_source(source, sample.indices)
                sampling_seconds = sample.elapsed_seconds
            else:
                profile = self._profile_unsized(source, sampler, logger, full_profile)
                sampling_seconds = 0.0

            optimizer = StatisticalOptimizer(self.config)
            with timed("calibrate.optimize") as optimize_timer:
                result = optimizer.converge(profile)
                optimize_timer.set(iterations=result.iterations, threshold=result.threshold)
            calibrate_span.set(threshold=result.threshold)

        return CalibratorOutput(
            profile=profile,
            result=result,
            sampling_seconds=sampling_seconds,
            profiling_seconds=logger.last_elapsed_seconds,
            optimize_seconds=optimize_timer.seconds,
        )

    def _profile_unsized(
        self,
        source: ChunkSource,
        sampler: SparseInputSampler,
        logger: EmbeddingLogger,
        full_profile: bool,
    ) -> AccessProfile:
        """One fused sample+profile pass for sources of unknown length."""
        stream = sampler.bernoulli_stream(full_profile=full_profile)
        with timed("calibrate.profile", rate=stream.rate, streaming=True) as timer:
            accumulator = logger.accumulator(source.schema)
            first_chunk = None
            for _start, chunk in source:
                if first_chunk is None and len(chunk):
                    first_chunk = chunk
                accumulator.update(chunk, np.flatnonzero(stream.draw(len(chunk))))
            if accumulator.num_sampled == 0 and first_chunk is not None:
                # Bernoulli draws kept nothing; keep one row so downstream
                # stages never see an empty profile (mirrors the exact
                # sampler's at-least-one guarantee).
                accumulator.update(first_chunk, np.array([0]), count_observed=False)
            timer.set(
                num_sampled=accumulator.num_sampled,
                num_total=accumulator.num_observed,
                num_tables=accumulator.num_tables,
            )
        logger.last_elapsed_seconds = timer.seconds
        return accumulator.finalize()
