"""Calibrator: the static front half of the FAE pipeline (paper Fig 5).

Chains Sparse Input Sampler -> Embedding Logger -> Statistical Optimizer
to produce the final access threshold and the access profile the
classifier and input processor consume.  Runs once per (dataset, model,
system) tuple; its outputs are persisted in the FAE format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.access_profile import AccessProfile
from repro.core.config import FAEConfig
from repro.core.embedding_logger import EmbeddingLogger
from repro.core.optimizer import CalibrationResult, StatisticalOptimizer
from repro.core.sampler import SparseInputSampler
from repro.data.synthetic import SyntheticClickLog
from repro.obs import span, timed

__all__ = ["CalibratorOutput", "Calibrator"]


@dataclass(frozen=True)
class CalibratorOutput:
    """Everything the calibrator learned.

    Attributes:
        profile: sampled access profile (large tables).
        result: threshold search outcome.
        sampling_seconds: wall time of the input-sampling pass.
        profiling_seconds: wall time of the access-counting pass.
        optimize_seconds: wall time of the threshold search.
    """

    profile: AccessProfile
    result: CalibrationResult
    sampling_seconds: float
    profiling_seconds: float
    optimize_seconds: float

    @property
    def threshold(self) -> float:
        return self.result.threshold

    @property
    def total_seconds(self) -> float:
        return self.sampling_seconds + self.profiling_seconds + self.optimize_seconds


class Calibrator:
    """End-to-end static calibration.

    Args:
        config: FAE configuration.
    """

    def __init__(self, config: FAEConfig) -> None:
        self.config = config

    def calibrate(self, log: SyntheticClickLog, full_profile: bool = False) -> CalibratorOutput:
        """Run sampling, profiling, and threshold convergence on ``log``.

        Args:
            log: the training inputs to calibrate against.
            full_profile: bypass sampling and profile every input (the
                naive baseline benchmarked in Fig 8; default False).
        """
        with span("calibrate", num_inputs=len(log)) as calibrate_span:
            sampler = SparseInputSampler(self.config.sample_rate, seed=self.config.seed)
            sample = sampler.sample_all(log) if full_profile else sampler.sample(log)

            logger = EmbeddingLogger(self.config)
            profile = logger.profile(log, sample.indices)

            optimizer = StatisticalOptimizer(self.config)
            with timed("calibrate.optimize") as optimize_timer:
                result = optimizer.converge(profile)
                optimize_timer.set(iterations=result.iterations, threshold=result.threshold)
            calibrate_span.set(threshold=result.threshold)

        return CalibratorOutput(
            profile=profile,
            result=result,
            sampling_seconds=sample.elapsed_seconds,
            profiling_seconds=logger.last_elapsed_seconds,
            optimize_seconds=optimize_timer.seconds,
        )
