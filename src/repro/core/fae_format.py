"""FAE format: persistence of the preprocessed dataset (paper SS III-B).

Calibration, classification, and batch packing run *once* per dataset;
subsequent training jobs load the result directly.  The on-disk format is
a single ``.npz`` archive carrying the hot mask, the packed batch index
arrays, the per-table hot bags, and the calibration threshold, plus a
format version for forward compatibility.

Writes are atomic (temp file + ``os.replace``), so an interrupted save
never leaves a truncated archive under the final name; loading a
truncated or corrupt archive raises a :class:`RuntimeError` that names
the offending file instead of a bare numpy stack trace.
"""

from __future__ import annotations

import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.core.classifier import HotEmbeddingBagSpec
from repro.core.input_processor import FAEDataset
from repro.resilience.atomic import atomic_write

__all__ = ["save_fae_dataset", "load_fae_dataset", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_fae_dataset(
    path: str | Path,
    dataset: FAEDataset,
    bags: dict[str, HotEmbeddingBagSpec],
    threshold: float,
) -> None:
    """Serialize a packed dataset and its hot bags to ``path`` (.npz).

    Args:
        path: destination file; parent directories must exist.
        dataset: packed hot/cold batches.
        bags: hot bag specs by table name.
        threshold: the calibrated access threshold that produced them.
    """
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(FORMAT_VERSION),
        "threshold": np.array(threshold, dtype=np.float64),
        "batch_size": np.array(dataset.batch_size),
        "hot_mask": dataset.hot_mask,
        "num_hot_batches": np.array(len(dataset.hot_batches)),
        "num_cold_batches": np.array(len(dataset.cold_batches)),
    }
    for i, batch in enumerate(dataset.hot_batches):
        payload[f"hot_batch_{i:06d}"] = batch
    for i, batch in enumerate(dataset.cold_batches):
        payload[f"cold_batch_{i:06d}"] = batch

    names = sorted(bags)
    payload["bag_names"] = np.array(names)
    for name in names:
        bag = bags[name]
        payload[f"bag_{name}_hot_ids"] = bag.hot_ids
        payload[f"bag_{name}_meta"] = np.array(
            [bag.num_rows, bag.dim, int(bag.whole_table)], dtype=np.int64
        )
    # np.savez appends ".npz" to suffix-less paths; resolve the final
    # name the same way so the atomic replace lands where numpy would.
    final = Path(path)
    if final.suffix != ".npz":
        final = final.with_name(final.name + ".npz")
    with atomic_write(final) as tmp:
        np.savez_compressed(tmp, **payload)


def load_fae_dataset(
    path: str | Path,
) -> tuple[FAEDataset, dict[str, HotEmbeddingBagSpec], float]:
    """Load a dataset previously written by :func:`save_fae_dataset`.

    Returns:
        ``(dataset, bags, threshold)``.

    Raises:
        ValueError: on a format-version mismatch.
        FileNotFoundError: if ``path`` does not exist.
        RuntimeError: if the archive is truncated or corrupt (the error
            names the file).
    """
    path = Path(path)
    try:
        archive_cm = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise RuntimeError(
            f"packed FAE dataset {path} is corrupt or not a dataset archive: {exc}"
        ) from exc
    try:
        with archive_cm as archive:
            if "format_version" not in archive.files:
                raise RuntimeError(
                    f"packed FAE dataset {path} is missing its format header — "
                    "not a FAE dataset archive"
                )
            version = int(archive["format_version"])
            if version != FORMAT_VERSION:
                raise ValueError(
                    f"FAE format version {version} unsupported (expected {FORMAT_VERSION})"
                )
            threshold = float(archive["threshold"])
            batch_size = int(archive["batch_size"])
            hot_mask = archive["hot_mask"]
            hot_batches = [
                archive[f"hot_batch_{i:06d}"]
                for i in range(int(archive["num_hot_batches"]))
            ]
            cold_batches = [
                archive[f"cold_batch_{i:06d}"]
                for i in range(int(archive["num_cold_batches"]))
            ]
            bags: dict[str, HotEmbeddingBagSpec] = {}
            for name in archive["bag_names"]:
                name = str(name)
                num_rows, dim, whole = archive[f"bag_{name}_meta"]
                bags[name] = HotEmbeddingBagSpec(
                    table_name=name,
                    hot_ids=archive[f"bag_{name}_hot_ids"],
                    num_rows=int(num_rows),
                    dim=int(dim),
                    whole_table=bool(whole),
                )
    except KeyError as exc:
        raise RuntimeError(
            f"packed FAE dataset {path} is truncated: missing entry {exc}"
        ) from exc
    except (zipfile.BadZipFile, zlib.error, OSError) as exc:
        raise RuntimeError(
            f"packed FAE dataset {path} is truncated or corrupt: {exc}"
        ) from exc
    dataset = FAEDataset(
        hot_batches=hot_batches,
        cold_batches=cold_batches,
        hot_mask=hot_mask,
        batch_size=batch_size,
    )
    return dataset, bags, threshold
