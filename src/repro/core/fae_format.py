"""FAE format: persistence of the preprocessed dataset (paper SS III-B).

Calibration, classification, and batch packing run *once* per dataset;
subsequent training jobs load the result directly.  Two layouts share
the same logical content (hot mask, packed batch index arrays, per-table
hot bags, calibration threshold, format version):

- **flat** — a single ``.npz`` archive (:func:`save_fae_dataset`), fine
  for datasets whose batch index arrays fit in one file;
- **sharded** — a directory of ``shard-%06d.npz`` files each holding
  ``shard_size`` batches, plus ``bags.npz``, ``mask.npz``, and a JSON
  manifest with per-shard SHA-256 checksums
  (:func:`save_fae_dataset_sharded`).  Shards are loaded lazily through
  :class:`ShardBatchSequence`, so a trainer never holds more than one
  shard of batch indices in memory.

Every file is written atomically (temp file + ``os.replace``), and the
manifest is written *last* — an interrupted sharded save never leaves a
directory that loads as complete.  :func:`load_fae_dataset` dispatches
on the path (directory or manifest -> sharded, file -> flat); loading a
truncated or corrupt artifact raises a :class:`RuntimeError` naming the
offending file instead of a bare numpy stack trace.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
import zlib
from bisect import bisect_right
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.core.classifier import HotEmbeddingBagSpec
from repro.core.input_processor import FAEDataset
from repro.resilience.atomic import atomic_write, atomic_write_text

__all__ = [
    "FORMAT_VERSION",
    "ShardBatchSequence",
    "load_fae_dataset",
    "save_fae_dataset",
    "save_fae_dataset_sharded",
]

FORMAT_VERSION = 1

FAE_MANIFEST = "fae_manifest.json"
SHARDED_FORMAT = "fae-sharded"


def _bag_payload(bags: dict[str, HotEmbeddingBagSpec]) -> dict[str, np.ndarray]:
    """Archive entries describing the hot bags (shared by both layouts)."""
    names = sorted(bags)
    payload: dict[str, np.ndarray] = {"bag_names": np.array(names)}
    for name in names:
        bag = bags[name]
        payload[f"bag_{name}_hot_ids"] = bag.hot_ids
        payload[f"bag_{name}_meta"] = np.array(
            [bag.num_rows, bag.dim, int(bag.whole_table)], dtype=np.int64
        )
    return payload


def _bags_from_archive(archive) -> dict[str, HotEmbeddingBagSpec]:
    """Inverse of :func:`_bag_payload`."""
    bags: dict[str, HotEmbeddingBagSpec] = {}
    for name in archive["bag_names"]:
        name = str(name)
        num_rows, dim, whole = archive[f"bag_{name}_meta"]
        bags[name] = HotEmbeddingBagSpec(
            table_name=name,
            hot_ids=archive[f"bag_{name}_hot_ids"],
            num_rows=int(num_rows),
            dim=int(dim),
            whole_table=bool(whole),
        )
    return bags


def save_fae_dataset(
    path: str | Path,
    dataset: FAEDataset,
    bags: dict[str, HotEmbeddingBagSpec],
    threshold: float,
) -> None:
    """Serialize a packed dataset and its hot bags to ``path`` (.npz).

    Args:
        path: destination file; parent directories must exist.
        dataset: packed hot/cold batches.
        bags: hot bag specs by table name.
        threshold: the calibrated access threshold that produced them.
    """
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(FORMAT_VERSION),
        "threshold": np.array(threshold, dtype=np.float64),
        "batch_size": np.array(dataset.batch_size),
        "hot_mask": dataset.hot_mask,
        "num_hot_batches": np.array(len(dataset.hot_batches)),
        "num_cold_batches": np.array(len(dataset.cold_batches)),
    }
    for i, batch in enumerate(dataset.hot_batches):
        payload[f"hot_batch_{i:06d}"] = batch
    for i, batch in enumerate(dataset.cold_batches):
        payload[f"cold_batch_{i:06d}"] = batch
    payload.update(_bag_payload(bags))
    # np.savez appends ".npz" to suffix-less paths; resolve the final
    # name the same way so the atomic replace lands where numpy would.
    final = Path(path)
    if final.suffix != ".npz":
        final = final.with_name(final.name + ".npz")
    with atomic_write(final) as tmp:
        np.savez_compressed(tmp, **payload)


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def save_fae_dataset_sharded(
    directory: str | Path,
    dataset: FAEDataset,
    bags: dict[str, HotEmbeddingBagSpec],
    threshold: float,
    shard_size: int = 256,
) -> Path:
    """Serialize a packed dataset as a sharded directory.

    Batches are grouped ``shard_size`` to a file, hot stream first, each
    shard written atomically and checksummed; the manifest goes last.

    Returns:
        The shard directory path.
    """
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with atomic_write(directory / "bags.npz") as tmp:
        np.savez_compressed(tmp, **_bag_payload(bags))
    with atomic_write(directory / "mask.npz") as tmp:
        np.savez_compressed(tmp, hot_mask=dataset.hot_mask)

    shards: list[dict] = []

    def write_shards(batches, kind: str) -> None:
        for start in range(0, len(batches), shard_size):
            group = list(batches[start : start + shard_size])
            name = f"shard-{len(shards):06d}.npz"
            payload = {f"batch_{i:06d}": batch for i, batch in enumerate(group)}
            with atomic_write(directory / name) as tmp:
                np.savez_compressed(tmp, **payload)
            shards.append(
                {
                    "file": name,
                    "kind": kind,
                    "start": start,
                    "count": len(group),
                    "sha256": _sha256(directory / name),
                }
            )

    write_shards(dataset.hot_batches, "hot")
    write_shards(dataset.cold_batches, "cold")

    manifest = {
        "format": SHARDED_FORMAT,
        "format_version": FORMAT_VERSION,
        "threshold": float(threshold),
        "batch_size": int(dataset.batch_size),
        "shard_size": int(shard_size),
        "num_hot_batches": len(dataset.hot_batches),
        "num_cold_batches": len(dataset.cold_batches),
        "files": {"bags": "bags.npz", "mask": "mask.npz"},
        "shards": shards,
    }
    atomic_write_text(directory / FAE_MANIFEST, json.dumps(manifest, indent=1) + "\n")
    return directory


class ShardBatchSequence(Sequence):
    """Lazy list-of-batches view over checksummed shard files.

    Supports ``len()``, integer indexing, slicing, and iteration — the
    full surface the trainers use — while holding at most one decoded
    shard in memory (iteration and slices walk shard by shard).  Each
    shard's SHA-256 is verified on first load; corruption raises a
    :class:`RuntimeError` naming the file.
    """

    def __init__(self, directory: Path, shards: list[dict]) -> None:
        self._directory = directory
        self._shards = shards
        self._ends: list[int] = []
        total = 0
        for shard in shards:
            total += int(shard["count"])
            self._ends.append(total)
        self._total = total
        self._cache_index: int | None = None
        self._cache: list[np.ndarray] = []
        self._verified: set[int] = set()

    def __len__(self) -> int:
        return self._total

    def _load_shard(self, shard_index: int) -> list[np.ndarray]:
        if shard_index == self._cache_index:
            return self._cache
        shard = self._shards[shard_index]
        path = self._directory / str(shard["file"])
        if shard_index not in self._verified:
            try:
                actual = _sha256(path)
            except FileNotFoundError:
                raise RuntimeError(f"FAE shard {path} is missing") from None
            expected = str(shard["sha256"])
            if actual != expected:
                raise RuntimeError(
                    f"FAE shard {path} failed its checksum "
                    f"(expected {expected[:12]}..., got {actual[:12]}...)"
                )
            self._verified.add(shard_index)
        try:
            with np.load(path, allow_pickle=False) as archive:
                batches = [
                    archive[f"batch_{i:06d}"] for i in range(int(shard["count"]))
                ]
        except (KeyError, OSError, ValueError, zipfile.BadZipFile, zlib.error) as exc:
            raise RuntimeError(f"FAE shard {path} is truncated or corrupt: {exc}") from exc
        self._cache_index = shard_index
        self._cache = batches
        return batches

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._total))]
        if index < 0:
            index += self._total
        if not 0 <= index < self._total:
            raise IndexError(f"batch index {index} out of range [0, {self._total})")
        shard_index = bisect_right(self._ends, index)
        offset = index - (self._ends[shard_index - 1] if shard_index else 0)
        return self._load_shard(shard_index)[offset]

    def __iter__(self) -> Iterator[np.ndarray]:
        for shard_index in range(len(self._shards)):
            yield from self._load_shard(shard_index)

    def materialize(self) -> list[np.ndarray]:
        """Decode every shard into a plain list (tests / small datasets)."""
        return list(self)


def _load_npz(path: Path, description: str):
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise RuntimeError(f"{description} {path} is corrupt: {exc}") from exc


def _load_sharded(directory: Path) -> tuple[FAEDataset, dict[str, HotEmbeddingBagSpec], float]:
    manifest_path = directory / FAE_MANIFEST
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
        raise RuntimeError(f"FAE manifest {manifest_path} is corrupt: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != SHARDED_FORMAT:
        raise RuntimeError(f"FAE manifest {manifest_path} is not a {SHARDED_FORMAT} manifest")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"FAE format version {version} unsupported (expected {FORMAT_VERSION})"
        )
    try:
        threshold = float(manifest["threshold"])
        batch_size = int(manifest["batch_size"])
        num_hot = int(manifest["num_hot_batches"])
        num_cold = int(manifest["num_cold_batches"])
        shards = list(manifest["shards"])
        files = manifest["files"]
    except (KeyError, TypeError, ValueError) as exc:
        raise RuntimeError(
            f"FAE manifest {manifest_path} is truncated: missing {exc}"
        ) from exc

    with _load_npz(directory / str(files["mask"]), "FAE hot mask") as archive:
        try:
            hot_mask = archive["hot_mask"]
        except KeyError as exc:
            raise RuntimeError(
                f"FAE hot mask {directory / str(files['mask'])} is truncated: {exc}"
            ) from exc
    with _load_npz(directory / str(files["bags"]), "FAE hot bags") as archive:
        try:
            bags = _bags_from_archive(archive)
        except KeyError as exc:
            raise RuntimeError(
                f"FAE hot bags {directory / str(files['bags'])} are truncated: {exc}"
            ) from exc

    hot_shards = [s for s in shards if s.get("kind") == "hot"]
    cold_shards = [s for s in shards if s.get("kind") == "cold"]
    hot_batches = ShardBatchSequence(directory, hot_shards)
    cold_batches = ShardBatchSequence(directory, cold_shards)
    if len(hot_batches) != num_hot or len(cold_batches) != num_cold:
        raise RuntimeError(
            f"FAE manifest {manifest_path} shard counts disagree with batch totals "
            f"({len(hot_batches)}/{num_hot} hot, {len(cold_batches)}/{num_cold} cold)"
        )
    dataset = FAEDataset(
        hot_batches=hot_batches,
        cold_batches=cold_batches,
        hot_mask=hot_mask,
        batch_size=batch_size,
    )
    return dataset, bags, threshold


def load_fae_dataset(
    path: str | Path,
) -> tuple[FAEDataset, dict[str, HotEmbeddingBagSpec], float]:
    """Load a dataset written by either :func:`save_fae_dataset` variant.

    A directory (or a path to its manifest) loads the sharded layout
    with lazy, checksum-verified batch sequences; a file loads the flat
    single-archive layout.

    Returns:
        ``(dataset, bags, threshold)``.

    Raises:
        ValueError: on a format-version mismatch.
        FileNotFoundError: if ``path`` does not exist.
        RuntimeError: if an artifact is truncated or corrupt (the error
            names the file).
    """
    path = Path(path)
    if path.is_dir():
        return _load_sharded(path)
    if path.name == FAE_MANIFEST:
        return _load_sharded(path.parent)
    archive_cm = _load_npz(path, "packed FAE dataset")
    try:
        with archive_cm as archive:
            if "format_version" not in archive.files:
                raise RuntimeError(
                    f"packed FAE dataset {path} is missing its format header — "
                    "not a FAE dataset archive"
                )
            version = int(archive["format_version"])
            if version != FORMAT_VERSION:
                raise ValueError(
                    f"FAE format version {version} unsupported (expected {FORMAT_VERSION})"
                )
            threshold = float(archive["threshold"])
            batch_size = int(archive["batch_size"])
            hot_mask = archive["hot_mask"]
            hot_batches = [
                archive[f"hot_batch_{i:06d}"]
                for i in range(int(archive["num_hot_batches"]))
            ]
            cold_batches = [
                archive[f"cold_batch_{i:06d}"]
                for i in range(int(archive["num_cold_batches"]))
            ]
            bags = _bags_from_archive(archive)
    except KeyError as exc:
        raise RuntimeError(
            f"packed FAE dataset {path} is truncated: missing entry {exc}"
        ) from exc
    except (zipfile.BadZipFile, zlib.error, OSError) as exc:
        raise RuntimeError(
            f"packed FAE dataset {path} is truncated or corrupt: {exc}"
        ) from exc
    dataset = FAEDataset(
        hot_batches=hot_batches,
        cold_batches=cold_batches,
        hot_mask=hot_mask,
        batch_size=batch_size,
    )
    return dataset, bags, threshold
