"""Embedding Classifier (paper SS III-B).

Turns the calibrated threshold into concrete *hot-embedding bags*: for
each table, the sorted row ids whose sampled access count clears the
cutoff.  Small tables (below the large-table cutoff) are hot in their
entirety.  This is the single full pass over each table the paper
describes; its output is what the Embedding Replicator ships to GPUs and
what the Input Processor tests membership against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.access_profile import AccessProfile
from repro.core.config import FAEConfig

__all__ = ["HotEmbeddingBagSpec", "EmbeddingClassifier"]


@dataclass(frozen=True)
class HotEmbeddingBagSpec:
    """The hot rows of one table.

    Attributes:
        table_name: which table.
        hot_ids: sorted int64 global row ids classified hot.
        num_rows: table cardinality (for mask reconstruction).
        dim: embedding dimension.
        whole_table: True when the entire table is hot (small tables).
    """

    table_name: str
    hot_ids: np.ndarray
    num_rows: int
    dim: int
    whole_table: bool

    @property
    def num_hot(self) -> int:
        return int(self.hot_ids.shape[0])

    @property
    def nbytes(self) -> int:
        return self.num_hot * self.dim * 4

    def hot_mask(self) -> np.ndarray:
        """Boolean membership mask of length ``num_rows``."""
        mask = np.zeros(self.num_rows, dtype=bool)
        mask[self.hot_ids] = True
        return mask


class EmbeddingClassifier:
    """Tags embedding rows as hot per the calibrated threshold.

    Args:
        config: FAE configuration (large-table cutoff).
    """

    def __init__(self, config: FAEConfig) -> None:
        self.config = config

    def classify(self, profile: AccessProfile, threshold: float) -> dict[str, HotEmbeddingBagSpec]:
        """Build hot bags for every table of the profiled schema.

        Args:
            profile: sampled access profile.
            threshold: the calibrator's final access threshold.

        Returns:
            Table name -> :class:`HotEmbeddingBagSpec` (every table
            appears; small tables come back as whole-table bags).
        """
        bags: dict[str, HotEmbeddingBagSpec] = {}
        for spec in profile.schema.tables:
            table_profile = profile.tables.get(spec.name)
            if table_profile is None:
                bags[spec.name] = HotEmbeddingBagSpec(
                    table_name=spec.name,
                    hot_ids=np.arange(spec.num_rows, dtype=np.int64),
                    num_rows=spec.num_rows,
                    dim=spec.dim,
                    whole_table=True,
                )
                continue
            min_count = profile.min_count_for_threshold(threshold, spec.name)
            hot_ids = np.flatnonzero(table_profile.counts >= min_count).astype(np.int64)
            bags[spec.name] = HotEmbeddingBagSpec(
                table_name=spec.name,
                hot_ids=hot_ids,
                num_rows=spec.num_rows,
                dim=spec.dim,
                whole_table=hot_ids.shape[0] == spec.num_rows,
            )
        return bags

    @staticmethod
    def total_hot_bytes(bags: dict[str, HotEmbeddingBagSpec]) -> int:
        """Aggregate GPU-resident footprint of the hot bags."""
        return sum(bag.nbytes for bag in bags.values())
