"""Automatic GPU memory budgeting for hot embeddings.

The paper leaves the hot-embedding allocation ``L`` to the user ("can be
set by the user, our experiments show that L = 256MB suffices").  On a
real deployment L should be *derived*: whatever HBM remains after the
model replica, its gradients and optimizer state, the activation
footprint of the chosen batch size, and the framework's fixed overheads.
:func:`plan_memory_budget` does that arithmetic and returns a
:class:`MemoryPlan` whose ``recommended_budget`` can be handed directly
to :class:`~repro.core.config.FAEConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import DeviceSpec, TESLA_V100
from repro.hw.workload import WorkloadCharacter

__all__ = ["MemoryPlan", "plan_memory_budget"]

#: CUDA context + cuDNN workspaces + allocator slack, bytes.
FRAMEWORK_RESERVED = 1 * 2**30

#: Safety multiplier on the activation estimate (covers workspace
#: double-buffering and the backward pass's temporaries).
ACTIVATION_SAFETY = 2.0


@dataclass(frozen=True)
class MemoryPlan:
    """How a GPU's memory is carved up for FAE training.

    Attributes:
        gpu_capacity: device memory, bytes.
        model_bytes: dense parameters + gradients + optimizer state.
        activation_bytes: forward activations held for backward.
        framework_bytes: fixed runtime reservation.
        recommended_budget: bytes left for hot embeddings (the FAE ``L``).
        feasible: False when even a zero budget does not fit.
    """

    gpu_capacity: int
    model_bytes: float
    activation_bytes: float
    framework_bytes: float
    recommended_budget: int
    feasible: bool

    def utilization(self) -> float:
        """Fraction of HBM used when the recommended budget is applied."""
        used = (
            self.model_bytes
            + self.activation_bytes
            + self.framework_bytes
            + self.recommended_budget
        )
        return used / self.gpu_capacity


def plan_memory_budget(
    workload: WorkloadCharacter,
    per_gpu_batch: int,
    gpu: DeviceSpec = TESLA_V100,
    max_budget: int | None = None,
) -> MemoryPlan:
    """Derive the hot-embedding budget L for one GPU.

    Args:
        workload: workload character (parameter and lookup volumes).
        per_gpu_batch: samples each GPU processes per step.
        gpu: device spec (capacity).
        max_budget: optional cap (e.g. the paper's 256 MB); the
            recommendation never exceeds it.

    Returns:
        The memory plan; ``recommended_budget`` is 0 when infeasible.
    """
    if per_gpu_batch <= 0:
        raise ValueError("per_gpu_batch must be positive")

    # Dense model: parameters + gradients + SGD has no extra state, but
    # momentum/Adagrad variants double it; charge 3x to be safe.
    model_bytes = 3.0 * workload.dense_param_bytes

    # Activations: embedding vectors gathered per sample plus MLP
    # activations; MLP activations scale with the interaction width,
    # approximated by pooled bytes x a safety factor, held for backward.
    per_sample = (
        workload.lookup_bytes_per_sample + workload.pooled_bytes_per_sample * 4.0
    )
    activation_bytes = ACTIVATION_SAFETY * per_gpu_batch * per_sample

    free = gpu.mem_capacity - FRAMEWORK_RESERVED - model_bytes - activation_bytes
    feasible = free > 0
    budget = int(max(0.0, free))
    if max_budget is not None:
        budget = min(budget, max_budget)
    return MemoryPlan(
        gpu_capacity=gpu.mem_capacity,
        model_bytes=model_bytes,
        activation_bytes=activation_bytes,
        framework_bytes=FRAMEWORK_RESERVED,
        recommended_budget=budget,
        feasible=feasible,
    )
