"""Online frequency-aware embedding hot cache.

FAE classifies hot rows once, at calibration time, and the paper itself
concedes the weakness: hotness "needs to be re-calibrated for every
model, dataset, and system configuration tuple".  Under drifting traffic
a frozen hot set silently decays — hot-input fraction collapses, the
scheduler degenerates to the cold path, and the speedup evaporates.

:class:`EmbeddingHotCache` replaces the frozen
:class:`~repro.core.classifier.HotEmbeddingBagSpec` set with a *bounded,
stateful* cache over the same spec type:

- **admission is LFU** — an uncached row is admitted when its estimated
  frequency beats the current victim's exact counter (the TinyLFU
  admission test), or for free while budget remains;
- **eviction is LFU or LRU** — the victim is the member with the lowest
  exact counter (``"lfu"``) or the oldest last-access tick (``"lru"``);
- **frequency state is two-tier** — cached rows keep exact decayed
  counters (bounded by the cache size), while the uncached universe is
  tracked by a decayed :class:`~repro.core.sketch.CountMinSketch`
  (bounded by ``width x depth``), so total tracking memory never scales
  with table cardinality;
- **turnover is incremental** — :meth:`rebalance` returns a
  :class:`CacheDelta` of promoted/demoted row ids; the replicator ships
  only the delta and the trainers re-pack only the inputs that touch it,
  instead of re-running the whole preprocess.

Whole-table bags (small tables) are *pinned*: always resident, never
candidates for eviction — exactly the de-facto-hot treatment the static
classifier gives them.

Determinism: no wall clock anywhere.  Recency is a logical tick counter,
ties break on ``(priority, table, id)``, and the sketch's floor-decay is
integral — two runs with the same seed and traffic are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classifier import HotEmbeddingBagSpec
from repro.core.input_processor import FAEDataset, _cut_batches, compute_hot_mask
from repro.core.sketch import CountMinSketch
from repro.obs import get_registry, span

__all__ = [
    "HotCacheConfig",
    "CacheDelta",
    "RebalancePlan",
    "EmbeddingHotCache",
    "repack_remaining",
    "CACHE_STATE_VERSION",
]

#: Schema version of :meth:`EmbeddingHotCache.state_dict` payloads.
CACHE_STATE_VERSION = 1


@dataclass(frozen=True)
class HotCacheConfig:
    """Knobs of the online hot cache.

    Attributes:
        budget_bytes: total GPU bytes for hot rows (pinned whole-table
            bags included; tracked rows compete for what remains).
        eviction: victim-selection policy, ``"lfu"`` (lowest exact
            counter) or ``"lru"`` (oldest last-access tick).  Admission
            is LFU either way: the candidate must out-count the victim.
        decay: aging multiplier applied to every frequency counter (exact
            and sketched) at the end of each rebalance, in ``(0, 1]``.
            1.0 disables aging (lifetime counts).
        rebalance_every: observed inputs between automatic rebalances
            (``should_rebalance`` turns true); 0 means rebalance only
            when a caller forces it (drift-triggered turnover).
        sketch_width: counters per sketch row for the uncached universe.
        sketch_depth: hash rows per sketch.
        seed: sketch hash seed.
    """

    budget_bytes: int
    eviction: str = "lfu"
    decay: float = 0.5
    rebalance_every: int = 0
    sketch_width: int = 1024
    sketch_depth: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        if self.eviction not in ("lfu", "lru"):
            raise ValueError(f"eviction must be 'lfu' or 'lru', got {self.eviction!r}")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if self.rebalance_every < 0:
            raise ValueError("rebalance_every must be non-negative")


@dataclass(frozen=True)
class CacheDelta:
    """Membership change of one rebalance: per-table promoted/demoted ids.

    Attributes:
        promoted: table name -> sorted int64 row ids entering the cache.
        demoted: table name -> sorted int64 row ids leaving the cache.
    """

    promoted: dict[str, np.ndarray] = field(default_factory=dict)
    demoted: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_promoted(self) -> int:
        return sum(ids.size for ids in self.promoted.values())

    @property
    def num_demoted(self) -> int:
        return sum(ids.size for ids in self.demoted.values())

    @property
    def is_empty(self) -> bool:
        return self.num_promoted == 0 and self.num_demoted == 0

    def tables(self) -> list[str]:
        """Tables whose membership actually changed (sorted)."""
        changed = {
            name
            for mapping in (self.promoted, self.demoted)
            for name, ids in mapping.items()
            if ids.size
        }
        return sorted(changed)


@dataclass(frozen=True)
class RebalancePlan:
    """A fully-decided turnover, not yet applied to the cache.

    :meth:`EmbeddingHotCache.plan_rebalance` is a pure function of cache
    state, so a plan can be recomputed deterministically after a crash:
    the durability journal only needs the delta ids to *verify* that a
    rolled-forward plan matches the intent recorded before the crash.

    Attributes:
        delta: sorted promoted/demoted ids per table (the public shape).
        tick: the cache's logical clock when the plan was drawn; apply
            refuses a plan drawn at a different tick (stale plan).
        promoted_order: admission-order promoted ids per table (the order
            the LFU admission loop accepted them in).
        promoted_est: sketch estimates aligned with ``promoted_order``.
        demoted_order: eviction-order demoted ids per table.
    """

    delta: CacheDelta
    tick: int
    promoted_order: dict[str, np.ndarray] = field(default_factory=dict)
    promoted_est: dict[str, np.ndarray] = field(default_factory=dict)
    demoted_order: dict[str, np.ndarray] = field(default_factory=dict)


class EmbeddingHotCache:
    """Bounded online cache over per-table hot-row membership.

    Args:
        bags: initial population — the classifier's hot bag specs.
            Whole-table bags are pinned; the rest become tracked members.
        config: cache knobs.
        profile: optional :class:`~repro.core.access_profile.AccessProfile`
            from calibration; when given, initial members inherit their
            sampled access counts as exact counters (otherwise they start
            at 1 and earn their keep from live traffic).
    """

    def __init__(
        self,
        bags: dict[str, HotEmbeddingBagSpec],
        config: HotCacheConfig,
        profile=None,
    ) -> None:
        self.config = config
        self.version = 0  # bumped on every membership change
        self.tick = 0  # logical clock: one tick per observe() call
        self._pinned: dict[str, HotEmbeddingBagSpec] = {}
        self._members: dict[str, np.ndarray] = {}
        self._freq: dict[str, np.ndarray] = {}
        self._last_tick: dict[str, np.ndarray] = {}
        self._sketch: dict[str, CountMinSketch] = {}
        self._pending: dict[str, list[np.ndarray]] = {}
        self._dims: dict[str, int] = {}
        self._num_rows: dict[str, int] = {}
        for name in sorted(bags):
            bag = bags[name]
            if bag.whole_table:
                self._pinned[name] = bag
                continue
            self._dims[name] = bag.dim
            self._num_rows[name] = bag.num_rows
            members = np.asarray(bag.hot_ids, dtype=np.int64)
            self._members[name] = np.sort(members)
            counts = None
            if profile is not None:
                table_profile = profile.tables.get(name)
                if table_profile is not None:
                    counts = table_profile.counts[self._members[name]].astype(np.float64)
            if counts is None:
                counts = np.ones(members.size, dtype=np.float64)
            self._freq[name] = counts
            self._last_tick[name] = np.zeros(members.size, dtype=np.int64)
            self._sketch[name] = CountMinSketch(
                width=config.sketch_width, depth=config.sketch_depth, seed=config.seed
            )
            self._pending[name] = []

        pinned_bytes = sum(bag.nbytes for bag in self._pinned.values())
        self._tracked_budget = max(0, config.budget_bytes - pinned_bytes)

        self.hits = 0
        self.misses = 0
        self.promotions = 0
        self.demotions = 0
        self.rebalances = 0
        self.window_inputs = 0

        registry = get_registry()
        self._hits_counter = registry.counter("hotcache.hits")
        self._misses_counter = registry.counter("hotcache.misses")
        self._promotions_counter = registry.counter("hotcache.promotions")
        self._demotions_counter = registry.counter("hotcache.demotions")
        self._evictions_counter = registry.counter("hotcache.evictions")
        self._rebalances_counter = registry.counter("hotcache.rebalances")
        self._rows_gauge = registry.gauge("hotcache.rows")
        self._bytes_gauge = registry.gauge("hotcache.bytes")
        self._hit_rate_gauge = registry.gauge("hotcache.hit_rate")
        self._update_gauges()

    @classmethod
    def from_schema(
        cls,
        schema,
        config: HotCacheConfig,
        large_table_min_bytes: int = 1 << 20,
    ) -> EmbeddingHotCache:
        """Cold-start a cache straight from a schema (no calibration).

        Small tables (below ``large_table_min_bytes``) are pinned whole,
        mirroring the classifier's treatment; large tables start with
        empty membership and fill from live traffic via :meth:`rebalance`.
        """
        bags: dict[str, HotEmbeddingBagSpec] = {}
        for spec in schema.tables:
            whole = spec.num_rows * spec.dim * 4 < large_table_min_bytes
            bags[spec.name] = HotEmbeddingBagSpec(
                table_name=spec.name,
                hot_ids=np.arange(spec.num_rows, dtype=np.int64)
                if whole
                else np.zeros(0, dtype=np.int64),
                num_rows=spec.num_rows,
                dim=spec.dim,
                whole_table=whole,
            )
        return cls(bags, config)

    # ------------------------------------------------------------------
    # Observation (the read path)
    # ------------------------------------------------------------------

    def observe(self, sparse: dict[str, np.ndarray]) -> None:
        """Record one window of lookups (e.g. a mini-batch's sparse ids).

        Hits bump the member's exact counter and last-access tick; misses
        feed the uncached sketch and join the promotion-candidate window.
        Pinned (whole-table) lookups always hit.
        """
        self.tick += 1
        num_inputs = 0
        for name, ids in sparse.items():
            flat = np.asarray(ids, dtype=np.int64).ravel()
            if flat.size == 0:
                continue
            num_inputs = max(num_inputs, np.asarray(ids).shape[0])
            if name in self._pinned:
                self.hits += int(flat.size)
                self._hits_counter.inc(int(flat.size))
                continue
            members = self._members.get(name)
            if members is None:
                continue  # table not under cache management
            positions = np.searchsorted(members, flat)
            in_range = positions < members.size
            hit = in_range.copy()
            hit[in_range] = members[positions[in_range]] == flat[in_range]
            num_hits = int(np.count_nonzero(hit))
            num_misses = int(flat.size - num_hits)
            if num_hits:
                np.add.at(self._freq[name], positions[hit], 1.0)
                self._last_tick[name][positions[hit]] = self.tick
            if num_misses:
                missed = flat[~hit]
                self._sketch[name].add(missed)
                self._pending[name].append(missed.copy())
            self.hits += num_hits
            self.misses += num_misses
            self._hits_counter.inc(num_hits)
            self._misses_counter.inc(num_misses)
        self.window_inputs += num_inputs
        total = self.hits + self.misses
        if total:
            self._hit_rate_gauge.set(self.hits / total)

    def contains(self, table_name: str, ids: np.ndarray) -> np.ndarray:
        """Vectorized membership test (pinned tables are always hot)."""
        flat = np.asarray(ids, dtype=np.int64)
        if table_name in self._pinned:
            return np.ones(flat.shape, dtype=bool)
        members = self._members[table_name]
        positions = np.searchsorted(members, flat)
        in_range = positions < members.size
        result = in_range.copy()
        result[in_range] = members[positions[in_range]] == flat[in_range]
        return result

    # ------------------------------------------------------------------
    # Turnover (the write path)
    # ------------------------------------------------------------------

    def should_rebalance(self) -> bool:
        """True when the auto-rebalance window is full."""
        return (
            self.config.rebalance_every > 0
            and self.window_inputs >= self.config.rebalance_every
        )

    def rebalance(self) -> CacheDelta:
        """One LFU-admission / LFU-or-LRU-eviction turnover pass.

        Candidates are the window's missed ids, scored by the sketch and
        considered in descending-estimate order.  Each is admitted for
        free while tracked budget remains; once full, it must strictly
        out-count the eviction victim (lowest exact counter under
        ``"lfu"``, oldest tick under ``"lru"``) to swap in.  Afterwards
        every frequency counter — exact and sketched — ages by the decay
        factor, and the window resets.

        Equivalent to :meth:`plan_rebalance` followed by
        :meth:`apply_rebalance`; the split exists so the trainers can
        journal the planned delta *before* any state mutates.

        Returns:
            The per-table promoted/demoted ids (possibly empty).
        """
        return self.apply_rebalance(self.plan_rebalance())

    def plan_rebalance(self) -> RebalancePlan:
        """Decide the next turnover without mutating any cache state.

        Pure in the cache state: two byte-identical caches produce
        byte-identical plans, which is what lets crash recovery re-derive
        an interrupted refresh instead of persisting row payloads.
        """
        names = sorted(self._members)
        name_code = {name: i for i, name in enumerate(names)}

        # Flatten current members into parallel arrays for victim search.
        m_code_parts, m_id_parts, m_freq_parts, m_tick_parts = [], [], [], []
        for name in names:
            members = self._members[name]
            m_code_parts.append(np.full(members.size, name_code[name], dtype=np.int64))
            m_id_parts.append(members)
            m_freq_parts.append(self._freq[name])
            m_tick_parts.append(self._last_tick[name])
        m_code = np.concatenate(m_code_parts) if m_code_parts else np.zeros(0, np.int64)
        m_id = np.concatenate(m_id_parts) if m_id_parts else np.zeros(0, np.int64)
        m_freq = (
            np.concatenate(m_freq_parts) if m_freq_parts else np.zeros(0, np.float64)
        )
        m_tick = np.concatenate(m_tick_parts) if m_tick_parts else np.zeros(0, np.int64)
        m_bytes = np.array(
            [self._dims[names[int(c)]] * 4 for c in m_code], dtype=np.int64
        )
        alive = np.ones(m_id.size, dtype=bool)

        # Window candidates: unique missed ids, scored by the sketch.
        c_code_parts, c_id_parts, c_est_parts = [], [], []
        for name in names:
            pending = self._pending[name]
            if not pending:
                continue
            cand = np.unique(np.concatenate(pending))
            if cand.size == 0:
                continue
            est = self._sketch[name].query(cand).astype(np.float64)
            c_code_parts.append(np.full(cand.size, name_code[name], dtype=np.int64))
            c_id_parts.append(cand)
            c_est_parts.append(est)
        if not c_id_parts:
            return RebalancePlan(delta=CacheDelta(), tick=self.tick)
        c_code = np.concatenate(c_code_parts)
        c_id = np.concatenate(c_id_parts)
        c_est = np.concatenate(c_est_parts)
        # Admission order: best estimate first, ties by (table, id).
        order = np.lexsort((c_id, c_code, -c_est))

        used = int(np.sum(m_bytes[alive])) if m_id.size else 0
        spare = self._tracked_budget - used

        # Victim priority: exact counter under LFU, last tick under LRU.
        priority = m_freq if self.config.eviction == "lfu" else m_tick.astype(np.float64)

        admitted: list[tuple[int, int, float]] = []  # (code, id, est)
        evicted_idx: list[int] = []
        for pos in order:
            code = int(c_code[pos])
            row_bytes = self._dims[names[code]] * 4
            est = float(c_est[pos])
            while spare < row_bytes and alive.any():
                masked = np.where(alive, priority, np.inf)
                victim = int(np.argmin(masked))
                # LFU admission test: the candidate must strictly
                # out-count the victim's exact counter, or it stays out.
                if est <= float(m_freq[victim]):
                    break
                alive[victim] = False
                evicted_idx.append(victim)
                spare += int(m_bytes[victim])
            if spare >= row_bytes:
                admitted.append((code, int(c_id[pos]), est))
                spare -= row_bytes

        promoted: dict[str, np.ndarray] = {}
        demoted: dict[str, np.ndarray] = {}
        promoted_order: dict[str, np.ndarray] = {}
        promoted_est: dict[str, np.ndarray] = {}
        demoted_order: dict[str, np.ndarray] = {}
        for i, name in enumerate(names):
            promo = np.array(
                sorted(cid for code, cid, _ in admitted if code == i), dtype=np.int64
            )
            demo_idx = [j for j in evicted_idx if int(m_code[j]) == i]
            demo = np.sort(m_id[demo_idx].astype(np.int64)) if demo_idx else np.zeros(
                0, dtype=np.int64
            )
            if promo.size:
                promoted[name] = promo
                promoted_order[name] = np.array(
                    [cid for code, cid, _ in admitted if code == i], dtype=np.int64
                )
                promoted_est[name] = np.array(
                    [e for code, cid, e in admitted if code == i], dtype=np.float64
                )
            if demo.size:
                demoted[name] = demo
                demoted_order[name] = m_id[demo_idx].astype(np.int64)

        return RebalancePlan(
            delta=CacheDelta(promoted=promoted, demoted=demoted),
            tick=self.tick,
            promoted_order=promoted_order,
            promoted_est=promoted_est,
            demoted_order=demoted_order,
        )

    def apply_rebalance(self, plan: RebalancePlan) -> CacheDelta:
        """Apply a :meth:`plan_rebalance` decision to the cache state.

        Performs the membership swap, hands demoted counters back to the
        sketch, then ages every counter and resets the observation window
        (exactly what the fused :meth:`rebalance` always did).

        Raises:
            ValueError: if the plan was drawn at a different logical tick
                than the cache is at now (a stale or foreign plan).
        """
        if plan.tick != self.tick:
            raise ValueError(
                f"rebalance plan drawn at tick {plan.tick} cannot apply at "
                f"tick {self.tick}"
            )
        with span("hotcache.rebalance", tick=self.tick):
            self._apply_rebalance(plan)
        self.rebalances += 1
        self._rebalances_counter.inc()
        if not plan.delta.is_empty:
            self.version += 1
        self._update_gauges()
        return plan.delta

    def _apply_rebalance(self, plan: RebalancePlan) -> None:
        names = sorted(self._members)
        delta = plan.delta
        for name in names:
            promo = delta.promoted.get(name, np.zeros(0, dtype=np.int64))
            demo = delta.demoted.get(name, np.zeros(0, dtype=np.int64))
            if not promo.size and not demo.size:
                continue

            # Demoted rows hand their exact counters back to the sketch,
            # so their popularity history survives the demotion.
            if demo.size:
                demo_evorder = plan.demoted_order[name]
                positions = np.searchsorted(self._members[name], demo_evorder)
                counts = np.floor(self._freq[name][positions]).astype(np.int64)
                self._sketch[name].add(demo, counts=counts)

            keep = np.isin(self._members[name], demo, assume_unique=True, invert=True)
            kept_ids = self._members[name][keep]
            kept_freq = self._freq[name][keep]
            kept_tick = self._last_tick[name][keep]
            promo_ids_unsorted = plan.promoted_order.get(
                name, np.zeros(0, dtype=np.int64)
            )
            promo_est = plan.promoted_est.get(name, np.zeros(0, dtype=np.float64))
            merged = np.concatenate([kept_ids, promo_ids_unsorted])
            merged_freq = np.concatenate([kept_freq, promo_est])
            merged_tick = np.concatenate(
                [kept_tick, np.full(promo_ids_unsorted.size, self.tick, dtype=np.int64)]
            )
            sorter = np.argsort(merged, kind="stable")
            self._members[name] = merged[sorter]
            self._freq[name] = merged_freq[sorter]
            self._last_tick[name] = merged_tick[sorter]

        num_promoted = delta.num_promoted
        num_demoted = delta.num_demoted
        self.promotions += num_promoted
        self.demotions += num_demoted
        self._promotions_counter.inc(num_promoted)
        self._demotions_counter.inc(num_demoted)
        self._evictions_counter.inc(num_demoted)

        self._finish_window(names)

    def _finish_window(self, names: list[str]) -> None:
        """Age every counter and reset the observation window."""
        decay = self.config.decay
        for name in names:
            self._pending[name] = []
            if decay < 1.0:
                self._freq[name] = self._freq[name] * decay
                self._sketch[name].decay(decay)
        self.window_inputs = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def bags(self) -> dict[str, HotEmbeddingBagSpec]:
        """Current membership as classifier-compatible bag specs.

        Everything downstream of the classifier — replicator, input
        processor, drift detector, serving engine — consumes this exact
        surface, which is what makes the cache a drop-in replacement for
        the frozen hot set.
        """
        bags: dict[str, HotEmbeddingBagSpec] = dict(self._pinned)
        for name, members in self._members.items():
            bags[name] = HotEmbeddingBagSpec(
                table_name=name,
                hot_ids=members.copy(),
                num_rows=self._num_rows[name],
                dim=self._dims[name],
                whole_table=members.size == self._num_rows[name],
            )
        return bags

    @property
    def hot_rows(self) -> int:
        pinned = sum(bag.num_hot for bag in self._pinned.values())
        return pinned + sum(int(m.size) for m in self._members.values())

    @property
    def hot_bytes(self) -> int:
        pinned = sum(bag.nbytes for bag in self._pinned.values())
        tracked = sum(
            int(m.size) * self._dims[name] * 4 for name, m in self._members.items()
        )
        return pinned + tracked

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-ready cache snapshot (instance-local, not registry-global)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
            "hot_rows": self.hot_rows,
            "hot_bytes": self.hot_bytes,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "rebalances": self.rebalances,
            "version": self.version,
        }

    def _update_gauges(self) -> None:
        self._rows_gauge.set(self.hot_rows)
        self._bytes_gauge.set(self.hot_bytes)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete mutable cache state for checkpointing.

        Covers membership, exact decayed counters, last-access ticks,
        pending miss windows, per-table sketches (full depth x width
        arrays), the logical tick, and every cumulative stat — everything
        needed for a restored cache to continue byte-identically.
        Static construction inputs (config, pinned bags, table geometry)
        are *not* serialized; the loader validates they match instead.
        """
        tables: dict[str, dict] = {}
        for name in sorted(self._members):
            tables[name] = {
                "members": self._members[name].copy(),
                "freq": self._freq[name].copy(),
                "last_tick": self._last_tick[name].copy(),
                "pending": [window.copy() for window in self._pending[name]],
                "sketch": self._sketch[name].state_dict(),
            }
        return {
            "schema_version": CACHE_STATE_VERSION,
            "version": int(self.version),
            "tick": int(self.tick),
            "hits": int(self.hits),
            "misses": int(self.misses),
            "promotions": int(self.promotions),
            "demotions": int(self.demotions),
            "rebalances": int(self.rebalances),
            "window_inputs": int(self.window_inputs),
            "pinned": sorted(self._pinned),
            "tables": tables,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this cache.

        The cache must have been constructed over the same schema (same
        pinned tables, same tracked tables); membership itself may differ
        arbitrarily — it is replaced wholesale.

        Raises:
            ValueError: on schema-version or table-layout mismatch.
        """
        version = state.get("schema_version")
        if version != CACHE_STATE_VERSION:
            raise ValueError(
                f"cache state schema_version {version} != {CACHE_STATE_VERSION}"
            )
        if list(state["pinned"]) != sorted(self._pinned):
            raise ValueError(
                f"pinned tables {sorted(self._pinned)} != checkpointed "
                f"{list(state['pinned'])}"
            )
        tables = state["tables"]
        if sorted(tables) != sorted(self._members):
            raise ValueError(
                f"tracked tables {sorted(self._members)} != checkpointed "
                f"{sorted(tables)}"
            )
        for name in sorted(tables):
            entry = tables[name]
            members = np.asarray(entry["members"], dtype=np.int64).copy()
            if members.size and int(members.max()) >= self._num_rows[name]:
                raise ValueError(
                    f"checkpointed member id {int(members.max())} out of range "
                    f"for table {name!r} ({self._num_rows[name]} rows)"
                )
            self._members[name] = members
            self._freq[name] = np.asarray(entry["freq"], dtype=np.float64).copy()
            self._last_tick[name] = np.asarray(
                entry["last_tick"], dtype=np.int64
            ).copy()
            self._pending[name] = [
                np.asarray(window, dtype=np.int64).copy()
                for window in entry["pending"]
            ]
            self._sketch[name].load_state_dict(entry["sketch"])
        self.version = int(state["version"])
        self.tick = int(state["tick"])
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.promotions = int(state["promotions"])
        self.demotions = int(state["demotions"])
        self.rebalances = int(state["rebalances"])
        self.window_inputs = int(state["window_inputs"])
        self._update_gauges()


def repack_remaining(
    train_log,
    dataset: FAEDataset,
    cursors: dict[str, int],
    delta: CacheDelta,
    new_bags: dict[str, HotEmbeddingBagSpec],
) -> tuple[FAEDataset, dict[str, int]]:
    """Re-pack only the *remaining* batches after a cache turnover.

    Instead of reclassifying the whole log, only inputs that touch a
    promoted or demoted row can change sides:

    - a hot input flips cold iff it touches a demoted id (its other
      lookups were members and stayed members);
    - a cold input can flip hot only if it touches a promoted id (some
      lookup was a non-member, and only promotions add members) — those
      are re-checked in full against the new membership.

    Untouched inputs keep their classification, so the repack cost scales
    with the delta's traffic, not the dataset.  Batch order within each
    stream is preserved (no reshuffle): flipped-cold inputs append to the
    cold stream, flipped-hot inputs append to the hot stream.

    Returns:
        The repacked dataset (remaining inputs only, cursors reset to 0)
        and the fresh cursor dict.
    """
    hot_remaining = list(dataset.hot_batches[cursors["hot"] :])
    cold_remaining = list(dataset.cold_batches[cursors["cold"] :])
    idx_hot = (
        np.concatenate(hot_remaining) if hot_remaining else np.zeros(0, dtype=np.int64)
    )
    idx_cold = (
        np.concatenate(cold_remaining)
        if cold_remaining
        else np.zeros(0, dtype=np.int64)
    )

    demoted_mask = {
        name: _row_mask(new_bags[name].num_rows, ids)
        for name, ids in delta.demoted.items()
        if ids.size
    }
    promoted_mask = {
        name: _row_mask(new_bags[name].num_rows, ids)
        for name, ids in delta.promoted.items()
        if ids.size
    }
    new_masks = {name: bag.hot_mask() for name, bag in new_bags.items()}

    # Hot side: anything touching a demoted row is cold now, by definition.
    if idx_hot.size and demoted_mask:
        touched_hot = _touches(train_log, idx_hot, demoted_mask)
    else:
        touched_hot = np.zeros(idx_hot.size, dtype=bool)

    # Cold side: only inputs touching a promoted row can have flipped;
    # re-check those in full (their other lookups may still be cold).
    now_hot = np.zeros(idx_cold.size, dtype=bool)
    if idx_cold.size and promoted_mask:
        touched_cold = _touches(train_log, idx_cold, promoted_mask)
        check = idx_cold[touched_cold]
        if check.size:
            sparse = {name: ids[check] for name, ids in train_log.sparse.items()}
            now_hot[touched_cold] = compute_hot_mask(
                sparse, new_bags, new_masks, check.size
            )

    new_hot_idx = np.concatenate([idx_hot[~touched_hot], idx_cold[now_hot]])
    new_cold_idx = np.concatenate([idx_cold[~now_hot], idx_hot[touched_hot]])

    hot_mask = np.array(dataset.hot_mask, dtype=bool, copy=True)
    hot_mask[idx_hot[touched_hot]] = False
    hot_mask[idx_cold[now_hot]] = True

    repacked = FAEDataset(
        hot_batches=_cut_batches(new_hot_idx, dataset.batch_size, drop_last=False),
        cold_batches=_cut_batches(new_cold_idx, dataset.batch_size, drop_last=False),
        hot_mask=hot_mask,
        batch_size=dataset.batch_size,
    )
    registry = get_registry()
    registry.counter("hotcache.repack.events").inc()
    registry.counter("hotcache.repack.flipped_inputs").inc(
        int(np.count_nonzero(touched_hot)) + int(np.count_nonzero(now_hot))
    )
    return repacked, {"hot": 0, "cold": 0}


def _row_mask(num_rows: int, ids: np.ndarray) -> np.ndarray:
    mask = np.zeros(num_rows, dtype=bool)
    mask[ids] = True
    return mask


def _touches(train_log, indices: np.ndarray, row_masks: dict[str, np.ndarray]) -> np.ndarray:
    """Which of ``indices`` perform any lookup into the masked rows."""
    touched = np.zeros(indices.size, dtype=bool)
    for name, mask in row_masks.items():
        touched |= mask[train_log.sparse[name][indices]].any(axis=1)
    return touched
