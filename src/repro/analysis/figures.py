"""Figure-series rendering: ASCII bars and (x, y) series tables.

The benchmarks regenerate each paper figure as a data series; these
helpers print them in a terminal-friendly form so the bench output *is*
the figure.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_bar_chart", "series_table"]


def ascii_bar_chart(
    labels: list[str], values: list[float], width: int = 40, unit: str = ""
) -> str:
    """Horizontal ASCII bar chart, scaled to the largest value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return "(empty chart)"
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def series_table(
    x_label: str,
    y_labels: list[str],
    x_values,
    y_series,
    float_format: str = "{:.4g}",
) -> str:
    """Tabulate one x column against one or more y series.

    Args:
        x_label: x-axis name.
        y_labels: one name per series.
        x_values: iterable of x values.
        y_series: list of iterables, one per label.
    """
    x_values = list(x_values)
    y_series = [list(series) for series in y_series]
    if len(y_labels) != len(y_series):
        raise ValueError("y_labels and y_series must align")
    for series in y_series:
        if len(series) != len(x_values):
            raise ValueError("every series must match the x axis length")
    headers = [x_label, *y_labels]
    widths = [max(len(h), 10) for h in headers]
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for i, x in enumerate(x_values):
        cells = [_fmt(x, float_format).rjust(widths[0])]
        for j, series in enumerate(y_series):
            cells.append(_fmt(series[i], float_format).rjust(widths[j + 1]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _fmt(value, float_format: str) -> str:
    if isinstance(value, (int, np.integer)):
        return str(value)
    if isinstance(value, (float, np.floating)):
        return float_format.format(value)
    return str(value)
