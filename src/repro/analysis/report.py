"""Consolidated reproduction report from benchmark artifacts.

Every benchmark writes its rendered table/figure to
``benchmarks/out/<name>.txt``; :func:`generate_report` stitches those
artifacts into one markdown document ordered like the paper's evaluation
(figures, tables, text claims, ablations/extensions), ready to attach to
a reproduction writeup.  Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["generate_report", "write_report", "SECTIONS"]

#: Section ordering: (title, artifact-name prefixes in display order).
SECTIONS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("Figures", ("fig",)),
    ("Tables", ("tab",)),
    ("Text claims & comparators", ("x",)),
    ("Ablations & extensions", ("abl",)),
)


def _artifact_sort_key(path: Path) -> tuple:
    """Order fig02 before fig04 before fig10 (numeric-aware)."""
    stem = path.stem
    digits = "".join(ch for ch in stem if ch.isdigit())
    return (stem.split("_")[0].rstrip("0123456789"), int(digits) if digits else 0, stem)


def generate_report(out_dir: str | Path, title: str = "FAE reproduction report") -> str:
    """Render the markdown report from an artifact directory.

    Args:
        out_dir: directory containing ``<name>.txt`` artifacts.
        title: document title.

    Raises:
        FileNotFoundError: if the directory does not exist.
        ValueError: if it contains no artifacts (run the benchmarks first).
    """
    out_dir = Path(out_dir)
    if not out_dir.is_dir():
        raise FileNotFoundError(f"no artifact directory at {out_dir}")
    artifacts = sorted(out_dir.glob("*.txt"), key=_artifact_sort_key)
    if not artifacts:
        raise ValueError(
            f"no artifacts in {out_dir}; run `pytest benchmarks/ --benchmark-only` first"
        )

    lines = [f"# {title}", ""]
    lines.append(
        "Generated from the benchmark artifacts; each block is the exact "
        "output of the bench that regenerates the corresponding paper "
        "table or figure (see EXPERIMENTS.md for paper-vs-measured "
        "commentary)."
    )
    lines.append("")

    used: set[Path] = set()
    for section_title, prefixes in SECTIONS:
        members = [
            a
            for a in artifacts
            if any(a.stem.startswith(p) for p in prefixes) and a not in used
        ]
        if not members:
            continue
        used.update(members)
        lines.append(f"## {section_title}")
        lines.append("")
        for artifact in members:
            lines.append(f"### {artifact.stem}")
            lines.append("")
            lines.append("```")
            lines.append(artifact.read_text().rstrip("\n"))
            lines.append("```")
            lines.append("")

    leftovers = [a for a in artifacts if a not in used]
    if leftovers:
        lines.append("## Other artifacts")
        lines.append("")
        for artifact in leftovers:
            lines.append(f"### {artifact.stem}")
            lines.append("")
            lines.append("```")
            lines.append(artifact.read_text().rstrip("\n"))
            lines.append("```")
            lines.append("")
    return "\n".join(lines)


def write_report(out_dir: str | Path, destination: str | Path, title: str = "FAE reproduction report") -> Path:
    """Generate and write the report; returns the destination path."""
    destination = Path(destination)
    destination.write_text(generate_report(out_dir, title=title) + "\n")
    return destination
