"""Plain-text table rendering for benchmark output.

Benchmarks print the same rows the paper's tables report; these helpers
keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

__all__ = ["format_table", "format_minutes_table"]


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Render a monospace table with aligned columns.

    Args:
        headers: column names.
        rows: cell strings; every row must match the header width.
        title: optional title line.

    Raises:
        ValueError: on ragged rows.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match {len(headers)} headers")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_minutes_table(
    title: str,
    row_labels: list[str],
    columns: list[str],
    values: dict[str, list[float]],
    paper: dict[str, list[float]] | None = None,
) -> str:
    """Render a Table IV/V-style minutes table, measured vs paper.

    Args:
        title: table caption.
        row_labels: one label per dataset/workload row.
        columns: configuration names, e.g. ["1 GPU base", "1 GPU FAE", ...].
        values: row label -> measured minutes per column.
        paper: optional row label -> paper-reported minutes per column;
            shown in parentheses next to each measured value.
    """
    rows = []
    for label in row_labels:
        cells = [label]
        for i, value in enumerate(values[label]):
            cell = f"{value:8.1f}"
            if paper is not None and label in paper:
                cell += f" ({paper[label][i]:.1f})"
            cells.append(cell)
        rows.append(cells)
    return format_table(["dataset", *columns], rows, title=title)
