"""Reporting helpers: paper-style tables and figure series rendering."""

from repro.analysis.tables import format_table, format_minutes_table
from repro.analysis.figures import ascii_bar_chart, series_table
from repro.analysis.report import generate_report, write_report

__all__ = [
    "ascii_bar_chart",
    "format_minutes_table",
    "format_table",
    "generate_report",
    "series_table",
    "write_report",
]
